"""E8 — development effort of the three I²C styles (paper §12).

Paper anecdote: the complete I²C master took **one day** in OSSS, an
estimated **two days** in plain SystemC (same hierarchy), and *"slightly
longer"* in VHDL RTL.  Wall-clock effort cannot be re-measured, so the
bench reports construct counts of the three living implementations in this
repository and checks the paper's ordering.
"""

from conftest import record_report

from repro.eval import format_table, i2c_effort_comparison

PAPER_DAYS = {"osss": "1 day", "systemc_procedural": "~2 days (estimate)",
              "vhdl_rtl": "slightly longer than 2 days"}


def test_e8_development_effort(benchmark):
    metrics = benchmark(i2c_effort_comparison)
    rows = []
    for style, record in metrics.items():
        data = record.as_dict()
        data["paper_effort"] = PAPER_DAYS[style]
        rows.append(data)
    lines = [
        "paper: I2C master effort OSSS < plain SystemC < VHDL RTL",
        "",
        format_table(rows, ["style", "paper_effort", "sloc", "decisions",
                            "state_carriers", "explicit_assignments",
                            "score"]),
        "",
        "shape check: construct-count scores preserve the paper's order.",
    ]
    record_report("E8_dev_effort", "\n".join(lines))
    assert metrics["osss"].effort_score \
        < metrics["systemc_procedural"].effort_score \
        < metrics["vhdl_rtl"].effort_score
