"""X — campaign scaling: compiled gate evaluation and parallel sharding.

Not a paper experiment: it quantifies the two scaling levers of the
fault-campaign engine on the bundled ExpoCU netlist scenario.  The
compiled (code-generated straight-line) gate evaluator must beat the
interpreted event-driven engine by at least 2x on campaign wall-clock,
and a sharded ``jobs=2`` run must produce a byte-identical report to
the sequential one (the determinism contract behind ``--jobs``).

Injector construction (synthesis + technology mapping + codegen) happens
outside the timers: the campaign replay loop is what scales with fault
count, so that is what gets measured.
"""

import functools
import time

from conftest import record_report

from repro.eval import format_table
from repro.fault.campaign import generate_fault_list, run_campaign
from repro.fault.scenarios import (
    expocu_config,
    expocu_injector,
    expocu_stimulus,
)

FAULTS = 10
SEED = 1
SIDE = 8


def _campaign(injector, stimulus, faults, *, jobs=1, factory=None):
    return run_campaign(
        injector, stimulus, faults, expocu_config("none"),
        design=f"ExpoCU[{SIDE},{SIDE}]", hardening="none", seed=SEED,
        jobs=jobs, injector_factory=factory,
    )


def test_compiled_speedup_and_parallel_determinism():
    stimulus = expocu_stimulus(SEED, frames=1, side=SIDE)
    event_injector = expocu_injector("netlist", side=SIDE)
    compiled_factory = functools.partial(
        expocu_injector, "netlist", "none", SIDE, "compiled"
    )
    compiled_injector = compiled_factory()
    faults = generate_fault_list(
        event_injector, FAULTS, len(stimulus), SEED
    )

    start = time.perf_counter()
    event_result = _campaign(event_injector, stimulus, faults)
    t_event = time.perf_counter() - start

    start = time.perf_counter()
    compiled_result = _campaign(compiled_injector, stimulus, faults)
    t_compiled = time.perf_counter() - start

    start = time.perf_counter()
    parallel_result = _campaign(None, stimulus, faults, jobs=2,
                                factory=compiled_factory)
    t_parallel = time.perf_counter() - start

    speedup = t_event / t_compiled
    assert speedup >= 2.0, (
        f"compiled evaluator only {speedup:.2f}x over event-driven "
        f"({t_compiled:.2f}s vs {t_event:.2f}s)"
    )
    # Determinism contract: sharding never changes the report bytes.
    assert parallel_result.to_json() == compiled_result.to_json()
    assert event_result.golden_selfcheck == "masked"
    assert compiled_result.golden_selfcheck == "masked"

    rows = [
        {"configuration": "event, jobs=1",
         "campaign_s": f"{t_event:.2f}", "speedup": "1.00x"},
        {"configuration": "compiled, jobs=1",
         "campaign_s": f"{t_compiled:.2f}",
         "speedup": f"{speedup:.2f}x"},
        {"configuration": "compiled, jobs=2 (byte-identical)",
         "campaign_s": f"{t_parallel:.2f}",
         "speedup": f"{t_event / t_parallel:.2f}x"},
    ]
    record_report("X_parallel_campaign", format_table(rows))
