"""E1 — area comparison of the two flows (paper §12).

Paper claim: *"If we compare the required area of a synthesized ExpoCU
netlist in a conventional and an OSSS approach, they are almost
equivalent."*  This bench synthesizes the full ExpoCU through both flows
(shared backend) and reports areas, cell counts and the ratio.
"""

from conftest import record_report

from repro.baseline import expocu_rtl
from repro.eval import flow_comparison, run_osss_flow, run_vhdl_flow
from repro.expocu import ExpoCU
from repro.hdl import Clock, NS, Signal
from repro.types import Bit
from repro.types.spec import bit


def _osss_expocu():
    return ExpoCU[16, 16](
        "expocu", Clock("clk", 15 * NS), Signal("rst", bit(), Bit(1))
    )


def test_e1_area_comparison(benchmark):
    osss = benchmark(lambda: run_osss_flow(_osss_expocu(), "osss"))
    vhdl = run_vhdl_flow(expocu_rtl(), "vhdl")
    table = flow_comparison(osss, vhdl)
    ratio = osss.area / vhdl.area
    lines = [
        "paper: ExpoCU area OSSS vs conventional flow 'almost equivalent'",
        "       (§12; the prototype tools 'produce some unnecessary "
        "overhead')",
        "",
        table,
        "",
        f"measured area ratio osss/vhdl = {ratio:.2f}",
        "shape check: same order of magnitude; OSSS >= VHDL as the",
        "behavioral-synthesis overhead predicts (dominated by the I2C FSM).",
    ]
    record_report("E1_area", "\n".join(lines))
    assert 0.8 <= ratio <= 3.5, "flows diverged beyond the expected band"
