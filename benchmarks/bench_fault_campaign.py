"""X — fault-injection campaign: hardening effectiveness (extension).

Not a paper experiment: the automotive setting (§2) motivates it.  The
same seeded SEU/stuck-at campaign is run against the ExpoCU netlist
unhardened and with each hardening recipe from ``repro.fault.harden``;
the table reports the outcome taxonomy per mode.  TMR must drive
``sdc+hang`` down, parity must move corruption into ``detected``.
"""

from conftest import record_report

from repro.eval import format_table, hardening_comparison


def test_hardening_effectiveness():
    rows = hardening_comparison(faults=20, seed=1)
    by_mode = {row["hardening"]: row for row in rows}
    assert by_mode["tmr"]["sdc+hang"] < by_mode["none"]["sdc+hang"]
    record_report("X_fault_campaign", format_table(rows))
