"""Ablation — behavioral-synthesis 'tool maturity' knobs (DESIGN.md §6).

Paper §11–12 stress that the OSSS results depend on prototypic tools that
*"produce some unnecessary overhead"*.  This ablation quantifies our own
tool's maturity levers on the OSSS ExpoCU netlist:

* raw technology mapping (no optimization at all),
* optimization without the mux-chain collapse pass,
* the full optimizer.
"""

from conftest import record_report

from repro.eval import format_table
from repro.expocu import ExpoCU
from repro.hdl import Clock, NS, Signal
from repro.netlist import analyze, map_module, total_area
from repro.netlist import opt as opt_module
from repro.synth import synthesize
from repro.types import Bit
from repro.types.spec import bit


def _rtl():
    return synthesize(
        ExpoCU[16, 16]("expocu", Clock("clk", 15 * NS),
                       Signal("rst", bit(), Bit(1))),
        observe_children=False,
    )


def _optimize_without_mux_chain(circuit):
    saved = opt_module._mux_chain_pass
    opt_module._mux_chain_pass = lambda circuit, aliases: False
    try:
        opt_module.optimize(circuit)
    finally:
        opt_module._mux_chain_pass = saved
    return circuit


def test_ablation_optimizer_maturity(benchmark):
    rtl = _rtl()
    raw = map_module(rtl)
    raw_area = total_area(raw)
    raw_cells = len(raw.cells)
    no_chain = _optimize_without_mux_chain(map_module(_rtl()))
    full = benchmark.pedantic(
        lambda: opt_module.optimize(map_module(_rtl())),
        rounds=1, iterations=1,
    )
    rows = [
        {"tool level": "raw mapping (no optimizer)",
         "cells": raw_cells, "area_ge": round(raw_area, 1),
         "fmax_mhz": "-"},
        {"tool level": "optimizer w/o mux-chain collapse",
         "cells": len(no_chain.cells),
         "area_ge": round(total_area(no_chain), 1),
         "fmax_mhz": round(analyze(no_chain).fmax_mhz, 1)},
        {"tool level": "full optimizer",
         "cells": len(full.cells),
         "area_ge": round(total_area(full), 1),
         "fmax_mhz": round(analyze(full).fmax_mhz, 1)},
    ]
    lines = [
        "ablation: behavioral-flow area as a function of tool maturity",
        "(the paper's 'unnecessary overhead' shrinks as passes mature)",
        "",
        format_table(rows),
    ]
    record_report("X_ablation_tooling", "\n".join(lines))
    assert total_area(full) < raw_area
