"""X_dse — design-space exploration: warm re-exploration ≥ 5x cold.

Not a paper experiment: it bounds the payoff of memoizing exploration
through the design library.  The bundled ``tiny`` ExpoCU space (divider
× hardening, 4 points) is explored factorially twice against one store
— cold (every flow stage, hardening pass and fault campaign computed)
then warm (every point replayed from its ``dse_point`` entry) — and the
reports must be byte-identical, with the warm run missing nothing.
"""

import time

from conftest import record_report

from repro.dse import expocu_campaign_spec, expocu_space, explore
from repro.eval import format_table
from repro.store import ArtifactStore

MIN_SPEEDUP = 5.0


def _timed(fn):
    start = time.perf_counter()
    out = fn()
    return time.perf_counter() - start, out


def test_warm_exploration_speedup(tmp_path):
    space = expocu_space("tiny")
    spec = expocu_campaign_spec(faults=16)
    store = ArtifactStore(tmp_path / "library")

    t_cold, cold = _timed(lambda: explore(space, spec, store=store))
    warm_store = ArtifactStore(tmp_path / "library")
    t_warm, warm = _timed(lambda: explore(space, spec, store=warm_store))

    assert warm.to_json() == cold.to_json(), \
        "warm exploration must replay the cold report byte-identically"
    assert dict(warm_store.counters["miss"]) == {}, \
        "warm exploration must not recompute any stage"
    assert warm_store.counters["hit"]["dse_point"] == space.size()

    speedup = t_cold / t_warm
    assert speedup >= MIN_SPEEDUP, (
        f"warm re-exploration only {speedup:.1f}x faster than cold "
        f"(cold {t_cold:.2f}s, warm {t_warm:.2f}s); floor is "
        f"{MIN_SPEEDUP:.0f}x"
    )

    rows = [
        {"configuration": "cold (flow + campaigns + store)",
         "explore_s": f"{t_cold:.2f}", "speedup": "-"},
        {"configuration": "warm (dse_point replay)",
         "explore_s": f"{t_warm:.2f}",
         "speedup": f"{speedup:.1f}x vs cold"},
    ]
    table = format_table(rows)
    front = ", ".join(cold.pareto_ids)
    record_report(
        "X_dse",
        f"{table}\n\npoints: {len(cold.points)}  pareto front: {front}",
    )
