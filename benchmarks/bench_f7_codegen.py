"""F7/F8 — the readable procedural intermediate (paper Fig. 7–8).

The ODETTE synthesizer emitted standard SystemC as a readable intermediate:
class methods resolved into non-member functions over a flat state vector.
This bench regenerates that artifact for the paper's own SyncRegister
example and re-checks, over random stimulus, that the resolution is
behaviour-preserving (the mechanical form of Fig. 7).
"""

import random

from conftest import record_report

from repro.expocu import SyncRegister
from repro.osss import StateLayout
from repro.synth.codegen import generated_functions, resolve_class_text
from repro.types import Bit


def test_f7_generated_intermediate(benchmark):
    cls = SyncRegister[4, 0]
    text = benchmark(lambda: resolve_class_text(cls))
    funcs = generated_functions(cls)
    layout = StateLayout.of(cls)
    live = cls()
    state = layout.pack(live).raw
    rng = random.Random(41)
    checked = 0
    for _ in range(500):
        value = rng.randint(0, 1)
        live.write(Bit(value))
        state, _ = funcs["write"](state, value)
        assert state == layout.pack(live).raw
        _, edge = funcs["rising_edge"](state)
        assert edge == int(live.rising_edge(0))
        checked += 1
    lines = [
        "paper Fig. 7: methods resolved to non-member functions over the",
        "flat state vector (generated, executable intermediate):",
        "",
        text.strip(),
        "",
        f"behaviour-preservation re-checked on {checked} random writes: OK",
    ]
    record_report("F7_codegen", "\n".join(lines))
    assert "_SyncRegister_4_0_write_" in text
