"""X — static fault-list reduction: collapsing + quiescence pruning.

Not a paper experiment: it quantifies the netlist structural analysis
(``repro.analyze.netlist``) as a campaign accelerator.  A classical
stuck-at campaign — sa0/sa1 on a contiguous slice of the ExpoCU
netlist's fault sites, all injected at cycle 1 — is run once plainly
and once with ``collapse=True``, which (a) merges structurally
equivalent faults so only class representatives are simulated and
(b) synthesizes records for faults one instrumented golden pass proves
masked.  Both reductions are classification-preserving, so the whole
serialized report (outcome tallies *and* per-fault classifications)
must be byte-identical to the uncollapsed oracle, and the collapsed
run must be at least 1.5x faster on the compiled backend.

The slice keeps the benchmark minutes-scale while staying honest:
sites are taken in deterministic name order, not cherry-picked by
their equivalence classes.
"""

import functools
import time

from conftest import record_report

from repro.eval import format_table
from repro.fault.campaign import Fault, run_campaign
from repro.fault.scenarios import (
    expocu_config,
    expocu_injector,
    expocu_stimulus,
)

SEED = 1
SIDE = 2
SITES = 200          # contiguous slice of net targets (2 faults per site)
INJECT_CYCLE = 1     # classical single-cycle stuck-at universe
DRAIN_BUDGET = 600   # well above the golden drain; bounds hang replays


def test_collapsed_campaign_speedup_and_byte_identity():
    factory = functools.partial(
        expocu_injector, "netlist", "none", SIDE, "compiled"
    )
    stimulus = expocu_stimulus(SEED, frames=1, side=SIDE)
    config = expocu_config("none", drain_budget=DRAIN_BUDGET)
    targets = factory().net_targets()[:SITES]
    faults = [Fault(kind, target, 0, INJECT_CYCLE)
              for target in targets for kind in ("sa0", "sa1")]

    start = time.perf_counter()
    full = run_campaign(factory(), stimulus, faults, config,
                        design=f"ExpoCU[{SIDE},{SIDE}]", seed=SEED)
    t_full = time.perf_counter() - start

    start = time.perf_counter()
    collapsed = run_campaign(factory(), stimulus, faults, config,
                             design=f"ExpoCU[{SIDE},{SIDE}]", seed=SEED,
                             collapse=True)
    t_collapsed = time.perf_counter() - start

    # The contract everything hangs on: collapsing must not change a
    # single byte of the report — same tallies, same per-fault records.
    assert collapsed.to_json() == full.to_json()
    assert full.golden_selfcheck == "masked"

    speedup = t_full / t_collapsed
    stats = collapsed.collapse
    assert stats is not None
    assert stats["simulated"] < stats["unique"]
    assert speedup >= 1.5, (
        f"collapsed campaign only {speedup:.2f}x over uncollapsed "
        f"({t_collapsed:.2f}s vs {t_full:.2f}s; "
        f"simulated {stats['simulated']}/{stats['unique']})"
    )

    rows = [
        {"configuration": "uncollapsed", "faults": len(faults),
         "simulated": len(faults),
         "campaign_s": f"{t_full:.2f}", "speedup": "1.00x"},
        {"configuration": "collapse=True", "faults": len(faults),
         "simulated": stats["simulated"],
         "campaign_s": f"{t_collapsed:.2f}",
         "speedup": f"{speedup:.2f}x"},
    ]
    table = format_table(rows)
    table += (
        f"\nequivalence-merged: {stats['equivalence_merged']}, "
        f"quiescence-pruned: {stats['quiescence_pruned']} "
        f"(of {stats['unique']} unique faults)"
    )
    record_report("X_fault_collapse", table)
