"""Benchmark-session support: collects each experiment's report table and
prints everything at the end of the run (so ``pytest benchmarks/
--benchmark-only`` leaves the paper-shaped tables in the log)."""

import os

RESULTS_DIR = os.path.join(os.path.dirname(__file__), "results")

_reports: list[tuple[str, str]] = []


def record_report(experiment: str, text: str) -> None:
    """Save an experiment's rendered table (file + end-of-run dump)."""
    os.makedirs(RESULTS_DIR, exist_ok=True)
    path = os.path.join(RESULTS_DIR, f"{experiment}.txt")
    with open(path, "w", encoding="utf-8") as handle:
        handle.write(text + "\n")
    _reports.append((experiment, text))


def pytest_sessionfinish(session, exitstatus):
    if not _reports:
        return
    capman = session.config.pluginmanager.getplugin("capturemanager")
    if capman is not None:
        capman.suspend_global_capture(in_=True)
    print("\n" + "=" * 72)
    print("REPRODUCTION RESULTS (paper: Bannow & Haug, DATE 2004)")
    print("=" * 72)
    for experiment, text in sorted(_reports):
        print(f"\n--- {experiment} " + "-" * max(1, 60 - len(experiment)))
        print(text)
    print()
