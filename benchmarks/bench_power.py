"""Power extension — activity-based estimate for both flows.

Not a paper experiment (the paper reports area and frequency only); this
extension completes the automotive triad with a switching-activity power
model over the same video stimulus, flow vs. flow.
"""

import random

from conftest import record_report

from repro.baseline import expocu_rtl
from repro.eval import format_table, run_osss_flow, run_vhdl_flow
from repro.expocu import ExpoCU
from repro.hdl import Clock, NS, Signal
from repro.netlist.power import estimate_power
from repro.types import Bit
from repro.types.spec import bit


def _video_stimulus(cycles=260):
    rng = random.Random(12)
    stim = [dict(reset=1), dict(reset=1)]
    stim.append(dict(reset=0, pix=0, pix_valid=0, line_strobe=0,
                     frame_strobe=1, sda_in=1))
    for _ in range(cycles):
        stim.append(dict(reset=0, pix=rng.randint(0, 255), pix_valid=1,
                         line_strobe=0, frame_strobe=0, sda_in=1))
    return stim


def test_power_extension(benchmark):
    osss = run_osss_flow(
        ExpoCU[16, 16]("expocu", Clock("clk", 15 * NS),
                       Signal("rst", bit(), Bit(1))), "osss")
    vhdl = run_vhdl_flow(expocu_rtl(), "vhdl")
    stim = _video_stimulus()
    osss_power = benchmark.pedantic(
        estimate_power, args=(osss.circuit, stim), rounds=1, iterations=1
    )
    vhdl_power = estimate_power(vhdl.circuit, stim)
    rows = []
    for name, report in (("osss", osss_power), ("vhdl", vhdl_power)):
        rows.append({
            "flow": name,
            "cycles": report.cycles,
            "toggles": report.toggles,
            "dynamic": round(report.dynamic, 0),
            "leakage": round(report.leakage, 0),
            "per_cycle": round(report.per_cycle, 1),
        })
    ratio = osss_power.per_cycle / vhdl_power.per_cycle
    lines = [
        "extension: activity-based power under identical video stimulus",
        "",
        format_table(rows),
        "",
        f"power ratio osss/vhdl = {ratio:.2f}",
        "the behavioral flow's state-select logic toggles every cycle, so",
        "its power overhead exceeds its area overhead — the flip side of",
        "the paper's 'unnecessary overhead' at the physical level.",
    ]
    record_report("X_power_extension", "\n".join(lines))
    assert 1.0 <= ratio <= 10.0
