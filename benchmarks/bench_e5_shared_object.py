"""E5 — cost of global (shared) objects (paper §8).

Paper claim: *"When global objects are being instantiated and accessed,
some scheduling logic of course has to be added.  But in any case: if
described in conventional approach, logic would have to be added anyway."*
A two-client shared multiplier (generated arbiter, per policy) is compared
against a hand-written time-multiplexed multiplier with a manual priority
arbiter of the same behaviour.
"""

from conftest import record_report

from repro.eval import format_table
from repro.hdl import Clock, Input, Module, NS, Output, Signal
from repro.netlist import analyze, map_module, optimize, total_area
from repro.osss import Fcfs, HwClass, RoundRobin, SharedObject, StaticPriority
from repro.rtl import Const, Read, RtlBuilder, mux
from repro.synth import synthesize
from repro.types import Bit, Unsigned
from repro.types.spec import bit, unsigned


class MulServer(HwClass):
    def mul(self, a: unsigned(8), b: unsigned(8)) -> unsigned(16):
        return a * b


def make_shared_host(policy):
    class Host(Module):
        go = Input(bit())
        a_out = Output(unsigned(16))
        b_out = Output(unsigned(16))

        def __init__(self, name, clk, rst):
            super().__init__(name)
            shared = SharedObject(f"{name}_srv", MulServer(),
                                  scheduler=policy)
            self.pa = shared.client_port("a")
            self.pb = shared.client_port("b")
            self.cthread(self.wa, clock=clk, reset=rst)
            self.cthread(self.wb, clock=clk, reset=rst)

        def wa(self):
            self.a_out.write(Unsigned(16, 0))
            yield
            while True:
                if self.go.read():
                    r = yield from self.pa.call("mul", Unsigned(8, 3),
                                                Unsigned(8, 5))
                    self.a_out.write(r)
                yield

        def wb(self):
            self.b_out.write(Unsigned(16, 0))
            yield
            while True:
                if self.go.read():
                    r = yield from self.pb.call("mul", Unsigned(8, 7),
                                                Unsigned(8, 9))
                    self.b_out.write(r)
                yield

    return Host


def manual_arbiter_rtl():
    """Hand RTL: one multiplier, two requesters, fixed-priority mux."""
    b = RtlBuilder("manual_shared")
    go = b.input("go", bit())
    req_a = b.register("req_a", bit(), 0)
    req_b = b.register("req_b", bit(), 0)
    a_out = b.register("a_out", unsigned(16), 0)
    b_out = b.register("b_out", unsigned(16), 0)
    grant_a = Read(req_a)
    grant_b = Read(req_b) & ~Read(req_a)
    mul_a = mux(grant_a, Const(unsigned(8), 3), Const(unsigned(8), 7))
    mul_b = mux(grant_a, Const(unsigned(8), 5), Const(unsigned(8), 9))
    product = b.wire("product", mul_a * mul_b)
    b.next(req_a, mux(go, Const(bit(), 1),
                      mux(grant_a, Const(bit(), 0), Read(req_a))))
    b.next(req_b, mux(go, Const(bit(), 1),
                      mux(grant_b, Const(bit(), 0), Read(req_b))))
    b.next(a_out, mux(grant_a, product, Read(a_out)))
    b.next(b_out, mux(grant_b, product, Read(b_out)))
    b.output("a_out", Read(a_out))
    b.output("b_out", Read(b_out))
    return b.build()


def _osss_netlist(policy):
    host = make_shared_host(policy)(
        "h", Clock("clk", 10 * NS), Signal("rst", bit(), Bit(1))
    )
    rtl = synthesize(host, observe_children=False)
    circuit = map_module(rtl)
    optimize(circuit)
    return circuit


def test_e5_shared_object_cost(benchmark):
    manual = map_module(manual_arbiter_rtl())
    optimize(manual)
    rows = [{
        "description": "manual time-mux + priority (hand RTL)",
        "cells": len(manual.cells),
        "area_ge": round(total_area(manual), 1),
        "fmax_mhz": round(analyze(manual).fmax_mhz, 1),
    }]
    circuits = {}
    for policy in (StaticPriority(), RoundRobin(), Fcfs()):
        name = type(policy).__name__
        circuits[name] = _osss_netlist(policy)
    benchmark(lambda: _osss_netlist(StaticPriority()))
    for name, circuit in circuits.items():
        rows.append({
            "description": f"generated arbiter ({name})",
            "cells": len(circuit.cells),
            "area_ge": round(total_area(circuit), 1),
            "fmax_mhz": round(analyze(circuit).fmax_mhz, 1),
        })
    ratio = total_area(circuits["StaticPriority"]) / total_area(manual)
    lines = [
        "paper: shared objects add scheduling logic, comparable to what a",
        "       conventional description adds by hand",
        "",
        format_table(rows),
        "",
        f"measured area ratio generated/manual = {ratio:.2f}",
        "(the generated version also carries the full request/ack client",
        " protocol, which the minimal hand design omits)",
    ]
    record_report("E5_shared_object", "\n".join(lines))
    assert ratio < 6.0
