"""F12 — synthesized top-level module inventory (paper Fig. 12).

The paper's Fig. 12 is a synthesis-tool screenshot showing the main ExpoCU
modules connected at the top level.  This bench regenerates the inventory:
each synthesized unit with its area share, flop count and FSM states, plus
the generated shared-object arbiter.
"""

from conftest import record_report

from repro.eval import format_table, module_inventory, run_osss_flow
from repro.expocu import ExpoCU
from repro.hdl import Clock, NS, Signal
from repro.types import Bit
from repro.types.spec import bit


def test_f12_module_inventory(benchmark):
    result = benchmark(lambda: run_osss_flow(
        ExpoCU[16, 16]("expocu", Clock("clk", 15 * NS),
                       Signal("rst", bit(), Bit(1))), "osss",
    ))
    fsm_rows = []
    for instance in result.rtl.instances:
        states = instance.module.attributes.get("fsm_states") or {}
        for process, count in states.items():
            fsm_rows.append({"module": instance.name, "process": process,
                             "fsm_states": count})
    for process, count in (result.rtl.attributes.get("fsm_states")
                           or {}).items():
        fsm_rows.append({"module": "(top)", "process": process,
                         "fsm_states": count})
    lines = [
        "paper Fig. 12: main ExpoCU modules at the synthesized top level",
        "",
        module_inventory(result),
        "",
        "behavioral FSMs:",
        format_table(fsm_rows),
    ]
    record_report("F12_module_inventory", "\n".join(lines))
    inventory = module_inventory(result)
    for expected in ("sync", "hist", "thresh", "params", "i2c",
                     "arbiter"):
        assert expected in inventory
