"""Supervision overhead: the resilient pool vs the bare shard engine.

Not a paper experiment: it prices the supervision machinery.  The
pre-supervision engine (``multiprocessing.Pool`` over static shards,
kept in :mod:`repro.fault.campaign` as ``_mp_context``/``_run_shard``)
loses a whole shard on any worker crash; the supervised pool survives
crashes, enforces deadlines and journals checkpoints.  All of that must
cost at most 10% extra wall-clock on a crash-free campaign — measured
here on the bundled ExpoCU compiled-netlist scenario — and the two
engines' reports must stay byte-identical.

Both engines pay the same dominant costs (per-worker golden run, fault
replays); supervision adds only pipe traffic and bookkeeping, so the
margin holds with room to spare.  Three timed rounds each, best-of
compared, to keep scheduler noise out of a ratio assertion.
"""

import functools
import time

from conftest import record_report

from repro.eval import format_table
from repro.fault.campaign import (
    _mp_context,
    _run_shard,
    generate_fault_list,
    run_campaign,
)
from repro.fault.scenarios import (
    expocu_config,
    expocu_injector,
    expocu_stimulus,
)

FAULTS = 10
SEED = 1
SIDE = 8
JOBS = 2
ROUNDS = 3
MAX_OVERHEAD = 0.10


def _baseline_pool(factory, stimulus, faults, config):
    """The PR-3 engine: static shards on a bare multiprocessing.Pool."""
    # Same stimulus normalization run_campaign applies before sharding.
    stimulus = [{config.reset_name: 0, **dict(entry)}
                for entry in stimulus]
    shards = [faults[k::JOBS] for k in range(JOBS)]
    payloads = [(factory, stimulus, shard, config)
                for shard in shards if shard]
    with _mp_context().Pool(processes=len(payloads)) as pool:
        outputs = pool.map(_run_shard, payloads)
    merged = {}
    for shard, output in zip((s for s in shards if s), outputs):
        for fault, record in zip(shard, output["records"]):
            merged[fault] = record
    return [merged[fault] for fault in faults]


def test_supervision_overhead_within_10_percent():
    stimulus = expocu_stimulus(SEED, frames=1, side=SIDE)
    config = expocu_config("none")
    factory = functools.partial(
        expocu_injector, "netlist", "none", SIDE, "compiled"
    )
    faults = generate_fault_list(factory(), FAULTS, len(stimulus), SEED)

    def supervised():
        return run_campaign(
            None, stimulus, faults, config,
            design=f"ExpoCU[{SIDE},{SIDE}]", hardening="none", seed=SEED,
            jobs=JOBS, injector_factory=factory,
        )

    t_baseline = min(_timed(lambda: _baseline_pool(
        factory, stimulus, faults, config)) for _ in range(ROUNDS))
    best_supervised = None
    t_supervised = float("inf")
    for _ in range(ROUNDS):
        start = time.perf_counter()
        result = supervised()
        elapsed = time.perf_counter() - start
        if elapsed < t_supervised:
            t_supervised, best_supervised = elapsed, result

    # Same records in the same order: supervision never changes results.
    baseline_records = _baseline_pool(factory, stimulus, faults, config)
    assert ([r.as_dict() for r in best_supervised.records]
            == [r.as_dict() for r in baseline_records])
    assert best_supervised.exec_stats["crashes"] == 0

    overhead = t_supervised / t_baseline - 1.0
    assert overhead <= MAX_OVERHEAD, (
        f"supervised pool {overhead:+.1%} vs bare pool "
        f"({t_supervised:.2f}s vs {t_baseline:.2f}s) exceeds "
        f"{MAX_OVERHEAD:.0%}"
    )

    rows = [
        {"engine": f"bare Pool, jobs={JOBS}",
         "campaign_s": f"{t_baseline:.2f}", "overhead": "—"},
        {"engine": f"supervised, jobs={JOBS}",
         "campaign_s": f"{t_supervised:.2f}",
         "overhead": f"{overhead:+.1%}"},
    ]
    record_report("X_resilience_overhead", format_table(rows))


def _timed(fn):
    start = time.perf_counter()
    fn()
    return time.perf_counter() - start
