"""E3 — zero overhead of class/template resolution (paper §8).

Paper claim: *"The resolution of object-oriented design features like
classes and templates do not create an additional overhead."*  The same
synchronizer is described twice — once with the templated SyncRegister
objects (Fig. 2–5), once hand-resolved into procedural shift operations
(what the Fig. 7/8 intermediate looks like) — and both are synthesized and
optimized.  The netlists must match cell for cell.
"""

from conftest import record_report

from repro.eval import format_table
from repro.expocu import CamSync
from repro.hdl import Clock, Input, Module, NS, Output, Signal
from repro.netlist import cell_histogram, map_module, optimize, total_area
from repro.synth import synthesize
from repro.types import Bit, BitVector
from repro.types.spec import bit
from repro.types.spec import bits as bits_spec


class CamSyncProcedural(Module):
    """CamSync with the objects hand-resolved away (Fig. 8 style)."""

    pix_valid = Input(bit())
    line_strobe = Input(bit())
    frame_strobe = Input(bit())
    pix_valid_sync = Output(bit())
    line_start = Output(bit())
    frame_start = Output(bit())

    def __init__(self, name, clk, rst):
        super().__init__(name)
        self.cthread(self.sync_input, clock=clk, reset=rst)

    def sync_input(self):
        valid_hist = BitVector(4, 0)
        line_hist = BitVector(4, 0)
        frame_hist = BitVector(4, 0)
        self.pix_valid_sync.write(Bit(0))
        self.line_start.write(Bit(0))
        self.frame_start.write(Bit(0))
        yield
        while True:
            valid_hist = valid_hist.range(2, 0).concat(
                Bit(self.pix_valid.read())
            )
            line_hist = line_hist.range(2, 0).concat(
                Bit(self.line_strobe.read())
            )
            frame_hist = frame_hist.range(2, 0).concat(
                Bit(self.frame_strobe.read())
            )
            self.pix_valid_sync.write(valid_hist.bit(1))
            self.line_start.write(line_hist.bit(1) & ~line_hist.bit(2))
            self.frame_start.write(frame_hist.bit(1) & ~frame_hist.bit(2))
            yield


def _netlist(factory):
    rtl = synthesize(
        factory(Clock("clk", 10 * NS), Signal("rst", bit(), Bit(1))),
        observe_children=False,
    )
    circuit = map_module(rtl)
    optimize(circuit)
    return circuit


def test_e3_class_resolution_adds_nothing(benchmark):
    oo_circuit = benchmark(
        lambda: _netlist(lambda c, r: CamSync("s", c, r))
    )
    proc_circuit = _netlist(lambda c, r: CamSyncProcedural("s", c, r))
    oo_hist = cell_histogram(oo_circuit)
    proc_hist = cell_histogram(proc_circuit)
    rows = [
        {"description": "OSSS classes + templates",
         "cells": len(oo_circuit.cells),
         "area_ge": round(total_area(oo_circuit), 1),
         "flops": len(oo_circuit.flops())},
        {"description": "hand-resolved procedural",
         "cells": len(proc_circuit.cells),
         "area_ge": round(total_area(proc_circuit), 1),
         "flops": len(proc_circuit.flops())},
    ]
    lines = [
        "paper: class/template resolution creates no additional overhead",
        "",
        format_table(rows),
        "",
        f"cell histograms equal: {oo_hist == proc_hist}  "
        f"({dict(oo_hist)})",
    ]
    record_report("E3_oo_overhead", "\n".join(lines))
    assert oo_hist == proc_hist, (oo_hist, proc_hist)
    assert total_area(oo_circuit) == total_area(proc_circuit)
