"""X — design library: a warm rebuild must be at least 5x faster.

Not a paper experiment: it bounds the payoff of the content-addressed
artifact store.  Both flows (OSSS behavioral synthesis and the VHDL
baseline) run end to end twice against one cache directory — first cold
(cleared store, every stage computed and serialized) then warm (every
stage replayed from disk) — and again with caching disabled as the
reference.  Runs are interleaved (cold, warm, cold, warm) so slow drift
in host load hits both sides equally; each side scores its best
repetition.

Beyond the speedup floor, the benchmark asserts the library's central
correctness property: the flow summaries of cold, warm and cache-off
runs are byte-identical.
"""

import json
import time

from conftest import record_report

from repro.baseline import expocu_rtl
from repro.cli import _default_design
from repro.eval import format_table, run_osss_flow, run_vhdl_flow
from repro.store import ArtifactStore

MIN_SPEEDUP = 5.0
REPS = 2


def _build(store):
    results = [
        run_osss_flow(_default_design(), "osss", store=store),
        run_vhdl_flow(expocu_rtl(), "vhdl", store=store),
    ]
    return json.dumps([r.summary() for r in results], sort_keys=True)


def _timed(fn):
    start = time.perf_counter()
    out = fn()
    return time.perf_counter() - start, out


def test_warm_rebuild_speedup(tmp_path):
    store = ArtifactStore(tmp_path / "cache")

    t_off, summary_off = _timed(lambda: _build(None))

    cold_times, warm_times = [], []
    for _ in range(REPS):
        store.clear()
        t_cold, summary_cold = _timed(lambda: _build(store))
        t_warm, summary_warm = _timed(lambda: _build(store))
        cold_times.append(t_cold)
        warm_times.append(t_warm)
        assert summary_warm == summary_cold == summary_off, \
            "cached runs must reproduce the uncached summaries exactly"
    t_cold, t_warm = min(cold_times), min(warm_times)

    # The warm run really was warm: every stage of both flows hit.
    assert sum(store.counters["miss"].values()) == \
        sum(store.counters["store"].values())
    assert sum(store.counters["hit"].values()) > 0
    assert sum(store.counters["corrupt"].values()) == 0

    speedup = t_cold / t_warm
    assert speedup >= MIN_SPEEDUP, (
        f"warm rebuild only {speedup:.1f}x faster than cold "
        f"(cold {t_cold:.2f}s, warm {t_warm:.2f}s); floor is "
        f"{MIN_SPEEDUP:.0f}x"
    )

    rows = [
        {"configuration": "no cache", "both_flows_s": f"{t_off:.2f}",
         "speedup": "-"},
        {"configuration": "cold (compute + store)",
         "both_flows_s": f"{t_cold:.2f}",
         "speedup": f"{t_off / t_cold:.1f}x vs no cache"},
        {"configuration": "warm (replay)", "both_flows_s": f"{t_warm:.2f}",
         "speedup": f"{speedup:.1f}x vs cold"},
    ]
    record_report("X_store_warm", format_table(rows))
