"""Template-parameter sweep (extension of §2's "different module scopes").

The paper stresses that ExpoCU modules differ widely in scope (1-cycle
pipelined dataflow vs. thousand-cycle control).  This sweep uses the OSSS
templates to explore that space mechanically: histogram counter width and
I²C clock divider are swept through the full flow, and the expected
monotone area/state trends are checked.
"""

from conftest import record_report

from repro.eval import format_table, run_osss_flow
from repro.eval.sweep import grid, monotonic, sweep
from repro.expocu import HistogramUnit, I2cMaster
from repro.hdl import Clock, NS, Signal
from repro.types import Bit
from repro.types.spec import bit


def _hist_factory(count_bits):
    return HistogramUnit[count_bits](
        "hist", Clock("clk", 15 * NS), Signal("rst", bit(), Bit(1))
    )


def _i2c_factory(divider):
    return I2cMaster[divider](
        "i2c", Clock("clk", 15 * NS), Signal("rst", bit(), Bit(1))
    )


def test_sweep_histogram_counter_width(benchmark):
    points = benchmark(
        lambda: sweep(_hist_factory, grid(count_bits=[8, 10, 12, 16]))
    )
    rows = [p.row() for p in points]
    lines = [
        "histogram unit vs. counter width (template COUNT_BITS):",
        "",
        format_table(rows),
    ]
    record_report("S1_sweep_histogram", "\n".join(lines))
    assert monotonic(rows, "count_bits", "area_ge", strict=True)
    assert monotonic(rows, "count_bits", "flops", strict=True)


def test_sweep_i2c_divider(benchmark):
    points = benchmark.pedantic(
        lambda: sweep(_i2c_factory, grid(divider=[2, 8, 32])),
        rounds=1, iterations=1,
    )
    rows = [p.row() for p in points]
    lines = [
        "I2C master vs. clock divider (template DIVIDER):",
        "(the FSM is divider-independent: only compare constants change)",
        "",
        format_table(rows),
    ]
    record_report("S2_sweep_i2c", "\n".join(lines))
    areas = [row["area_ge"] for row in rows]
    assert max(areas) / min(areas) < 1.25  # near-constant logic
    flops = {row["flops"] for row in rows}
    assert len(flops) == 1  # identical register inventory
