"""X — observability overhead: span profiling must stay under 10%.

Not a paper experiment: it bounds the cost of the ``repro.obs`` tracer
so profiling can stay on during real campaigns.  The same ExpoCU fault
campaign runs untraced and traced (per-fault spans + counter metadata),
each timed as the best of two repetitions, and the traced run must
finish within 10% of the untraced wall time.

Injector construction and fault-list generation happen outside the
timers; only the campaign replay loop — where a per-fault span is
opened and closed — is measured.  The two configurations run as
interleaved pairs (plain, traced, plain, traced) so slow drift in the
host machine's load hits both sides equally.
"""

import time

from conftest import record_report

from repro.eval import format_table
from repro.fault.campaign import generate_fault_list, run_campaign
from repro.fault.scenarios import (
    expocu_config,
    expocu_injector,
    expocu_stimulus,
)
from repro.obs import Tracer, validate_trace

FAULTS = 8
SEED = 1
SIDE = 8
MAX_OVERHEAD = 0.10


def _run(injector, stimulus, faults, tracer=None):
    return run_campaign(
        injector, stimulus, faults, expocu_config("none"),
        design=f"ExpoCU[{SIDE},{SIDE}]", hardening="none", seed=SEED,
        tracer=tracer,
    )


def _timed(fn):
    start = time.perf_counter()
    fn()
    return time.perf_counter() - start


def test_profiling_overhead_within_budget():
    injector = expocu_injector("rtl", side=SIDE)
    stimulus = expocu_stimulus(SEED, frames=1, side=SIDE)
    faults = generate_fault_list(injector, FAULTS, len(stimulus), SEED)

    tracers = []

    def traced():
        tracer = Tracer("campaign-overhead")
        tracers.append(tracer)
        _run(injector, stimulus, faults, tracer=tracer)

    plain_times, traced_times = [], []
    for _ in range(2):
        plain_times.append(
            _timed(lambda: _run(injector, stimulus, faults))
        )
        traced_times.append(_timed(traced))
    t_plain, t_traced = min(plain_times), min(traced_times)

    # The trace itself must be complete and well-formed.
    doc = validate_trace(tracers[-1].as_dict())
    campaign = doc["spans"][0]
    assert campaign["name"] == "campaign"
    replay = next(c for c in campaign["children"] if c["name"] == "replay")
    assert len(replay["children"]) == len(faults)

    overhead = t_traced / t_plain - 1.0
    assert overhead <= MAX_OVERHEAD, (
        f"profiling overhead {overhead:.1%} exceeds {MAX_OVERHEAD:.0%} "
        f"({t_traced:.3f}s traced vs {t_plain:.3f}s untraced)"
    )

    rows = [
        {"configuration": "untraced", "campaign_s": f"{t_plain:.3f}",
         "overhead": "-"},
        {"configuration": "traced (per-fault spans)",
         "campaign_s": f"{t_traced:.3f}",
         "overhead": f"{overhead:+.1%}"},
    ]
    record_report("X_obs_overhead", format_table(rows))
