"""E4 — cost of polymorphism (paper §8).

Paper claim: *"In case of polymorphism, multiplexers are being inserted to
select the function and object ... If described in conventional approach,
logic would have to be added anyway."*  The polymorphic ALU is compared
against a conventional hand-muxed ALU of identical behaviour.
"""

from conftest import record_report

from repro.eval import format_table
from repro.expocu import PolyAluUnit
from repro.hdl import Clock, Input, Module, NS, Output, Signal
from repro.netlist import cell_histogram, map_module, optimize, total_area
from repro.synth import synthesize
from repro.types import Bit, Unsigned
from repro.types.spec import bit, unsigned


class ManualAluUnit(Module):
    """The conventional version: explicit operation select, no objects."""

    op_select = Input(unsigned(2))
    a = Input(unsigned(8))
    b = Input(unsigned(8))
    result = Output(unsigned(16))
    history = Output(unsigned(16))

    def __init__(self, name, clk, rst):
        super().__init__(name)
        self.cthread(self.run, clock=clk, reset=rst)

    def run(self):
        self.result.write(Unsigned(16, 0))
        self.history.write(Unsigned(16, 0))
        yield
        while True:
            select = self.op_select.read()
            yield  # same two-phase timing as the polymorphic version
            a = self.a.read()
            b = self.b.read()
            if select == 0:
                value = (a + b).resized(16)
            elif select == 1:
                value = (a - b).resized(16)
            elif select == 2:
                value = a * b
            else:
                if a > b:
                    value = a.resized(16)
                else:
                    value = b.resized(16)
            self.result.write(value)
            self.history.write(value)
            yield


def _netlist(factory):
    rtl = synthesize(
        factory(Clock("clk", 10 * NS), Signal("rst", bit(), Bit(1))),
        observe_children=False,
    )
    circuit = map_module(rtl)
    optimize(circuit)
    return circuit


def test_e4_polymorphism_cost(benchmark):
    poly = benchmark(lambda: _netlist(lambda c, r: PolyAluUnit("p", c, r)))
    manual = _netlist(lambda c, r: ManualAluUnit("m", c, r))
    rows = []
    for label, circuit in (("polymorphic (PolyVar)", poly),
                           ("conventional hand-mux", manual)):
        hist = cell_histogram(circuit)
        rows.append({
            "description": label,
            "cells": len(circuit.cells),
            "area_ge": round(total_area(circuit), 1),
            "mux2": hist.get("MUX2", 0),
            "flops": len(circuit.flops()),
        })
    ratio = total_area(poly) / total_area(manual)
    lines = [
        "paper: polymorphism inserts selection muxes; a conventional",
        "       description adds equivalent logic anyway",
        "",
        format_table(rows),
        "",
        f"measured area ratio polymorphic/manual = {ratio:.2f} "
        "(expected ~1, small tag overhead)",
    ]
    record_report("E4_polymorphism", "\n".join(lines))
    assert 0.7 <= ratio <= 1.8, ratio
