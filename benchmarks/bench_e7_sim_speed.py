"""E7 — simulation speed across abstraction levels (paper §10).

Paper claim: OSSS/behavioral simulation offers *"much higher simulation
speed than conventional RTL simulators"* (and gate level is slowest of
all).  Two ExpoCU units run identical stimulus at all three levels: the
dataflow-dominated histogram and the control-flow-dominated parameter
unit, where the behavioral advantage is largest (only the active path
executes; RTL/gates evaluate the whole datapath every cycle).
"""

import random

from conftest import record_report

from repro.eval import format_table, simulation_rates
from repro.expocu import ExpoParamsUnit, HistogramUnit


def _hist_case(rng):
    stim = []
    for _ in range(3):
        stim.append(dict(pix=0, pix_valid=0, frame_start=1))
        stim.extend(dict(pix=rng.randint(0, 255), pix_valid=1,
                         frame_start=0) for _ in range(64))
    return (lambda c, r: HistogramUnit[10]("h", c, r), stim,
            [f"hist{i}" for i in range(8)])


def _params_case():
    stim = []
    for mean in (40, 90, 200, 128):
        stim.append(dict(mean=mean, stats_valid=1))
        stim.extend([dict(mean=mean, stats_valid=0)] * 60)
    return (lambda c, r: ExpoParamsUnit[128]("p", c, r), stim,
            ["exposure", "gain"])


def test_e7_simulation_speed(benchmark):
    rng = random.Random(66)
    cases = {
        "histogram (dataflow)": _hist_case(rng),
        "params (control flow)": _params_case(),
    }
    rows = []
    measured = {}
    for index, (label, (factory, stim, observed)) in enumerate(
            cases.items()):
        if index == 0:
            rates = benchmark.pedantic(
                simulation_rates, args=(factory, stim, observed),
                kwargs={"repeat": 3}, rounds=1, iterations=1,
            )
        else:
            rates = simulation_rates(factory, stim, observed, repeat=3)
        measured[label] = rates
        row = {"design": label}
        for stage, sample in rates.items():
            row[f"{stage}_c/s"] = f"{sample.cycles_per_second:,.0f}"
        row["behavioral/rtl"] = round(
            rates["behavioral"].cycles_per_second
            / rates["rtl"].cycles_per_second, 1
        )
        rows.append(row)
    lines = [
        "paper: much higher simulation speed than conventional RTL",
        "       simulators; gate level slowest of all",
        "",
        format_table(rows),
        "",
        "the gap widens with control-flow density: the behavioral model",
        "only executes the active path, RTL/gates evaluate the whole",
        "datapath every cycle.",
    ]
    record_report("E7_sim_speed", "\n".join(lines))
    params_rates = measured["params (control flow)"]
    assert params_rates["behavioral"].cycles_per_second \
        > 2 * params_rates["rtl"].cycles_per_second
    assert params_rates["behavioral"].cycles_per_second \
        > params_rates["gate"].cycles_per_second
    hist_rates = measured["histogram (dataflow)"]
    assert hist_rates["behavioral"].cycles_per_second \
        > hist_rates["gate"].cycles_per_second
