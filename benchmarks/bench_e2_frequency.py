"""E2 — achieved clock frequency of the two flows (paper §12).

Paper claim: *"The frequency of the achieved in OSSS design is below the
frequency in the VHDL flow"* against a 66 MHz system-clock target; the
paper attributes the gap to behavioral-synthesis overhead and calls it
"partly tool specific".  This bench runs STA (with and without placement
wire delays) on both netlists and checks both meet the 66 MHz target.
"""

from conftest import record_report

from repro.baseline import expocu_rtl
from repro.eval import format_table, run_osss_flow, run_vhdl_flow
from repro.expocu import ExpoCU
from repro.hdl import Clock, NS, Signal
from repro.netlist import analyze
from repro.types import Bit
from repro.types.spec import bit

TARGET_MHZ = 66.0


def test_e2_frequency(benchmark):
    osss = run_osss_flow(
        ExpoCU[16, 16]("expocu", Clock("clk", 15 * NS),
                       Signal("rst", bit(), Bit(1))), "osss"
    )
    vhdl = run_vhdl_flow(expocu_rtl(), "vhdl")
    # Benchmark the STA pass itself on the larger netlist.
    benchmark(lambda: analyze(osss.circuit))
    rows = []
    for result in (osss, vhdl):
        rows.append({
            "flow": result.name,
            "fmax_mhz": round(result.timing.fmax_mhz, 1),
            "fmax_routed_mhz": round(result.fmax_mhz, 1),
            "critical_ns": round(result.timing_routed.critical_path_ns, 3),
            "meets_66MHz": result.timing_routed.meets(TARGET_MHZ),
            "path_end": result.timing_routed.path[-1].split("/")[-1]
            if result.timing_routed.path else "-",
        })
    ratio = osss.fmax_mhz / vhdl.fmax_mhz
    lines = [
        "paper: OSSS frequency below the VHDL flow; 66 MHz system target",
        "",
        format_table(rows),
        "",
        f"measured fmax ratio osss/vhdl = {ratio:.2f} "
        "(paper expects < 1; we land near parity — the gap is 'partly",
        "tool specific' per §12, and both flows meet the 66 MHz target)",
    ]
    record_report("E2_frequency", "\n".join(lines))
    assert osss.timing_routed.meets(TARGET_MHZ)
    assert vhdl.timing_routed.meets(TARGET_MHZ)
    assert 0.5 <= ratio <= 1.6
