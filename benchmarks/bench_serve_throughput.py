"""X — serve: warm job throughput must be at least 5x the cold rate.

Not a paper experiment: it bounds the payoff of putting the CAS store
behind a long-lived server.  A ``repro serve`` instance on a Unix
socket handles forced build jobs (dedup disabled — this measures raw
throughput, not coalescing) from four concurrent clients, twice over:
first against a cache-less scheduler, where every job synthesizes from
scratch, then against a pre-warmed store, where every job replays its
stages from disk.  Jobs/sec is clients-done wall time over job count;
the warm rate must beat the cold rate by the same 5x floor the store
itself guarantees.

The benchmark also asserts the subsystem's central correctness
property: every response body — cold, warm, any client — is byte
identical.
"""

import threading
import time
from pathlib import Path

from conftest import record_report

from repro.eval import format_table
from repro.serve import Scheduler, ServeClient, build_server
from repro.store import ArtifactStore

MIN_SPEEDUP = 5.0
CLIENTS = 4
COLD_JOBS_PER_CLIENT = 1
WARM_JOBS_PER_CLIENT = 3
PARAMS = {"flow": "osss"}


class _Served:
    """A serve stack on a Unix socket, torn down deterministically."""

    def __init__(self, root, store):
        self.scheduler = Scheduler(store, workers=2)
        self.scheduler.start()
        self.socket_path = str(root / "bench.sock")
        self.server = build_server(self.scheduler,
                                   socket_path=self.socket_path)
        self.thread = threading.Thread(target=self.server.serve_forever,
                                       kwargs={"poll_interval": 0.05},
                                       daemon=True)
        self.thread.start()

    def close(self):
        self.server.shutdown()
        self.server.server_close()
        self.scheduler.stop()


def _store_files(store):
    """Every artifact/pointer path under the store root, as a set."""
    root = Path(store.root)
    return {str(p.relative_to(root)) for p in root.rglob("*") if p.is_file()}


def _drive(socket_path, jobs_per_client):
    """All clients hammer the server; returns (wall_s, response set)."""
    texts = []
    errors = []
    barrier = threading.Barrier(CLIENTS + 1)

    def client_loop():
        try:
            client = ServeClient(socket_path=socket_path)
            barrier.wait()
            for _ in range(jobs_per_client):
                texts.append(client.run("build", PARAMS, force=True,
                                        timeout_s=600.0))
        except BaseException as exc:  # pragma: no cover - fail loud
            errors.append(exc)

    threads = [threading.Thread(target=client_loop)
               for _ in range(CLIENTS)]
    for thread in threads:
        thread.start()
    barrier.wait()
    start = time.perf_counter()
    for thread in threads:
        thread.join()
    wall = time.perf_counter() - start
    assert not errors, errors
    assert len(texts) == CLIENTS * jobs_per_client
    assert len(set(texts)) == 1, \
        "every client must receive byte-identical results"
    return wall, texts[0]


def test_warm_serve_throughput(tmp_path):
    # Cold: no store, so each of the 4 concurrent jobs synthesizes.
    cold_stack = _Served(tmp_path, store=None)
    try:
        cold_wall, cold_text = _drive(cold_stack.socket_path,
                                      COLD_JOBS_PER_CLIENT)
    finally:
        cold_stack.close()
    cold_jobs = CLIENTS * COLD_JOBS_PER_CLIENT
    cold_rate = cold_jobs / cold_wall

    # Warm: pre-warmed store, so every job replays from disk.
    store = ArtifactStore(tmp_path / "cache")
    warm_stack = _Served(tmp_path, store=store)
    try:
        warmup_client = ServeClient(socket_path=warm_stack.socket_path)
        warm_text = warmup_client.run("build", PARAMS, timeout_s=600.0)
        warmed = _store_files(store)
        warm_wall, warm_text_2 = _drive(warm_stack.socket_path,
                                        WARM_JOBS_PER_CLIENT)
    finally:
        warm_stack.close()
    warm_jobs = CLIENTS * WARM_JOBS_PER_CLIENT
    warm_rate = warm_jobs / warm_wall

    # Cache on or off, served or warmed up: one and the same document.
    assert cold_text == warm_text == warm_text_2
    # The warm phase really was warm: the workers replayed existing
    # artifacts instead of storing new ones.  (Counters live in the
    # worker processes, so the on-disk store is the shared evidence.)
    assert warmed, "the warmup run must populate the store"
    assert _store_files(store) == warmed

    speedup = warm_rate / cold_rate
    assert speedup >= MIN_SPEEDUP, (
        f"warm serving only {speedup:.1f}x the cold job rate "
        f"(cold {cold_rate:.2f} jobs/s, warm {warm_rate:.2f} jobs/s); "
        f"floor is {MIN_SPEEDUP:.0f}x"
    )

    rows = [
        {"configuration": "cold (no store)", "clients": CLIENTS,
         "jobs": cold_jobs, "wall_s": f"{cold_wall:.2f}",
         "jobs_per_s": f"{cold_rate:.2f}", "speedup": "-"},
        {"configuration": "warm (replay)", "clients": CLIENTS,
         "jobs": warm_jobs, "wall_s": f"{warm_wall:.2f}",
         "jobs_per_s": f"{warm_rate:.2f}",
         "speedup": f"{speedup:.1f}x vs cold"},
    ]
    record_report("X_serve_throughput", format_table(rows))
