"""E6 — bit and cycle accuracy on every stage (paper §12).

Paper claim: *"the behavior on every stage is bit and cycle accurate and
fully complies with its original description."*  Every ExpoCU unit is
driven with identical stimulus at the OSSS-simulation, generated-RTL and
optimized-netlist levels; the table reports cycles checked and mismatches
(which must all be zero).
"""

import random

from conftest import record_report

from repro.eval import check_all_stages, format_table
from repro.expocu import (
    CamSync,
    ExpoParamsUnit,
    HistogramUnit,
    I2cMaster,
    PolyAluUnit,
    ThresholdUnit,
)


def _stimuli():
    rng = random.Random(2004)
    cases = {}
    cases["CamSync"] = (
        lambda c, r: CamSync("s", c, r),
        [dict(pix_valid=rng.randint(0, 1), line_strobe=rng.randint(0, 1),
              frame_strobe=rng.randint(0, 1)) for _ in range(300)],
        ["pix_valid_sync", "line_start", "frame_start"],
    )
    hist_stim = []
    for _ in range(4):
        hist_stim.append(dict(pix=0, pix_valid=0, frame_start=1))
        hist_stim.extend(dict(pix=rng.randint(0, 255),
                              pix_valid=rng.randint(0, 1), frame_start=0)
                         for _ in range(50))
    cases["HistogramUnit"] = (
        lambda c, r: HistogramUnit[10]("h", c, r), hist_stim,
        [f"hist{i}" for i in range(8)] + ["hist_valid"],
    )
    thr_stim = []
    for _ in range(4):
        hist = {f"hist{i}": rng.randint(0, 64) for i in range(8)}
        thr_stim.append(dict(hist_valid=1, **hist))
        thr_stim.extend([dict(hist_valid=0, **hist)] * 13)
    cases["ThresholdUnit"] = (
        lambda c, r: ThresholdUnit[10, 256]("t", c, r), thr_stim,
        ["mean", "too_dark", "too_bright", "stats_valid"],
    )
    par_stim = []
    for mean in (40, 90, 200, 128, 20):
        par_stim.append(dict(mean=mean, stats_valid=1))
        par_stim.extend([dict(mean=mean, stats_valid=0)] * 60)
    cases["ExpoParamsUnit"] = (
        lambda c, r: ExpoParamsUnit[128]("p", c, r), par_stim,
        ["exposure", "gain", "params_valid", "busy"],
    )
    i2c_stim = [dict(start=1, dev_addr=0x21, reg_addr=0x10, data=0xA5,
                     sda_in=0)] + \
               [dict(start=0, dev_addr=0x21, reg_addr=0x10, data=0xA5,
                     sda_in=0)] * 420
    cases["I2cMaster"] = (
        lambda c, r: I2cMaster[2]("i", c, r), i2c_stim,
        ["scl", "sda_out", "sda_oe", "busy", "done", "ack_error"],
    )
    cases["PolyAluUnit"] = (
        lambda c, r: PolyAluUnit("a", c, r),
        [dict(op_select=rng.randint(0, 3), a=rng.randint(0, 255),
              b=rng.randint(0, 255)) for _ in range(200)],
        ["result", "history"],
    )
    return cases


def test_e6_stage_accuracy(benchmark):
    cases = _stimuli()
    rows = []
    total_mismatches = 0
    for name, (factory, stim, observed) in cases.items():
        if name == "CamSync":
            report = benchmark.pedantic(
                check_all_stages, args=(factory, stim, observed),
                rounds=1, iterations=1,
            )
        else:
            report = check_all_stages(factory, stim, observed)
        rows.append({
            "unit": name,
            "stages": " = ".join(report.stages),
            "cycles": report.cycles,
            "signals": len(observed),
            "mismatches": len(report.mismatches),
        })
        total_mismatches += len(report.mismatches)
    lines = [
        "paper: behavior on every stage is bit and cycle accurate",
        "",
        format_table(rows),
        "",
        f"total mismatches across all units/stages: {total_mismatches} "
        "(paper + expectation: 0)",
    ]
    record_report("E6_accuracy", "\n".join(lines))
    assert total_mismatches == 0
