"""X — bit-parallel (PPSFP) fault simulation: lanes over scalar replay.

Not a paper experiment: it quantifies the third scaling lever of the
fault-campaign engine.  The ``bitparallel`` backend packs up to 64
stuck-at faults into the bit-lanes of word-wide Python integers and
classifies a whole batch per replay; on the bundled ExpoCU netlist it
must beat the scalar compiled evaluator by at least 4x on campaign
wall-clock for a stuck-at-only fault list (measured ~6x; the drain
phase of hang-prone faults is what keeps it from the ~10x lane bound),
while producing a byte-identical report — the oracle contract every
backend is held to.

Injector construction (synthesis + technology mapping + codegen) happens
outside the timers: the campaign replay loop is what scales with fault
count, so that is what gets measured.
"""

import functools
import time

from conftest import record_report

from repro.eval import format_table
from repro.fault.campaign import generate_fault_list, run_campaign
from repro.fault.scenarios import (
    expocu_config,
    expocu_injector,
    expocu_stimulus,
)

FAULTS = 120
SEED = 1
SIDE = 8


def _campaign(injector, stimulus, faults):
    return run_campaign(
        injector, stimulus, faults, expocu_config("none"),
        design=f"ExpoCU[{SIDE},{SIDE}]", hardening="none", seed=SEED,
    )


def test_bitparallel_speedup_and_byte_identity():
    stimulus = expocu_stimulus(SEED, frames=1, side=SIDE)
    compiled_injector = expocu_injector("netlist", backend="compiled",
                                        side=SIDE)
    wide_injector = expocu_injector("netlist", backend="bitparallel",
                                    side=SIDE)
    # Stuck-at only: transient/seu faults fall back to scalar lanes, so
    # a mixed list measures the fallback path, not the lane packing.
    faults = generate_fault_list(
        compiled_injector, FAULTS, len(stimulus), SEED,
        kinds=("sa0", "sa1"),
    )

    start = time.perf_counter()
    compiled_result = _campaign(compiled_injector, stimulus, faults)
    t_compiled = time.perf_counter() - start

    start = time.perf_counter()
    wide_result = _campaign(wide_injector, stimulus, faults)
    t_wide = time.perf_counter() - start

    # Oracle contract first: speed means nothing if the bytes drift.
    assert wide_result.to_json() == compiled_result.to_json()
    assert compiled_result.golden_selfcheck == "masked"
    assert wide_result.exec_stats["lane_batches"] > 0

    speedup = t_compiled / t_wide
    assert speedup >= 4.0, (
        f"bitparallel evaluator only {speedup:.2f}x over compiled "
        f"({t_wide:.2f}s vs {t_compiled:.2f}s)"
    )

    rows = [
        {"configuration": "compiled, scalar replay",
         "campaign_s": f"{t_compiled:.2f}", "speedup": "1.00x"},
        {"configuration": "bitparallel, lane-packed (byte-identical)",
         "campaign_s": f"{t_wide:.2f}",
         "speedup": f"{speedup:.2f}x"},
    ]
    record_report("X_bitparallel", format_table(rows))
