"""The paper's Results section, live (paper §12, Fig. 12).

Synthesizes the complete ExpoCU through BOTH flows — the OSSS
object-oriented description via behavioral synthesis, and the hand-written
"VHDL" RTL with netlist-linked IP multipliers — and prints the area /
frequency comparison plus the Fig. 12 per-module inventory.

Run:  python examples/two_flows.py   (takes ~10 s)
"""

from repro.baseline import expocu_rtl
from repro.eval import flow_comparison, module_inventory, run_osss_flow, run_vhdl_flow
from repro.expocu import ExpoCU
from repro.hdl import Clock, NS, Signal
from repro.types import Bit
from repro.types.spec import bit


def main() -> None:
    print("synthesizing the OSSS flow (analyzer -> synthesizer -> gates)…")
    osss = run_osss_flow(
        ExpoCU[16, 16]("expocu", Clock("clk", 15 * NS),
                       Signal("rst", bit(), Bit(1))), "osss",
    )
    print("synthesizing the VHDL flow (hand RTL + IP linking)…\n")
    vhdl = run_vhdl_flow(expocu_rtl(), "vhdl")

    print("=== flow comparison (paper §12) ===")
    print(flow_comparison(osss, vhdl))
    print("\n=== synthesized module inventory, OSSS flow (Fig. 12) ===")
    print(module_inventory(osss))
    print("\nplacement:", osss.placement.configuration())


if __name__ == "__main__":
    main()
