"""Polymorphism demo (paper §6): one interface, four ALU classes.

A :class:`PolyVar` dispatches ``execute`` over Add/Sub/Mul/Max objects —
the paper's ALU example — and the synthesizer lowers the virtual call to
tag-selected multiplexers (§8).  The script shows dynamic reassignment in
simulation, then synthesizes the unit and reports the mux cost.

Run:  python examples/polymorphic_alu.py
"""

from repro.expocu import ALU_CLASSES, AluOp, PolyAluUnit
from repro.hdl import Clock, Module, NS, Signal, Simulator
from repro.netlist import analyze, cell_histogram, map_module, optimize, total_area
from repro.osss import PolyVar
from repro.synth import synthesize
from repro.synth.polygen import poly_layout_note
from repro.types import Bit, Unsigned
from repro.types.spec import bit


def main() -> None:
    # --- object-level demo -------------------------------------------
    alu = PolyVar(AluOp, ALU_CLASSES)
    print("polymorphic dispatch through one interface:")
    for cls in ALU_CLASSES:
        alu.assign(cls())
        result = alu.execute(Unsigned(8, 12), Unsigned(8, 5))
        print(f"  {cls.__name__:8s} execute(12, 5) = {int(result)}"
              f"   (tag={alu.tag})")
    print("hardware geometry:", poly_layout_note(alu))

    # --- module-level simulation --------------------------------------
    top = Module("top")
    top.clk = Clock("clk", 10 * NS)
    top.rst = Signal("rst", bit(), Bit(1))
    top.dut = PolyAluUnit("alu", top.clk, top.rst)
    sim = Simulator(top)
    sim.run(20 * NS)
    top.rst.write(0)
    for select in range(4):
        top.dut.op_select.drive(select)
        top.dut.a.drive(12)
        top.dut.b.drive(5)
        sim.run(20 * NS)
        print(f"  module op {select}: result = "
              f"{int(top.dut.result.read())}")

    # --- synthesis: §8 'multiplexers are being inserted' ---------------
    rtl = synthesize(PolyAluUnit("alu", Clock("clk", 10 * NS),
                                 Signal("rst", bit(), Bit(1))))
    circuit = map_module(rtl)
    optimize(circuit)
    histogram = cell_histogram(circuit)
    print(f"\nsynthesized: {len(circuit.cells)} cells, "
          f"{total_area(circuit):.1f} GE, "
          f"Fmax {analyze(circuit).fmax_mhz:.0f} MHz")
    print(f"selection multiplexers inserted: {histogram.get('MUX2', 0)}")


if __name__ == "__main__":
    main()
