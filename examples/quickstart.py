"""Quickstart: one OSSS class from simulation to gates.

Reproduces the paper's running example (Fig. 2–8): the templated
``SyncRegister`` class inside a small module is

1. simulated on the SystemC-like kernel,
2. resolved into readable non-member functions (Fig. 7),
3. synthesized to RTL and technology-mapped to gates,
4. checked cycle-accurate at every stage, and reported (area, Fmax).

Run:  python examples/quickstart.py
"""

import random

from repro.expocu import CamSync, SyncRegister
from repro.hdl import Clock, Module, NS, Signal, Simulator
from repro.netlist import AreaReport, GateSimulator, analyze, map_module, optimize
from repro.rtl import RtlSimulator
from repro.synth import synthesize
from repro.synth.codegen import resolve_class_text
from repro.types import Bit
from repro.types.spec import bit


def main() -> None:
    # ------------------------------------------------------------------
    # 1. simulate the OSSS description on the kernel
    # ------------------------------------------------------------------
    top = Module("top")
    top.clk = Clock("clk", 15 * NS)  # the paper's 66 MHz system clock
    top.rst = Signal("rst", bit(), Bit(1))
    top.dut = CamSync("sync", top.clk, top.rst)
    sim = Simulator(top)
    sim.run(2 * 15 * NS)
    top.rst.write(0)

    rng = random.Random(1)
    stimulus = [dict(pix_valid=rng.randint(0, 1),
                     line_strobe=rng.randint(0, 1),
                     frame_strobe=rng.randint(0, 1)) for _ in range(100)]
    kernel_trace = []
    for entry in stimulus:
        for name, value in entry.items():
            top.dut.port(name).drive(value)
        sim.run(15 * NS)
        kernel_trace.append((int(top.dut.frame_start.read()),
                             int(top.dut.line_start.read())))
    print(f"[1] kernel simulation: {len(stimulus)} cycles, "
          f"{sum(f for f, _ in kernel_trace)} frame pulses")

    # ------------------------------------------------------------------
    # 2. the Fig. 7 intermediate: classes resolved to non-member functions
    # ------------------------------------------------------------------
    print("\n[2] generated procedural intermediate (paper Fig. 7):\n")
    text = resolve_class_text(SyncRegister[4, 0])
    for line in text.splitlines():
        if line.startswith("def _SyncRegister"):
            print("   ", line)

    # ------------------------------------------------------------------
    # 3. synthesize and map to gates
    # ------------------------------------------------------------------
    rtl = synthesize(CamSync("sync", Clock("clk", 15 * NS),
                             Signal("rst", bit(), Bit(1))))
    circuit = map_module(rtl)
    optimize(circuit)
    timing = analyze(circuit)
    print(f"\n[3] synthesized: {rtl.attributes.get('fsm_states')} "
          f"-> {len(circuit.cells)} cells, "
          f"{AreaReport(circuit).total:.1f} GE, "
          f"Fmax {timing.fmax_mhz:.0f} MHz "
          f"(target 66 MHz: {'met' if timing.meets(66) else 'MISSED'})")

    # ------------------------------------------------------------------
    # 4. bit/cycle accuracy at RTL and gate level (paper §12)
    # ------------------------------------------------------------------
    rtl_sim = RtlSimulator(rtl)
    gate_sim = GateSimulator(circuit)
    for stage_sim in (rtl_sim, gate_sim):
        stage_sim.step(reset=1)
        stage_sim.step(reset=1)
    mismatches = 0
    for index, entry in enumerate(stimulus):
        rtl_sim.step(reset=0, **entry)
        gate_sim.step(reset=0, **entry)
        rtl_out = rtl_sim.peek_outputs()
        gate_out = gate_sim.peek_outputs()
        expected = kernel_trace[index]
        got = (rtl_out["frame_start"], rtl_out["line_start"])
        if got != expected or rtl_out != gate_out:
            mismatches += 1
    print(f"[4] lockstep check kernel = RTL = gates: "
          f"{mismatches} mismatches over {len(stimulus)} cycles")
    assert mismatches == 0


if __name__ == "__main__":
    main()
