"""The headline scenario: closed-loop auto exposure (paper §2, Fig. 1).

The complete OSSS ExpoCU controls a synthetic camera over I²C: histogram →
thresholds → parameter calculation (shared multiplier, serial divider) →
I²C register writes → sensor response.  The loop drives the frame mean to
the 128 target from a deliberately underexposed start, and a VCD trace of
the control interface is written next to this script.

Run:  python examples/auto_exposure.py
"""

from repro.expocu import CameraModel, ExpoCU
from repro.hdl import Clock, Module, NS, Signal, Simulator, VcdTrace
from repro.types import Bit
from repro.types.spec import bit


def build_system(scene_mean=95, noise=3):
    top = Module("system")
    top.clk = Clock("clk", 15 * NS)  # 66 MHz
    top.rst = Signal("rst", bit(), Bit(1))
    top.cam = CameraModel("cam", top.clk, top.rst, width=16, height=16,
                          scene_mean=scene_mean, noise=noise)
    top.dut = ExpoCU[16, 16]("expocu", top.clk, top.rst)
    top.dut.port("pix").bind(top.cam.port("pix"))
    top.dut.port("pix_valid").bind(top.cam.port("pix_valid"))
    top.dut.port("line_strobe").bind(top.cam.port("line_strobe"))
    top.dut.port("frame_strobe").bind(top.cam.port("frame_strobe"))
    top.cam.port("scl").bind(top.dut.port("scl"))
    top.cam.port("sda_master").bind(top.dut.port("sda_out"))
    top.cam.port("sda_oe").bind(top.dut.port("sda_oe"))
    top.dut.port("sda_in").bind(top.cam.port("sda_in"))
    return top


def main() -> None:
    top = build_system()
    sim = Simulator(top)
    trace = VcdTrace(sim)
    for name in ("scl", "sda_out", "exposure", "gain", "mean"):
        trace.trace_signal(top.dut.port(name).signal, name)

    sim.run(10 * 15 * NS)
    top.rst.write(0)

    print("frame |  measured mean | exposure | gain | i2c writes")
    print("------+----------------+----------+------+-----------")
    for frame in range(14):
        sim.run(700 * 15 * NS)  # roughly one frame + blanking
        print(f"{frame:5d} | {top.cam.mean_pixel():14.1f} "
              f"| {top.cam.exposure:8d} | {top.cam.gain:4d} "
              f"| {len(top.cam.register_log):5d}")

    final = top.cam.mean_pixel()
    print(f"\nconverged mean = {final:.1f} (target 128)")
    trace.write("auto_exposure.vcd")
    print(f"waveform written to auto_exposure.vcd "
          f"({trace.change_count} value changes)")
    assert abs(final - 128) < 25


if __name__ == "__main__":
    main()
