"""Global-object demo (paper §6/§8): a guarded multiplier, three schedulers.

Two clocked threads compete for one `SharedMultiplier`.  The same design is
run with the round-robin, static-priority and FCFS schedulers ("a designer
can use a standard scheduler or implement an own"), showing the grant order
each policy produces; the design is then synthesized and the generated
arbiter module is reported.

Run:  python examples/shared_multiplier.py
"""

from repro.expocu.expoparams import SharedMultiplier
from repro.hdl import Clock, Input, Module, NS, Output, Signal, Simulator
from repro.netlist import analyze, map_module, optimize, total_area
from repro.osss import Fcfs, RoundRobin, SharedObject, StaticPriority
from repro.synth import synthesize
from repro.types import Bit, Unsigned
from repro.types.spec import bit, unsigned


class Worker(Module):
    result = Output(unsigned(24))

    def __init__(self, name, clk, rst, port, operand):
        super().__init__(name)
        self.port = port
        self.operand = operand
        self.cthread(self.run, clock=clk, reset=rst)

    def run(self):
        self.result.write(Unsigned(24, 0))
        yield
        while True:
            value = yield from self.port.call(
                "multiply", Unsigned(16, self.operand), Unsigned(8, 3)
            )
            self.result.write(value)
            yield
            yield


def demo(policy) -> None:
    shared = SharedObject("mul", SharedMultiplier(), scheduler=policy)

    class Top(Module):
        def __init__(self):
            super().__init__("top")
            self.clk = Clock("clk", 10 * NS)
            self.rst = Signal("rst", bit(), Bit(1))
            self.w0 = Worker("w0", self.clk, self.rst,
                             shared.client_port("w0"), 11)
            self.w1 = Worker("w1", self.clk, self.rst,
                             shared.client_port("w1"), 22)

    top = Top()
    sim = Simulator(top)
    sim.run(20 * NS)
    top.rst.write(0)
    sim.run(200 * NS)
    grants = [winner for _, winner in shared.grant_history[:8]]
    print(f"  {type(policy).__name__:14s} grant order: {grants}  "
          f"(object served {int(shared.instance.op_count)} calls)")


def main() -> None:
    print("arbitration policies over the same contention pattern:")
    for policy in (RoundRobin(), StaticPriority(), Fcfs()):
        demo(policy)

    # Synthesize one instance and inspect the generated arbiter.
    shared = SharedObject("mul", SharedMultiplier(),
                          scheduler=RoundRobin())

    class Top(Module):
        def __init__(self, clk, rst):
            super().__init__("top")
            self.w0 = Worker("w0", clk, rst, shared.client_port("w0"), 11)
            self.w1 = Worker("w1", clk, rst, shared.client_port("w1"), 22)

    # observe_children exposes the workers' results as top-level outputs
    # so the netlist keeps the whole datapath alive.
    rtl = synthesize(Top(Clock("clk", 10 * NS),
                         Signal("rst", bit(), Bit(1))))
    arbiter = next(i for i in rtl.instances
                   if i.name.startswith("arbiter_"))
    print(f"\ngenerated arbiter: {arbiter.module.name} "
          f"(policy={arbiter.module.attributes['policy']}, "
          f"registers={len(arbiter.module.registers)})")
    circuit = map_module(rtl)
    optimize(circuit)
    print(f"whole design: {len(circuit.cells)} cells, "
          f"{total_area(circuit):.1f} GE, "
          f"Fmax {analyze(circuit).fmax_mhz:.0f} MHz")


if __name__ == "__main__":
    main()
