"""Netlist optimization.

A small logic optimizer run by both flows after technology mapping:

* **constant propagation** — gates with constant inputs collapse;
* **identity simplification** — double inverters, same-input gates,
  degenerate multiplexers;
* **common-subexpression elimination** — structurally identical cells merge
  (commutative inputs sorted);
* **dead-logic removal** — cones not reaching an output (or black-box
  input) disappear.

Passes iterate to a fixed point.  Because both flows share the optimizer,
the paper's "area almost equivalent" result (R1) and the zero-overhead
class-resolution check (R3) compare optimized-against-optimized.
"""

from __future__ import annotations

from repro.netlist.circuit import Cell, Circuit, Net, NetlistError

#: Commutative two-input cell types (inputs may be sorted for CSE).
_COMMUTATIVE = {"AND2", "OR2", "XOR2", "XNOR2", "NAND2", "NOR2"}


class _Aliases:
    """Union-find style net replacement map with path compression."""

    def __init__(self) -> None:
        self._map: dict[int, Net] = {}

    def alias(self, old: Net, new: Net) -> None:
        self._map[old.uid] = new

    def resolve(self, net: Net) -> Net:
        seen = []
        while net.uid in self._map:
            seen.append(net.uid)
            net = self._map[net.uid]
        for uid in seen:
            self._map[uid] = net
        return net

    def __bool__(self) -> bool:
        return bool(self._map)


def _const_of(circuit: Circuit, net: Net) -> int | None:
    """0/1 if *net* is a constant tie, else None."""
    if net.driver is None:
        return None
    cell, _ = net.driver
    if cell.ctype.name == "TIE0":
        return 0
    if cell.ctype.name == "TIE1":
        return 1
    return None


def _simplify_cell(circuit: Circuit, cell: Cell, aliases: _Aliases,
                   removed: set[int]) -> bool:
    """Try to simplify one cell in place.  Returns True on change."""
    name = cell.ctype.name
    if name in ("TIE0", "TIE1", "DFF"):
        return False
    out = cell.pins["y"]

    def become_const(value: int) -> bool:
        aliases.alias(out, circuit.const_net(value))
        out.driver = None
        removed.add(cell.uid)
        return True

    def become_net(net: Net) -> bool:
        aliases.alias(out, net)
        out.driver = None
        removed.add(cell.uid)
        return True

    def become_inv(net: Net) -> bool:
        from repro.netlist.cells import INV

        cell.ctype = INV
        cell.pins = {"a": net, "y": out}
        return True

    if name in ("INV", "BUF"):
        a = cell.pins["a"]
        const = _const_of(circuit, a)
        if name == "BUF":
            return become_net(a)
        if const is not None:
            return become_const(1 - const)
        # Double inverter: INV(INV(x)) -> x.
        if a.driver is not None and a.driver[0].ctype.name == "INV":
            return become_net(a.driver[0].pins["a"])
        return False

    if name == "MUX2":
        d0, d1, sel = cell.pins["d0"], cell.pins["d1"], cell.pins["s"]
        s_const = _const_of(circuit, sel)
        if s_const is not None:
            return become_net(d1 if s_const else d0)
        if d0.uid == d1.uid:
            return become_net(d0)
        c0, c1 = _const_of(circuit, d0), _const_of(circuit, d1)
        if c0 == 0 and c1 == 1:
            return become_net(sel)
        if c0 == 1 and c1 == 0:
            return become_inv(sel)
        return False

    if name in _COMMUTATIVE:
        a, b = cell.pins["i0"], cell.pins["i1"]
        ca, cb = _const_of(circuit, a), _const_of(circuit, b)
        if ca is not None and cb is None:
            a, b, ca, cb = b, a, cb, ca  # constant on the right
            cell.pins["i0"], cell.pins["i1"] = a, b
        if cb is not None:
            if name == "AND2":
                return become_const(0) if cb == 0 else become_net(a)
            if name == "OR2":
                return become_const(1) if cb == 1 else become_net(a)
            if name == "XOR2":
                return become_net(a) if cb == 0 else become_inv(a)
            if name == "XNOR2":
                return become_net(a) if cb == 1 else become_inv(a)
            if name == "NAND2":
                return become_const(1) if cb == 0 else become_inv(a)
            if name == "NOR2":
                return become_const(0) if cb == 1 else become_inv(a)
        if a.uid == b.uid:
            if name in ("AND2", "OR2"):
                return become_net(a)
            if name == "XOR2":
                return become_const(0)
            if name == "XNOR2":
                return become_const(1)
            if name in ("NAND2", "NOR2"):
                return become_inv(a)
    return False


def _rewire(circuit: Circuit, aliases: _Aliases) -> None:
    """Apply pending aliases to all cell inputs and bus lists."""
    for cell in circuit.cells:
        for pin in cell.ctype.inputs:
            cell.pins[pin] = aliases.resolve(cell.pins[pin])
    for box in circuit.blackboxes:
        for nets in box.input_buses.values():
            nets[:] = [aliases.resolve(n) for n in nets]
    for nets in circuit.output_buses.values():
        nets[:] = [aliases.resolve(n) for n in nets]


def _cse_pass(circuit: Circuit, aliases: _Aliases) -> bool:
    """Merge structurally identical cells."""
    table: dict[tuple, Cell] = {}
    removed: set[int] = set()
    for cell in circuit.cells:
        name = cell.ctype.name
        if name in ("DFF", "TIE0", "TIE1"):
            continue
        ins = tuple(cell.pins[p].uid for p in cell.ctype.inputs)
        if name in _COMMUTATIVE:
            ins = tuple(sorted(ins))
        key = (name, ins)
        existing = table.get(key)
        if existing is None:
            table[key] = cell
            continue
        aliases.alias(cell.pins["y"], existing.pins["y"])
        cell.pins["y"].driver = None
        removed.add(cell.uid)
    if removed:
        circuit.cells = [c for c in circuit.cells if c.uid not in removed]
    return bool(removed)


def _dead_removal(circuit: Circuit) -> bool:
    """Remove cells whose outputs reach no output/flop/black box."""
    seeds: list[Net] = []
    for nets in circuit.output_buses.values():
        seeds.extend(nets)
    for box in circuit.blackboxes:
        for nets in box.input_buses.values():
            seeds.extend(nets)
    _, live_cells = circuit.fanin_cone(seeds)
    before = len(circuit.cells)
    removed = [c for c in circuit.cells if c.uid not in live_cells]
    for cell in removed:
        for pin in cell.ctype.outputs:
            cell.pins[pin].driver = None
    circuit.cells = [c for c in circuit.cells if c.uid in live_cells]
    # Keep the const-net cache consistent with removed tie cells.
    circuit._const = {
        value: net
        for value, net in circuit._const.items()
        if net.driver is not None
    }
    return len(circuit.cells) != before


def _mux_chain_pass(circuit: Circuit, aliases: _Aliases) -> bool:
    """Collapse pass-through multiplexer chains.

    ``y1 = s1 ? x : (s2 ? x : z)``  →  ``y1 = (s1|s2) ? x : z`` and the dual
    with the shared net on the 0-arm.  FSM write folding and object-field
    insertion produce long chains of muxes that mostly pass the old value;
    this rewrite turns each chain into one mux plus an OR/AND tree, cutting
    both area and logic depth.  Inner muxes are only bypassed (and later
    removed as dead) when nothing else reads them.
    """
    from repro.netlist.cells import AND2, INV, OR2

    fanout = circuit.fanout_map()
    changed = False
    for cell in circuit.cells:
        if cell.ctype.name != "MUX2":
            continue
        d0, d1, sel = cell.pins["d0"], cell.pins["d1"], cell.pins["s"]
        for arm, shared in (("d0", d1), ("d1", d0)):
            inner_net = cell.pins[arm]
            if inner_net.driver is None:
                continue
            inner, _ = inner_net.driver
            if inner.ctype.name != "MUX2" or inner is cell:
                continue
            if len(fanout.get(inner_net.uid, ())) != 1:
                continue
            i_d0, i_d1 = inner.pins["d0"], inner.pins["d1"]
            i_sel = inner.pins["s"]
            if arm == "d0" and i_d0.uid == shared.uid:
                # y = s ? x : (si ? z : x)  ->  y = (s | ~si) ? x : z
                ninv = circuit.new_net(f"{cell.name}_ni")
                circuit.add_cell(f"{cell.name}_inv", INV, a=i_sel, y=ninv)
                combined = circuit.new_net(f"{cell.name}_or")
                circuit.add_cell(f"{cell.name}_c", OR2, i0=sel, i1=ninv,
                                 y=combined)
                cell.pins["s"] = combined
                cell.pins["d0"] = i_d1
                changed = True
                break
            if arm == "d0" and i_d1.uid == shared.uid:
                # y = s ? x : (si ? x : z)  ->  y = (s | si) ? x : z
                combined = circuit.new_net(f"{cell.name}_or")
                circuit.add_cell(f"{cell.name}_c", OR2, i0=sel, i1=i_sel,
                                 y=combined)
                cell.pins["s"] = combined
                cell.pins["d0"] = i_d0
                changed = True
                break
            if arm == "d1" and i_d0.uid == shared.uid:
                # y = s ? (si ? z : x) : x  ->  y = (s & si) ? z : x
                combined = circuit.new_net(f"{cell.name}_and")
                circuit.add_cell(f"{cell.name}_c", AND2, i0=sel, i1=i_sel,
                                 y=combined)
                cell.pins["s"] = combined
                cell.pins["d1"] = i_d1
                changed = True
                break
            if arm == "d1" and i_d1.uid == shared.uid:
                # y = s ? (si ? x : z) : x  ->  y = (s & ~si) ? z : x
                ninv = circuit.new_net(f"{cell.name}_ni")
                circuit.add_cell(f"{cell.name}_inv", INV, a=i_sel, y=ninv)
                combined = circuit.new_net(f"{cell.name}_and")
                circuit.add_cell(f"{cell.name}_c", AND2, i0=sel, i1=ninv,
                                 y=combined)
                cell.pins["s"] = combined
                cell.pins["d1"] = i_d0
                changed = True
                break
    return changed


def optimize(circuit: Circuit, max_passes: int = 25) -> Circuit:
    """Optimize *circuit* in place to a fixed point; returns it."""
    for _ in range(max_passes):
        changed = False
        aliases = _Aliases()
        removed: set[int] = set()
        for cell in circuit.cells:
            if cell.uid in removed:
                continue
            if _simplify_cell(circuit, cell, aliases, removed):
                changed = True
        if removed:
            circuit.cells = [c for c in circuit.cells if c.uid not in removed]
        if aliases:
            _rewire(circuit, aliases)
        aliases = _Aliases()
        if _cse_pass(circuit, aliases):
            changed = True
        if aliases:
            _rewire(circuit, aliases)
        if _mux_chain_pass(circuit, _Aliases()):
            changed = True
        if _dead_removal(circuit):
            changed = True
        if not changed:
            break
    return circuit
