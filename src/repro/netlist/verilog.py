"""Structural Verilog netlist emission (paper Fig. 6, ``*.v`` netlist).

Renders a mapped :class:`~repro.netlist.circuit.Circuit` as a gate-level
Verilog netlist over a small behavioural cell library (emitted alongside,
so the file is self-contained and simulable by any Verilog tool).
"""

from __future__ import annotations

from repro.netlist.circuit import Circuit

#: Behavioural models of the standard cells, emitted once per file.
CELL_MODELS = """\
module INV (input wire a, output wire y);      assign y = ~a;      endmodule
module BUF (input wire a, output wire y);      assign y = a;       endmodule
module NAND2 (input wire i0, i1, output wire y); assign y = ~(i0 & i1); endmodule
module NOR2 (input wire i0, i1, output wire y);  assign y = ~(i0 | i1); endmodule
module AND2 (input wire i0, i1, output wire y);  assign y = i0 & i1; endmodule
module OR2 (input wire i0, i1, output wire y);   assign y = i0 | i1; endmodule
module XOR2 (input wire i0, i1, output wire y);  assign y = i0 ^ i1; endmodule
module XNOR2 (input wire i0, i1, output wire y); assign y = ~(i0 ^ i1); endmodule
module MUX2 (input wire d0, d1, s, output wire y); assign y = s ? d1 : d0; endmodule
module DFF (input wire clk, d, output reg q);
  initial q = 1'b0;
  always @(posedge clk) q <= d;
endmodule
module TIE0 (output wire y); assign y = 1'b0; endmodule
module TIE1 (output wire y); assign y = 1'b1; endmodule
"""


def _net_name(index: int) -> str:
    return f"n{index}"


def to_structural_verilog(circuit: Circuit, top_name: str | None = None,
                          include_models: bool = True) -> str:
    """Render *circuit* as a flat structural Verilog netlist."""
    circuit.validate()
    top = top_name or circuit.name
    safe_top = "".join(ch if ch.isalnum() or ch == "_" else "_"
                       for ch in top)

    net_ids: dict[int, str] = {}

    def net(net_obj) -> str:
        if net_obj.uid not in net_ids:
            net_ids[net_obj.uid] = _net_name(len(net_ids))
        return net_ids[net_obj.uid]

    ports = ["input wire clk"]
    body: list[str] = []
    for name, nets in circuit.input_buses.items():
        width = f"[{len(nets) - 1}:0] " if len(nets) > 1 else ""
        ports.append(f"input wire {width}{name}")
        for index, bit_net in enumerate(nets):
            suffix = f"[{index}]" if len(nets) > 1 else ""
            body.append(f"  assign {net(bit_net)} = {name}{suffix};")
    for name, nets in circuit.output_buses.items():
        width = f"[{len(nets) - 1}:0] " if len(nets) > 1 else ""
        ports.append(f"output wire {width}{name}")

    wires = []
    cells = []
    for index, cell in enumerate(circuit.cells):
        pins = []
        if cell.ctype.sequential:
            pins.append(".clk(clk)")
        for pin, pin_net in cell.pins.items():
            pins.append(f".{pin}({net(pin_net)})")
        cells.append(
            f"  {cell.ctype.name} u{index} ({', '.join(pins)});"
        )
    assigns_out = []
    for name, nets in circuit.output_buses.items():
        for index, bit_net in enumerate(nets):
            suffix = f"[{index}]" if len(nets) > 1 else ""
            assigns_out.append(f"  assign {name}{suffix} = "
                               f"{net(bit_net)};")
    wires = [f"  wire {name};" for name in net_ids.values()]

    lines = []
    if include_models:
        lines.append(CELL_MODELS)
    lines.append(f"module {safe_top} (\n  " + ",\n  ".join(ports) + "\n);")
    lines.extend(wires)
    lines.extend(body)
    lines.extend(cells)
    lines.extend(assigns_out)
    lines.append("endmodule\n")
    return "\n".join(lines)


def netlist_stats_comment(circuit: Circuit) -> str:
    """A summary comment block matching synthesis-tool report headers."""
    from repro.netlist.area import cell_histogram, total_area

    histogram = cell_histogram(circuit)
    rows = "\n".join(f"//   {name:<8s} {count:6d}"
                     for name, count in histogram.items())
    return (f"// design {circuit.name}: {len(circuit.cells)} cells, "
            f"{total_area(circuit):.1f} GE\n{rows}\n")
