"""Gate-level netlist graph.

A :class:`Circuit` is a flat netlist: nets, standard cells from
:mod:`repro.netlist.cells`, named input/output *buses* (ordered nets,
LSB-first) and optional black-box instances for separately synthesized IP
(the paper's Fig. 6 "VHDL IP modules" path, resolved by
:mod:`repro.netlist.linker`).  Cell names carry a ``path/`` prefix so the
per-module area report (Fig. 12) can attribute cells to design units after
flattening.
"""

from __future__ import annotations

import itertools
from typing import Iterable

from repro.netlist.cells import CellType, DFF, LIBRARY, TIE0, TIE1


class NetlistError(ValueError):
    """Raised for malformed netlists (multiple drivers, dangling pins...)."""


class Net:
    """A single-bit wire."""

    __slots__ = ("name", "uid", "driver")
    _ids = itertools.count()

    def __init__(self, name: str) -> None:
        self.name = name
        self.uid = next(Net._ids)
        #: The (cell, output_pin) driving this net; None for primary inputs.
        self.driver: tuple["Cell", str] | None = None

    def __repr__(self) -> str:
        return f"Net({self.name!r})"


class Cell:
    """An instantiated library cell."""

    __slots__ = ("name", "ctype", "pins", "uid")
    _ids = itertools.count()

    def __init__(self, name: str, ctype: CellType,
                 pins: dict[str, Net]) -> None:
        self.name = name
        self.ctype = ctype
        self.pins = pins
        self.uid = next(Cell._ids)

    def input_nets(self) -> list[Net]:
        """Nets on the cell's input pins, in pin order."""
        return [self.pins[pin] for pin in self.ctype.inputs]

    def output_nets(self) -> list[Net]:
        """Nets on the cell's output pins, in pin order."""
        return [self.pins[pin] for pin in self.ctype.outputs]

    def __repr__(self) -> str:
        return f"Cell({self.name!r}:{self.ctype.name})"


class BlackBox:
    """A placeholder for separately synthesized IP (netlist-level link)."""

    __slots__ = ("name", "ip_name", "input_buses", "output_buses", "uid")
    _ids = itertools.count()

    def __init__(
        self,
        name: str,
        ip_name: str,
        input_buses: dict[str, list[Net]],
        output_buses: dict[str, list[Net]],
    ) -> None:
        self.name = name
        self.ip_name = ip_name
        self.input_buses = input_buses
        self.output_buses = output_buses
        self.uid = next(BlackBox._ids)

    def __repr__(self) -> str:
        return f"BlackBox({self.name!r}:{self.ip_name})"


class Circuit:
    """A flat gate-level netlist with named buses."""

    def __init__(self, name: str) -> None:
        self.name = name
        self.nets: list[Net] = []
        self.cells: list[Cell] = []
        self.blackboxes: list[BlackBox] = []
        self.input_buses: dict[str, list[Net]] = {}
        self.output_buses: dict[str, list[Net]] = {}
        self._const: dict[int, Net] = {}

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------
    def new_net(self, name: str) -> Net:
        """Create a fresh net."""
        net = Net(name)
        self.nets.append(net)
        return net

    def new_bus(self, name: str, width: int) -> list[Net]:
        """Create *width* fresh nets named ``name[k]``."""
        return [self.new_net(f"{name}[{k}]") for k in range(width)]

    def add_cell(self, name: str, ctype: "CellType | str",
                 **pins: Net) -> Cell:
        """Instantiate a cell; keyword arguments map pin name to net."""
        if isinstance(ctype, str):
            ctype = LIBRARY[ctype]
        missing = [p for p in (*ctype.inputs, *ctype.outputs) if p not in pins]
        if missing:
            raise NetlistError(f"cell {name}: unconnected pins {missing}")
        cell = Cell(name, ctype, dict(pins))
        for pin in ctype.outputs:
            net = pins[pin]
            if net.driver is not None:
                raise NetlistError(f"net {net.name!r} has multiple drivers")
            net.driver = (cell, pin)
        self.cells.append(cell)
        return cell

    def const_net(self, value: int) -> Net:
        """The shared constant-0 or constant-1 net."""
        value = int(bool(value))
        if value not in self._const:
            net = self.new_net(f"const{value}")
            self.add_cell(f"tie{value}", TIE1 if value else TIE0, y=net)
            self._const[value] = net
        return self._const[value]

    def mark_input(self, name: str, nets: list[Net]) -> None:
        """Declare *nets* as the primary input bus *name* (LSB first)."""
        for net in nets:
            if net.driver is not None:
                raise NetlistError(
                    f"input net {net.name!r} already has a driver"
                )
        self.input_buses[name] = list(nets)

    def mark_output(self, name: str, nets: list[Net]) -> None:
        """Declare *nets* as the primary output bus *name* (LSB first)."""
        self.output_buses[name] = list(nets)

    def add_blackbox(
        self,
        name: str,
        ip_name: str,
        input_buses: dict[str, list[Net]],
        output_buses: dict[str, list[Net]],
    ) -> BlackBox:
        """Record an IP instance to be resolved by the linker."""
        box = BlackBox(name, ip_name, input_buses, output_buses)
        for nets in output_buses.values():
            for net in nets:
                if net.driver is not None:
                    raise NetlistError(
                        f"blackbox output net {net.name!r} already driven"
                    )
        self.blackboxes.append(box)
        return box

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------
    def constant_nets(self) -> dict[int, Net]:
        """The shared constant nets, as ``{value: net}`` (a copy).

        The circuit has at most one constant-0 and one constant-1 net
        (see :meth:`const_net`); they are shared by every cell that
        consumes a constant, which is why simulators must never write
        them.  Mutating the returned dict does not affect the circuit.
        """
        return dict(self._const)

    def flops(self) -> list[Cell]:
        """All sequential cells."""
        return [c for c in self.cells if c.ctype.sequential]

    def comb_cells(self) -> list[Cell]:
        """All combinational cells."""
        return [c for c in self.cells if not c.ctype.sequential]

    def cell_count(self, type_name: str | None = None) -> int:
        """Number of cells, optionally of one library type."""
        if type_name is None:
            return len(self.cells)
        return sum(1 for c in self.cells if c.ctype.name == type_name)

    def fanout_map(self) -> dict[int, list[tuple[Cell, str]]]:
        """Net uid → list of (cell, input_pin) loads."""
        loads: dict[int, list[tuple[Cell, str]]] = {}
        for cell in self.cells:
            for pin in cell.ctype.inputs:
                loads.setdefault(cell.pins[pin].uid, []).append((cell, pin))
        return loads

    def primary_input_nets(self) -> set[int]:
        """Uids of all primary-input nets."""
        return {
            net.uid for nets in self.input_buses.values() for net in nets
        }

    def fanin_cone(self, seeds: Iterable[Net]) -> tuple[set[int], set[int]]:
        """Transitive fan-in of *seeds*: ``(net_uids, cell_uids)``.

        Walks drivers backward from the seed nets, crossing combinational
        cells and flip-flops alike (a flop's D cone is part of its Q's
        fan-in), so the result is the set of nets and cells that can
        structurally influence the seeds over any number of cycles.
        Both the dead-logic pass in :mod:`repro.netlist.opt` and the
        observability analysis in :mod:`repro.analyze.netlist` are
        defined in terms of this cone.
        """
        net_uids: set[int] = set()
        cell_uids: set[int] = set()
        worklist = list(seeds)
        while worklist:
            net = worklist.pop()
            if net.uid in net_uids:
                continue
            net_uids.add(net.uid)
            if net.driver is not None:
                cell, _ = net.driver
                if cell.uid not in cell_uids:
                    cell_uids.add(cell.uid)
                    worklist.extend(cell.input_nets())
        return net_uids, cell_uids

    def validate(self) -> None:
        """Every non-input net consumed by a cell must be driven."""
        if self.blackboxes:
            raise NetlistError(
                f"{self.name}: unresolved black boxes "
                f"{[b.name for b in self.blackboxes]}; run the linker"
            )
        inputs = self.primary_input_nets()
        for cell in self.cells:
            for pin in cell.ctype.inputs:
                net = cell.pins[pin]
                if net.driver is None and net.uid not in inputs:
                    raise NetlistError(
                        f"net {net.name!r} feeding {cell.name}.{pin} is "
                        "undriven"
                    )
        for name, nets in self.output_buses.items():
            for net in nets:
                if net.driver is None and net.uid not in inputs:
                    raise NetlistError(
                        f"output {name}: net {net.name!r} is undriven"
                    )

    def topological_comb_order(self) -> list[Cell]:
        """Combinational cells in evaluation order (loops are errors)."""
        order: list[Cell] = []
        ready: set[int] = self.primary_input_nets()
        for cell in self.flops():
            for net in cell.output_nets():
                ready.add(net.uid)
        for net in self._const.values():
            ready.add(net.uid)
        remaining = [c for c in self.comb_cells()
                     if not c.ctype.name.startswith("TIE")]
        progress = True
        while remaining and progress:
            progress = False
            still = []
            for cell in remaining:
                if all(n.uid in ready for n in cell.input_nets()):
                    order.append(cell)
                    for net in cell.output_nets():
                        ready.add(net.uid)
                    progress = True
                else:
                    still.append(cell)
            remaining = still
        if remaining:
            names = [c.name for c in remaining[:5]]
            raise NetlistError(
                f"combinational loop or undriven logic involving {names}"
            )
        return order

    def __repr__(self) -> str:
        return (
            f"Circuit({self.name!r}, cells={len(self.cells)}, "
            f"nets={len(self.nets)}, flops={len(self.flops())})"
        )
