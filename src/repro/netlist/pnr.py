"""Toy placement ("Map Tool / Place&Route" in the paper's Fig. 6).

A deliberately simple back end closing the flow: cells are placed on a
square grid in topological order (keeping logical neighbours physically
close), every net gets a half-perimeter wirelength, and a per-unit wire
delay is produced for the STA to back-annotate.  The output also includes
the "configuration file" style summary the Fig. 6 flow ends in.
"""

from __future__ import annotations

import math

from repro.netlist.circuit import Circuit

#: Wire delay per grid unit of half-perimeter wirelength (ns).
WIRE_DELAY_PER_UNIT = 0.002


class Placement:
    """Result of :func:`place`."""

    def __init__(self, circuit: Circuit) -> None:
        self.circuit = circuit
        #: cell uid → (row, column).
        self.positions: dict[int, tuple[int, int]] = {}
        #: net uid → half-perimeter wirelength in grid units.
        self.wirelength: dict[int, float] = {}
        self.grid_side = 0

    @property
    def total_wirelength(self) -> float:
        """Sum of all net wirelengths (grid units)."""
        return sum(self.wirelength.values())

    def wire_delays(self) -> dict[int, float]:
        """Net uid → annotated wire delay (ns) for the STA."""
        return {
            uid: length * WIRE_DELAY_PER_UNIT
            for uid, length in self.wirelength.items()
        }

    def configuration(self) -> dict[str, float | int]:
        """The flow's final 'configuration file' summary."""
        return {
            "design": self.circuit.name,
            "grid_side": self.grid_side,
            "placed_cells": len(self.positions),
            "total_wirelength": round(self.total_wirelength, 1),
        }

    def __repr__(self) -> str:
        return (
            f"Placement({self.circuit.name!r}, grid={self.grid_side}, "
            f"wl={self.total_wirelength:.0f})"
        )


def place(circuit: Circuit) -> Placement:
    """Place *circuit* on a square grid and measure net wirelengths."""
    circuit.validate()
    placement = Placement(circuit)
    cells = circuit.flops() + circuit.topological_comb_order()
    side = max(1, math.ceil(math.sqrt(len(cells))))
    placement.grid_side = side
    for index, cell in enumerate(cells):
        row, col = divmod(index, side)
        # Serpentine fill keeps consecutive (logically close) cells adjacent.
        if row % 2:
            col = side - 1 - col
        placement.positions[cell.uid] = (row, col)

    # Primary inputs sit on the west edge, spread over the rows.
    io_positions: dict[int, tuple[int, int]] = {}
    input_nets = [n for nets in circuit.input_buses.values() for n in nets]
    for k, net in enumerate(input_nets):
        io_positions[net.uid] = (k % max(side, 1), -1)

    fanout = circuit.fanout_map()
    for net in circuit.nets:
        points: list[tuple[int, int]] = []
        if net.driver is not None:
            pos = placement.positions.get(net.driver[0].uid)
            if pos:
                points.append(pos)
        elif net.uid in io_positions:
            points.append(io_positions[net.uid])
        for cell, _pin in fanout.get(net.uid, ()):
            pos = placement.positions.get(cell.uid)
            if pos:
                points.append(pos)
        if len(points) < 2:
            continue
        rows = [p[0] for p in points]
        cols = [p[1] for p in points]
        placement.wirelength[net.uid] = float(
            (max(rows) - min(rows)) + (max(cols) - min(cols))
        )
    return placement
