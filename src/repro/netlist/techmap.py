"""Technology mapping: RTL → standard cells.

Both design flows (OSSS behavioral synthesis and the hand-written "VHDL"
baseline) pass through this one mapper, so gate counts and timing compare
the *descriptions*, not the backends — the property the paper's area and
frequency comparisons (§12) depend on.

Mapping rules (all buses LSB-first):

=================  =====================================================
IR node            implementation
=================  =====================================================
``and or xor``     per-bit gates, operands zero-extended to result width
``invert, not``    inverters
``add, sub, neg``  ripple-carry adder (sub/neg via inverted operand + cin)
``mul``            array multiplier modulo the result width
``eq, ne``         XNOR column + AND tree
``lt le gt ge``    width+1 subtraction, sign bit of the difference
``Mux``            per-bit MUX2
``ShiftConst``     pure rewiring with zero/sign fill
``ShiftDyn``       logarithmic barrel shifter (MUX2 stages)
``reduce_*``       balanced gate tree
``Slice/Concat/    pure rewiring
Resize``
``Register``       one DFF per bit (reset already folded into ``next``)
=================  =====================================================

Hierarchy is flattened during mapping; every generated cell name carries
its instance path (``top/child/...``) so the Fig. 12 per-module report can
re-aggregate areas afterwards.  Instances of black-box IP modules (RTL
modules with an ``attributes["blackbox_ip"]`` marker) become netlist-level
:class:`~repro.netlist.circuit.BlackBox` entries for the linker.
"""

from __future__ import annotations

from repro.netlist.circuit import Circuit, Net, NetlistError
from repro.rtl.ir import (
    BinOp,
    Carrier,
    Concat,
    Const,
    Expr,
    InputCarrier,
    InstanceOutputCarrier,
    Instance,
    Mux,
    Read,
    Register,
    Resize,
    RtlModule,
    ShiftConst,
    ShiftDyn,
    Slice,
    UnaryOp,
    WireCarrier,
)

Bits = list[Net]


def _is_signed_kind(kind: str) -> bool:
    return kind in ("signed", "fixed")


class TechMapper:
    """Maps one :class:`RtlModule` tree onto a :class:`Circuit`."""

    def __init__(self, module: RtlModule) -> None:
        module.validate()
        self.module = module
        self.circuit = Circuit(module.name)
        self._expr_nets: dict[int, Bits] = {}
        self._carrier_nets: dict[int, Bits] = {}
        self._carrier_prefix: dict[int, str] = {}
        self._dff_q: dict[int, Bits] = {}
        self._registers: list[tuple[Register, str]] = []
        self._instances: list[tuple[Instance, str]] = []
        self._cell_seq = 0
        self._in_progress: set[int] = set()
        self._child_input_instance: dict[int, Instance] = {}
        self._blackboxes: list[tuple[Instance, str, str]] = []

    # ------------------------------------------------------------------
    # public entry point
    # ------------------------------------------------------------------
    def map(self) -> Circuit:
        """Run the mapping and return the finished circuit."""
        self._walk(self.module, self.module.name)
        # Primary inputs.
        for name, carrier in self.module.inputs.items():
            nets = self.circuit.new_bus(name, carrier.width)
            self.circuit.mark_input(name, nets)
            self._carrier_nets[carrier.uid] = nets
        # Black-box IP instances (deferred from the walk).
        for instance, prefix, child_prefix in self._blackboxes:
            self._map_blackbox(instance, prefix, child_prefix)
        # Map every register's next expression, then create the flops.
        for reg, prefix in self._registers:
            d_nets = self._map(reg.next, prefix)
            q_nets = self._q_nets(reg, prefix)
            for k in range(reg.width):
                self._add(prefix, "DFF", f"{reg.name}[{k}]",
                          d=d_nets[k], q=q_nets[k])
        # Primary outputs.
        for name, expr in self.module.outputs.items():
            nets = self._map(expr, self.module.name)
            self.circuit.mark_output(name, nets)
        return self.circuit

    # ------------------------------------------------------------------
    # hierarchy walk
    # ------------------------------------------------------------------
    def _walk(self, module: RtlModule, prefix: str) -> None:
        for reg in module.registers:
            self._registers.append((reg, prefix))
            self._carrier_prefix[reg.uid] = prefix
        for wire in module.wires:
            self._carrier_prefix[wire.uid] = prefix
        for instance in module.instances:
            child_prefix = f"{prefix}/{instance.name}"
            if instance.module.attributes.get("blackbox_ip"):
                # Defer: connection expressions may read primary inputs
                # that are only created after the walk.
                self._blackboxes.append((instance, prefix, child_prefix))
                continue
            self._instances.append((instance, prefix))
            for carrier in instance.module.inputs.values():
                # Child inputs are driven by parent-context expressions.
                self._carrier_prefix[carrier.uid] = prefix
                self._child_input_instance[carrier.uid] = instance
            for carrier in instance.output_carriers.values():
                self._carrier_prefix[carrier.uid] = child_prefix
            self._walk(instance.module, child_prefix)

    def _map_blackbox(self, instance: Instance, parent_prefix: str,
                      child_prefix: str) -> None:
        inputs: dict[str, Bits] = {}
        for port_name, expr in instance.connections.items():
            inputs[port_name] = self._map(expr, parent_prefix)
        outputs: dict[str, Bits] = {}
        for port_name, carrier in instance.output_carriers.items():
            nets = self.circuit.new_bus(
                f"{child_prefix}/{port_name}", carrier.width
            )
            outputs[port_name] = nets
            self._carrier_nets[carrier.uid] = nets
        ip_name = instance.module.attributes["blackbox_ip"]
        self.circuit.add_blackbox(child_prefix, ip_name, inputs, outputs)

    # ------------------------------------------------------------------
    # low-level helpers
    # ------------------------------------------------------------------
    def _add(self, prefix: str, ctype: str, hint: str, **pins: Net):
        self._cell_seq += 1
        name = f"{prefix}/{hint}#{self._cell_seq}"
        return self.circuit.add_cell(name, ctype, **pins)

    def _gate(self, prefix: str, ctype: str, hint: str, *ins: Net) -> Net:
        out = self.circuit.new_net(f"{prefix}/{hint}#n{self._cell_seq}")
        if len(ins) == 1:
            self._add(prefix, ctype, hint, a=ins[0], y=out)
        else:
            self._add(prefix, ctype, hint, i0=ins[0], i1=ins[1], y=out)
        return out

    def _mux_net(self, prefix: str, hint: str, sel: Net, d1: Net,
                 d0: Net) -> Net:
        out = self.circuit.new_net(f"{prefix}/{hint}#n{self._cell_seq}")
        self._add(prefix, "MUX2", hint, d0=d0, d1=d1, s=sel, y=out)
        return out

    def _const_bits(self, raw: int, width: int) -> Bits:
        return [
            self.circuit.const_net((raw >> k) & 1) for k in range(width)
        ]

    def _tree(self, prefix: str, ctype: str, hint: str, nets: Bits) -> Net:
        """Balanced reduction tree over *nets* with 2-input gates."""
        if not nets:
            raise NetlistError("reduction over empty bus")
        level = list(nets)
        while len(level) > 1:
            nxt: Bits = []
            for k in range(0, len(level) - 1, 2):
                nxt.append(self._gate(prefix, ctype, hint,
                                      level[k], level[k + 1]))
            if len(level) % 2:
                nxt.append(level[-1])
            level = nxt
        return level[0]

    def _extend(self, nets: Bits, width: int, signed: bool) -> Bits:
        if len(nets) >= width:
            return nets[:width]
        fill = nets[-1] if signed else self.circuit.const_net(0)
        return nets + [fill] * (width - len(nets))

    def _extend_expr(self, expr: Expr, nets: Bits, width: int) -> Bits:
        return self._extend(nets, width, _is_signed_kind(expr.spec.kind))

    # ------------------------------------------------------------------
    # arithmetic building blocks
    # ------------------------------------------------------------------
    def _full_adder(self, prefix: str, a: Net, b: Net,
                    cin: Net | None) -> tuple[Net, Net]:
        """Returns (sum, carry_out)."""
        axb = self._gate(prefix, "XOR2", "fa_x", a, b)
        if cin is None:
            carry = self._gate(prefix, "AND2", "fa_c", a, b)
            return axb, carry
        s = self._gate(prefix, "XOR2", "fa_s", axb, cin)
        c1 = self._gate(prefix, "AND2", "fa_a1", a, b)
        c2 = self._gate(prefix, "AND2", "fa_a2", axb, cin)
        carry = self._gate(prefix, "OR2", "fa_o", c1, c2)
        return s, carry

    def _ripple_add(self, prefix: str, a: Bits, b: Bits,
                    cin: Net | None = None) -> Bits:
        """Width-preserving ripple-carry addition (equal-width operands)."""
        if len(a) != len(b):
            raise NetlistError("ripple_add operands must be pre-extended")
        out: Bits = []
        carry = cin
        for k in range(len(a)):
            s, carry = self._full_adder(prefix, a[k], b[k], carry)
            out.append(s)
        return out

    def _invert_bits(self, prefix: str, nets: Bits) -> Bits:
        return [self._gate(prefix, "INV", "inv", n) for n in nets]

    def _sub_bits(self, prefix: str, a: Bits, b: Bits) -> Bits:
        """a - b, width preserved (operands pre-extended)."""
        nb = self._invert_bits(prefix, b)
        one = self.circuit.const_net(1)
        return self._ripple_add(prefix, a, nb, cin=one)

    # ------------------------------------------------------------------
    # expression dispatch
    # ------------------------------------------------------------------
    def _map(self, expr: Expr, prefix: str) -> Bits:
        key = id(expr)
        if key in self._expr_nets:
            return self._expr_nets[key]
        if key in self._in_progress:
            raise NetlistError("combinational loop in RTL expressions")
        self._in_progress.add(key)
        nets = self._dispatch(expr, prefix)
        self._in_progress.discard(key)
        if len(nets) != expr.width:
            raise NetlistError(
                f"mapper produced {len(nets)} bits for {expr!r} "
                f"(expected {expr.width})"
            )
        self._expr_nets[key] = nets
        return nets

    def _q_nets(self, reg: Register, prefix: str) -> Bits:
        nets = self._dff_q.get(reg.uid)
        if nets is None:
            nets = [
                self.circuit.new_net(f"{prefix}/{reg.name}_q[{k}]")
                for k in range(reg.width)
            ]
            self._dff_q[reg.uid] = nets
        return nets

    def _carrier(self, carrier: Carrier) -> Bits:
        uid = carrier.uid
        if uid in self._carrier_nets:
            return self._carrier_nets[uid]
        prefix = self._carrier_prefix.get(uid, self.module.name)
        if isinstance(carrier, Register):
            return self._q_nets(carrier, prefix)
        if isinstance(carrier, WireCarrier):
            nets = self._map(carrier.expr, prefix)
        elif isinstance(carrier, InstanceOutputCarrier):
            instance = carrier.instance
            child_prefix = f"{prefix}"
            nets = self._map(
                instance.module.outputs[carrier.port_name], child_prefix
            )
        elif isinstance(carrier, InputCarrier):
            instance = self._child_input_instance.get(uid)
            if instance is None:
                raise NetlistError(
                    f"input carrier {carrier.name!r} reached before "
                    "primary inputs were created"
                )
            nets = self._map(instance.connections[carrier.name], prefix)
        else:  # pragma: no cover
            raise NetlistError(f"unknown carrier {carrier!r}")
        self._carrier_nets[uid] = nets
        return nets

    def _dispatch(self, expr: Expr, prefix: str) -> Bits:
        if isinstance(expr, Const):
            return self._const_bits(expr.raw, expr.width)
        if isinstance(expr, Read):
            return list(self._carrier(expr.carrier))
        if isinstance(expr, UnaryOp):
            return self._map_unary(expr, prefix)
        if isinstance(expr, BinOp):
            return self._map_binop(expr, prefix)
        if isinstance(expr, Mux):
            sel = self._map(expr.cond, prefix)[0]
            t = self._map(expr.if_true, prefix)
            f = self._map(expr.if_false, prefix)
            return [
                self._mux_net(prefix, "mux", sel, t[k], f[k])
                for k in range(expr.width)
            ]
        if isinstance(expr, Slice):
            nets = self._map(expr.a, prefix)
            return nets[expr.lo:expr.hi + 1]
        if isinstance(expr, Concat):
            out: Bits = []
            for part in reversed(expr.parts):
                out.extend(self._map(part, prefix))
            return out
        if isinstance(expr, ShiftConst):
            return self._map_shift_const(expr, prefix)
        if isinstance(expr, ShiftDyn):
            return self._map_shift_dyn(expr, prefix)
        if isinstance(expr, Resize):
            nets = self._map(expr.a, prefix)
            return self._extend_expr(expr.a, nets, expr.width)
        raise NetlistError(f"unmappable expression {expr!r}")

    # ------------------------------------------------------------------
    # operator families
    # ------------------------------------------------------------------
    def _map_unary(self, expr: UnaryOp, prefix: str) -> Bits:
        nets = self._map(expr.a, prefix)
        if expr.op == "invert":
            return self._invert_bits(prefix, nets)
        if expr.op == "not":
            return [self._gate(prefix, "INV", "not", nets[0])]
        if expr.op == "neg":
            inverted = self._invert_bits(prefix, nets)
            zero = self._const_bits(0, len(nets))
            one = self.circuit.const_net(1)
            return self._ripple_add(prefix, inverted, zero, cin=one)
        if expr.op == "reduce_or":
            return [self._tree(prefix, "OR2", "ror", nets)]
        if expr.op == "reduce_and":
            return [self._tree(prefix, "AND2", "rand", nets)]
        if expr.op == "reduce_xor":
            return [self._tree(prefix, "XOR2", "rxor", nets)]
        raise NetlistError(f"unmappable unary op {expr.op!r}")

    def _map_binop(self, expr: BinOp, prefix: str) -> Bits:
        a_nets = self._map(expr.a, prefix)
        b_nets = self._map(expr.b, prefix)
        op = expr.op
        if op in ("and", "or", "xor"):
            width = expr.width
            a_ext = self._extend(a_nets, width, signed=False)
            b_ext = self._extend(b_nets, width, signed=False)
            ctype = {"and": "AND2", "or": "OR2", "xor": "XOR2"}[op]
            return [
                self._gate(prefix, ctype, op, a_ext[k], b_ext[k])
                for k in range(width)
            ]
        if op in ("add", "sub"):
            width = expr.width
            a_ext = self._extend_expr(expr.a, a_nets, width)
            b_ext = self._extend_expr(expr.b, b_nets, width)
            if op == "add":
                return self._ripple_add(prefix, a_ext, b_ext)
            return self._sub_bits(prefix, a_ext, b_ext)
        if op == "mul":
            return self._map_mul(expr, a_nets, b_nets, prefix)
        if op in ("eq", "ne"):
            width = max(len(a_nets), len(b_nets))
            a_ext = self._extend_expr(expr.a, a_nets, width)
            b_ext = self._extend_expr(expr.b, b_nets, width)
            columns = [
                self._gate(prefix, "XNOR2", "eq", a_ext[k], b_ext[k])
                for k in range(width)
            ]
            equal = self._tree(prefix, "AND2", "eq_t", columns)
            if op == "eq":
                return [equal]
            return [self._gate(prefix, "INV", "ne", equal)]
        if op in ("lt", "le", "gt", "ge"):
            width = max(len(a_nets), len(b_nets)) + 1
            a_ext = self._extend_expr(expr.a, a_nets, width)
            b_ext = self._extend_expr(expr.b, b_nets, width)
            if op in ("lt", "ge"):
                diff = self._sub_bits(prefix, a_ext, b_ext)
            else:  # gt / le compare the swapped way
                diff = self._sub_bits(prefix, b_ext, a_ext)
            sign = diff[-1]
            if op in ("lt", "gt"):
                return [sign]
            return [self._gate(prefix, "INV", op, sign)]
        raise NetlistError(f"unmappable binary op {op!r}")

    def _map_mul(self, expr: BinOp, a_nets: Bits, b_nets: Bits,
                 prefix: str) -> Bits:
        width = expr.width
        a_ext = self._extend_expr(expr.a, a_nets, width)
        b_ext = self._extend_expr(expr.b, b_nets, width)
        accum: Bits | None = None
        for k in range(width):
            row = [
                self._gate(prefix, "AND2", "pp", a_ext[j], b_ext[k])
                for j in range(width - k)
            ]
            shifted = self._const_bits(0, k) + row
            if accum is None:
                accum = shifted
            else:
                # Bits below position k are already final; add the rest.
                low, rest_a = accum[:k], accum[k:]
                rest_b = shifted[k:]
                accum = low + self._ripple_add(prefix, rest_a, rest_b)
        assert accum is not None
        return accum

    def _map_shift_const(self, expr: ShiftConst, prefix: str) -> Bits:
        nets = self._map(expr.a, prefix)
        width = expr.width
        amount = expr.amount
        zero = self.circuit.const_net(0)
        if expr.left:
            if amount >= width:
                return [zero] * width
            return [zero] * amount + nets[: width - amount]
        fill = nets[-1] if _is_signed_kind(expr.spec.kind) else zero
        if amount >= width:
            return [fill] * width
        return nets[amount:] + [fill] * amount

    def _map_shift_dyn(self, expr: ShiftDyn, prefix: str) -> Bits:
        nets = self._map(expr.a, prefix)
        amount = self._map(expr.amount, prefix)
        width = expr.width
        zero = self.circuit.const_net(0)
        fill = nets[-1] if (
            not expr.left and _is_signed_kind(expr.spec.kind)
        ) else zero
        current = list(nets)
        for k, sel in enumerate(amount):
            step = 1 << k
            if expr.left:
                if step >= width:
                    shifted = [zero] * width
                else:
                    shifted = [zero] * step + current[: width - step]
            else:
                if step >= width:
                    shifted = [fill] * width
                else:
                    shifted = current[step:] + [fill] * step
            current = [
                self._mux_net(prefix, "bshift", sel, shifted[j], current[j])
                for j in range(width)
            ]
        return current


def map_module(module: RtlModule) -> Circuit:
    """Convenience wrapper: technology-map *module* into a fresh circuit."""
    return TechMapper(module).map()
