"""Standard-cell library.

A small synthetic CMOS-like library.  Areas are in *gate equivalents*
(NAND2 = 1.0) and pin-to-pin delays in nanoseconds — representative ratios
for a ~180 nm process contemporary with the paper.  Absolute numbers are
synthetic by design (DESIGN.md §6): every reproduced experiment compares the
two flows *through the same library*, so only ratios carry meaning.
"""

from __future__ import annotations


class CellType:
    """A library cell: pin names, area and pin-to-pin delays.

    Parameters
    ----------
    name:
        Library name, e.g. ``"NAND2"``.
    inputs / outputs:
        Ordered pin names.
    area:
        Area in gate equivalents.
    delay:
        Mapping ``(input_pin, output_pin) -> ns``; missing pairs fall back
        to the worst delay of the cell.
    sequential:
        True for flip-flops; their ``d`` pin ends a timing path and their
        ``q`` pin starts one.
    clk_to_q / setup:
        Sequential timing parameters (ns), used by the STA.
    """

    __slots__ = (
        "name", "inputs", "outputs", "area", "delay", "sequential",
        "clk_to_q", "setup",
    )

    def __init__(
        self,
        name: str,
        inputs: tuple[str, ...],
        outputs: tuple[str, ...],
        area: float,
        delay: dict[tuple[str, str], float] | None = None,
        sequential: bool = False,
        clk_to_q: float = 0.0,
        setup: float = 0.0,
    ) -> None:
        self.name = name
        self.inputs = inputs
        self.outputs = outputs
        self.area = area
        self.delay = delay or {}
        self.sequential = sequential
        self.clk_to_q = clk_to_q
        self.setup = setup

    def pin_delay(self, input_pin: str, output_pin: str) -> float:
        """Propagation delay from *input_pin* to *output_pin*."""
        if (input_pin, output_pin) in self.delay:
            return self.delay[(input_pin, output_pin)]
        if self.delay:
            return max(self.delay.values())
        return 0.0

    @property
    def worst_delay(self) -> float:
        """The slowest arc through the cell."""
        return max(self.delay.values()) if self.delay else 0.0

    def __repr__(self) -> str:
        return f"CellType({self.name})"


def _combinational(name: str, n_inputs: int, area: float,
                   delay: float) -> CellType:
    pins = tuple(f"i{k}" for k in range(n_inputs)) if n_inputs > 1 else ("a",)
    delays = {(pin, "y"): delay for pin in pins}
    return CellType(name, pins, ("y",), area, delays)


#: Inverter.
INV = _combinational("INV", 1, 0.67, 0.05)
#: Non-inverting buffer.
BUF = _combinational("BUF", 1, 1.00, 0.08)
#: 2-input NAND (the area unit).
NAND2 = _combinational("NAND2", 2, 1.00, 0.07)
#: 2-input NOR.
NOR2 = _combinational("NOR2", 2, 1.00, 0.09)
#: 2-input AND.
AND2 = _combinational("AND2", 2, 1.33, 0.10)
#: 2-input OR.
OR2 = _combinational("OR2", 2, 1.33, 0.10)
#: 2-input XOR.
XOR2 = _combinational("XOR2", 2, 2.00, 0.14)
#: 2-input XNOR.
XNOR2 = _combinational("XNOR2", 2, 2.00, 0.14)

#: 2:1 multiplexer — ``y = s ? d1 : d0``.  The paper's §8 polymorphism and
#: state-machine logic resolve to trees of these.
MUX2 = CellType(
    "MUX2",
    ("d0", "d1", "s"),
    ("y",),
    2.33,
    {("d0", "y"): 0.12, ("d1", "y"): 0.12, ("s", "y"): 0.15},
)

#: D flip-flop; synchronous reset is mapped as logic in front of ``d``.
DFF = CellType(
    "DFF",
    ("d",),
    ("q",),
    4.67,
    {},
    sequential=True,
    clk_to_q=0.20,
    setup=0.15,
)

#: Constant drivers (zero area; they disappear in optimization).
TIE0 = CellType("TIE0", (), ("y",), 0.0, {})
TIE1 = CellType("TIE1", (), ("y",), 0.0, {})

#: The default library keyed by name.
LIBRARY: dict[str, CellType] = {
    cell.name: cell
    for cell in (INV, BUF, NAND2, NOR2, AND2, OR2, XOR2, XNOR2, MUX2, DFF,
                 TIE0, TIE1)
}
