"""Area accounting and the per-module report (paper Fig. 12, §12).

Cell names carry their instance path (``top/child/cell#n``), so areas can be
re-aggregated per design unit after flattening — the equivalent of the
synthesis-tool screenshot in the paper's Fig. 12 showing the main ExpoCU
modules.  The unit is gate equivalents (NAND2 = 1.0).
"""

from __future__ import annotations

from repro.netlist.circuit import Circuit


def total_area(circuit: Circuit) -> float:
    """Total cell area in gate equivalents."""
    return sum(cell.ctype.area for cell in circuit.cells)


def cell_histogram(circuit: Circuit) -> dict[str, int]:
    """Cell count per library type, sorted by count descending."""
    counts: dict[str, int] = {}
    for cell in circuit.cells:
        counts[cell.ctype.name] = counts.get(cell.ctype.name, 0) + 1
    return dict(sorted(counts.items(), key=lambda kv: (-kv[1], kv[0])))


def area_by_module(circuit: Circuit, depth: int = 2) -> dict[str, float]:
    """Area per instance-path prefix, truncated to *depth* path levels."""
    areas: dict[str, float] = {}
    for cell in circuit.cells:
        path = cell.name.split("/")
        prefix = "/".join(path[:depth]) if len(path) > depth else "/".join(
            path[:-1]
        )
        areas[prefix] = areas.get(prefix, 0.0) + cell.ctype.area
    return dict(sorted(areas.items()))


def flop_count(circuit: Circuit) -> int:
    """Number of flip-flops (state bits)."""
    return len(circuit.flops())


class AreaReport:
    """A rendered area summary for one circuit."""

    def __init__(self, circuit: Circuit, depth: int = 2) -> None:
        self.name = circuit.name
        self.total = total_area(circuit)
        self.cells = len(circuit.cells)
        self.flops = flop_count(circuit)
        self.histogram = cell_histogram(circuit)
        self.by_module = area_by_module(circuit, depth)

    def render(self) -> str:
        """Multi-line human-readable report."""
        lines = [
            f"area report: {self.name}",
            f"  total      : {self.total:10.1f} gate equivalents",
            f"  cells      : {self.cells:10d}",
            f"  flip-flops : {self.flops:10d}",
            "  by module:",
        ]
        for prefix, area in self.by_module.items():
            share = 100.0 * area / self.total if self.total else 0.0
            lines.append(f"    {prefix:<40s} {area:10.1f}  ({share:4.1f}%)")
        lines.append("  by cell type:")
        for name, count in self.histogram.items():
            lines.append(f"    {name:<10s} {count:8d}")
        return "\n".join(lines)

    def __repr__(self) -> str:
        return f"AreaReport({self.name!r}, total={self.total:.1f})"
