"""Activity-based dynamic power estimation (extension).

The paper's evaluation covers area and frequency; automotive flows also
track power, so this extension closes the classic triad.  The model is the
standard CV²f decomposition reduced to synthetic units:

``P_dyn ∝ Σ_net  toggles(net) · load(net)``

where toggle counts come from a real gate-level simulation run
(:class:`~repro.netlist.sim.GateSimulator` instrumented per net) and the
load of a net is its fanout plus one.  Like area and delay, absolute
numbers are synthetic; flow-vs-flow and workload-vs-workload ratios are the
meaningful output.
"""

from __future__ import annotations

from typing import Iterable, Mapping

from repro.netlist.circuit import Circuit
from repro.netlist.sim import GateSimulator

#: Switching energy per unit load per toggle (arbitrary units).
ENERGY_PER_TOGGLE = 1.0
#: Static leakage per gate-equivalent of area per cycle (arbitrary units).
LEAKAGE_PER_GE = 0.01


class PowerReport:
    """Result of :func:`estimate_power`."""

    def __init__(self, cycles: int, toggles: int, dynamic: float,
                 leakage: float, by_prefix: dict[str, float]) -> None:
        self.cycles = cycles
        self.toggles = toggles
        self.dynamic = dynamic
        self.leakage = leakage
        self.by_prefix = by_prefix

    @property
    def total(self) -> float:
        """Dynamic plus leakage energy over the simulated window."""
        return self.dynamic + self.leakage

    @property
    def per_cycle(self) -> float:
        """Average power (energy per cycle)."""
        if self.cycles == 0:
            return 0.0
        return self.total / self.cycles

    def __repr__(self) -> str:
        return (f"PowerReport(cycles={self.cycles}, "
                f"toggles={self.toggles}, per_cycle={self.per_cycle:.2f})")


class ActivitySimulator(GateSimulator):
    """A gate simulator that counts per-net toggles."""

    def __init__(self, circuit: Circuit) -> None:
        # Set before super().__init__: the base constructor settles the
        # netlist once, which already routes through our _eval override.
        # Always the event backend — toggle counting hangs off _eval,
        # which the compiled evaluator bypasses.
        self.toggle_counts: dict[int, int] = {}
        super().__init__(circuit, backend="event")
        self._q_uid_slots = [
            (f.pins["q"].uid, self._slot[f.pins["q"].uid])
            for f in self._flops
        ]
        # The initial settle is power-on, not switching activity.
        self.toggle_counts.clear()

    def _eval(self, cell) -> bool:
        changed = super()._eval(cell)
        if changed:
            out_net = cell.pins[cell.ctype.outputs[0]]
            self.toggle_counts[out_net.uid] = \
                self.toggle_counts.get(out_net.uid, 0) + 1
        return changed

    def step(self, **buses) -> dict[str, int]:
        # Count flop output toggles too (they bypass _eval).
        before = [(uid, net_slot, self._values[net_slot])
                  for uid, net_slot in self._q_uid_slots]
        outputs = super().step(**buses)
        for uid, net_slot, old in before:
            if self._values[net_slot] != old:
                self.toggle_counts[uid] = self.toggle_counts.get(uid, 0) + 1
        return outputs


def estimate_power(circuit: Circuit,
                   stimulus: Iterable[Mapping[str, int]],
                   prefix_depth: int = 2) -> PowerReport:
    """Run *stimulus* and return the activity-based power estimate."""
    sim = ActivitySimulator(circuit)
    cycles = 0
    for entry in stimulus:
        sim.step(**dict(entry))
        cycles += 1
    fanout = circuit.fanout_map()
    driver_of = {}
    for cell in circuit.cells:
        for pin in cell.ctype.outputs:
            driver_of[cell.pins[pin].uid] = cell
    dynamic = 0.0
    by_prefix: dict[str, float] = {}
    for uid, toggles in sim.toggle_counts.items():
        load = len(fanout.get(uid, ())) + 1
        energy = ENERGY_PER_TOGGLE * toggles * load
        dynamic += energy
        cell = driver_of.get(uid)
        if cell is not None:
            parts = cell.name.split("/")
            prefix = "/".join(parts[:prefix_depth]) if len(parts) > \
                prefix_depth else "/".join(parts[:-1])
            by_prefix[prefix] = by_prefix.get(prefix, 0.0) + energy
    from repro.netlist.area import total_area

    leakage = LEAKAGE_PER_GE * total_area(circuit) * cycles
    return PowerReport(cycles, sum(sim.toggle_counts.values()), dynamic,
                       leakage, dict(sorted(by_prefix.items())))
