"""Gate-level simulation.

A levelized, event-driven-within-cycle simulator for mapped circuits: the
combinational cells are topologically ordered once; each clock cycle applies
the inputs, re-evaluates only the fan-out cones of changed nets, then clocks
every flip-flop simultaneously.  Used by the stage-equivalence harness
(claim R6: the netlist is bit- and cycle-accurate against the OSSS source)
and as the slowest rung of the simulation-speed ladder (claim R7).
"""

from __future__ import annotations

from typing import Iterable, Mapping

from repro.netlist.circuit import Cell, Circuit, NetlistError


def _eval_cell(name: str, ins: list[int]) -> int:
    if name == "INV":
        return ins[0] ^ 1
    if name == "BUF":
        return ins[0]
    if name == "AND2":
        return ins[0] & ins[1]
    if name == "OR2":
        return ins[0] | ins[1]
    if name == "XOR2":
        return ins[0] ^ ins[1]
    if name == "XNOR2":
        return (ins[0] ^ ins[1]) ^ 1
    if name == "NAND2":
        return (ins[0] & ins[1]) ^ 1
    if name == "NOR2":
        return (ins[0] | ins[1]) ^ 1
    if name == "MUX2":
        d0, d1, s = ins
        return d1 if s else d0
    raise NetlistError(f"cannot evaluate cell type {name}")


class GateSimulator:
    """Cycle-based two-valued gate simulator.

    Parameters
    ----------
    circuit:
        A linked (no black boxes), validated circuit.
    """

    def __init__(self, circuit: Circuit) -> None:
        circuit.validate()
        self.circuit = circuit
        self._order = circuit.topological_comb_order()
        self._flops = circuit.flops()
        self._values: dict[int, int] = {}
        self._fanout: dict[int, list[Cell]] = {}
        self._level: dict[int, int] = {}
        for level, cell in enumerate(self._order):
            self._level[cell.uid] = level
            for net in cell.input_nets():
                self._fanout.setdefault(net.uid, []).append(cell)
        for net in circuit.nets:
            self._values[net.uid] = 0
        for value, net in circuit._const.items():
            self._values[net.uid] = value
        self._inputs: dict[str, int] = {name: 0 for name in circuit.input_buses}
        self.cycle = 0
        self._settle_all()

    # ------------------------------------------------------------------
    # evaluation
    # ------------------------------------------------------------------
    def _settle_all(self) -> None:
        for cell in self._order:
            self._eval(cell)

    def _eval(self, cell: Cell) -> bool:
        ins = [self._values[n.uid] for n in cell.input_nets()]
        out_net = cell.pins[cell.ctype.outputs[0]]
        new = _eval_cell(cell.ctype.name, ins)
        if self._values[out_net.uid] == new:
            return False
        self._values[out_net.uid] = new
        return True

    def _propagate(self, dirty_nets: list[int]) -> None:
        """Event-driven settle: re-evaluate fan-out of changed nets."""
        import heapq

        pending: list[tuple[int, int]] = []
        queued: set[int] = set()

        def enqueue(net_uid: int) -> None:
            for cell in self._fanout.get(net_uid, ()):
                if cell.uid not in queued:
                    queued.add(cell.uid)
                    heapq.heappush(pending, (self._level[cell.uid], cell.uid))
                    _by_uid[cell.uid] = cell

        _by_uid: dict[int, Cell] = {}
        for uid in dirty_nets:
            enqueue(uid)
        while pending:
            _, cell_uid = heapq.heappop(pending)
            cell = _by_uid[cell_uid]
            queued.discard(cell_uid)
            if self._eval(cell):
                out_net = cell.pins[cell.ctype.outputs[0]]
                enqueue(out_net.uid)

    def drive(self, **buses: int) -> list[int]:
        """Set input buses; returns the list of changed net uids.

        Values are masked to the bus width before being stored (matching
        :meth:`repro.rtl.simulate.RtlSimulator.drive`); negative values
        are rejected — drive the two's-complement raw pattern instead.
        """
        dirty: list[int] = []
        for name, value in buses.items():
            nets = self.circuit.input_buses.get(name)
            if nets is None:
                raise NetlistError(f"no input bus {name!r}")
            value = int(value)
            if value < 0:
                raise NetlistError(
                    f"input bus {name!r} driven with negative value "
                    f"{value}; drive the raw two's-complement pattern"
                )
            value &= (1 << len(nets)) - 1
            self._inputs[name] = value
            for k, net in enumerate(nets):
                bit_value = (value >> k) & 1
                if self._values[net.uid] != bit_value:
                    self._values[net.uid] = bit_value
                    dirty.append(net.uid)
        return dirty

    def peek_outputs(self) -> dict[str, int]:
        """Current output bus values."""
        result = {}
        for name, nets in self.circuit.output_buses.items():
            value = 0
            for k, net in enumerate(nets):
                value |= self._values[net.uid] << k
            result[name] = value
        return result

    def step(self, **buses: int) -> dict[str, int]:
        """Advance one clock cycle; returns the sampled outputs."""
        dirty = self.drive(**buses)
        if dirty:
            self._propagate(dirty)
        outputs = self.peek_outputs()
        # Sample all flop D pins, then commit Q simultaneously.
        sampled = [
            (flop, self._values[flop.pins["d"].uid]) for flop in self._flops
        ]
        changed: list[int] = []
        for flop, d_value in sampled:
            q_net = flop.pins["q"]
            if self._values[q_net.uid] != d_value:
                self._values[q_net.uid] = d_value
                changed.append(q_net.uid)
        if changed:
            self._propagate(changed)
        self.cycle += 1
        return outputs

    def run(self, stimulus: Iterable[Mapping[str, int]],
            max_cycles: int | None = None) -> list[dict[str, int]]:
        """Step once per stimulus entry; returns each cycle's outputs.

        With *max_cycles*, raise :class:`NetlistError` once that many
        cycles have been stepped — a guard against pathological (e.g.
        endless) stimulus generators.
        """
        outputs: list[dict[str, int]] = []
        for entry in stimulus:
            if max_cycles is not None and len(outputs) >= max_cycles:
                raise NetlistError(
                    f"run() exceeded its cycle budget of {max_cycles} "
                    f"cycles on {self.circuit.name!r}; the stimulus "
                    "generator did not terminate in time"
                )
            outputs.append(self.step(**dict(entry)))
        return outputs

    def __repr__(self) -> str:
        return f"GateSimulator({self.circuit.name!r}, cycle={self.cycle})"
