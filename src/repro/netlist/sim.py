"""Gate-level simulation.

A levelized simulator for mapped circuits with two interchangeable
evaluation backends:

``event`` (default)
    Event-driven within each cycle: the combinational cells are
    topologically ordered once; each clock cycle applies the inputs,
    re-evaluates only the fan-out cones of changed nets, then clocks
    every flip-flop simultaneously.
``compiled``
    One straight-line Python function is code-generated per circuit from
    the same topological order — one bitwise expression per cell over a
    flat value list, no per-cell dict lookups or dispatch — and executed
    once per cycle.  Combinational values are re-settled lazily after
    the flop commit, so the steady-state cost is a single generated
    call per cycle.

Both backends share one state representation (a dense ``list`` indexed
by per-circuit net *slots*) and are asserted equivalent by a randomized
oracle (``tests/netlist/test_sim_oracle.py``).  Used by the
stage-equivalence harness (claim R6: the netlist is bit- and
cycle-accurate against the OSSS source), as the slowest rung of the
simulation-speed ladder (claim R7), and as the hot path of the
fault-injection campaign engine (:mod:`repro.fault`).
"""

from __future__ import annotations

import heapq
from typing import Callable, Iterable, Mapping

from repro.netlist.circuit import Cell, Circuit, NetlistError

#: The simulation backends selectable via ``GateSimulator(..., backend=)``.
BACKENDS = ("event", "compiled")


def _eval_cell(name: str, ins: list[int]) -> int:
    if name == "INV":
        return ins[0] ^ 1
    if name == "BUF":
        return ins[0]
    if name == "AND2":
        return ins[0] & ins[1]
    if name == "OR2":
        return ins[0] | ins[1]
    if name == "XOR2":
        return ins[0] ^ ins[1]
    if name == "XNOR2":
        return (ins[0] ^ ins[1]) ^ 1
    if name == "NAND2":
        return (ins[0] & ins[1]) ^ 1
    if name == "NOR2":
        return (ins[0] | ins[1]) ^ 1
    if name == "MUX2":
        d0, d1, s = ins
        return d1 if s else d0
    raise NetlistError(f"cannot evaluate cell type {name}")


def _cell_expr(name: str, ins: list[int]) -> str:
    """The cell's output as a Python expression over value slots."""
    if name == "INV":
        return f"v[{ins[0]}] ^ 1"
    if name == "BUF":
        return f"v[{ins[0]}]"
    if name == "AND2":
        return f"v[{ins[0]}] & v[{ins[1]}]"
    if name == "OR2":
        return f"v[{ins[0]}] | v[{ins[1]}]"
    if name == "XOR2":
        return f"v[{ins[0]}] ^ v[{ins[1]}]"
    if name == "XNOR2":
        return f"1 ^ v[{ins[0]}] ^ v[{ins[1]}]"
    if name == "NAND2":
        return f"1 ^ (v[{ins[0]}] & v[{ins[1]}])"
    if name == "NOR2":
        return f"1 ^ (v[{ins[0]}] | v[{ins[1]}])"
    if name == "MUX2":
        d0, d1, s = ins
        return f"v[{d1}] if v[{s}] else v[{d0}]"
    raise NetlistError(f"cannot compile cell type {name}")


class _CompiledEngine:
    """The code-generated evaluator functions for one circuit.

    ``settle(v)``            full combinational settle, straight-line;
    ``settle_forced(v, f)``  same, clamping slots present in *f* (the
                             fault subsystem's stuck-at forcing);
    ``commit(v)``            simultaneous flop commit (one tuple
                             assignment: every D is read before any Q
                             is written);
    ``peek(v)``              output buses as a fresh ``{name: value}``.
    """

    __slots__ = ("settle", "settle_forced", "commit", "peek", "source")

    def __init__(self, settle: Callable, settle_forced: Callable,
                 commit: Callable, peek: Callable, source: str) -> None:
        self.settle = settle
        self.settle_forced = settle_forced
        self.commit = commit
        self.peek = peek
        self.source = source


def compile_engine(circuit: Circuit, order: list[Cell],
                   flops: list[Cell], slot: dict[int, int]) -> _CompiledEngine:
    """Generate and compile the straight-line evaluator for *circuit*."""
    settle_lines: list[str] = []
    forced_lines: list[str] = []
    for cell in order:
        out = slot[cell.pins[cell.ctype.outputs[0]].uid]
        ins = [slot[n.uid] for n in cell.input_nets()]
        expr = _cell_expr(cell.ctype.name, ins)
        settle_lines.append(f"    v[{out}] = {expr}")
        forced_lines.append(
            f"    v[{out}] = f[{out}] if {out} in f else ({expr})"
        )
    if flops:
        lhs = ", ".join(f"v[{slot[f.pins['q'].uid]}]" for f in flops)
        rhs = ", ".join(f"v[{slot[f.pins['d'].uid]}]" for f in flops)
        commit_lines = [f"    {lhs} = {rhs}"]
    else:
        commit_lines = ["    pass"]
    peek_items = []
    for name, nets in circuit.output_buses.items():
        bits = [
            f"v[{slot[net.uid]}]" if k == 0 else f"v[{slot[net.uid]}] << {k}"
            for k, net in enumerate(nets)
        ]
        peek_items.append(f"{name!r}: {' | '.join(bits) or '0'}")
    source = "\n".join([
        "def settle(v):",
        *(settle_lines or ["    pass"]),
        "",
        "def settle_forced(v, f):",
        *(forced_lines or ["    pass"]),
        "",
        "def commit(v):",
        *commit_lines,
        "",
        "def peek(v):",
        "    return {" + ", ".join(peek_items) + "}",
        "",
    ])
    namespace: dict = {}
    exec(compile(source, f"<compiled:{circuit.name}>", "exec"), namespace)
    return _CompiledEngine(namespace["settle"], namespace["settle_forced"],
                           namespace["commit"], namespace["peek"], source)


class GateSimulator:
    """Cycle-based two-valued gate simulator.

    Parameters
    ----------
    circuit:
        A linked (no black boxes), validated circuit.
    backend:
        ``"event"`` for the interpreted event-driven engine (the
        reference) or ``"compiled"`` for the code-generated straight-line
        evaluator (the fast path; see the module docstring).

    Net values live in a flat list (``self._values``) indexed by a dense
    per-circuit *slot*; ``self._slot`` maps net uid to slot.  Both
    backends share this store, so the fault-injection hooks
    (:mod:`repro.fault.inject`) work identically under either.
    """

    def __init__(self, circuit: Circuit, backend: str = "event") -> None:
        if backend not in BACKENDS:
            raise NetlistError(
                f"unknown simulation backend {backend!r} "
                f"(expected one of {BACKENDS})"
            )
        circuit.validate()
        self.circuit = circuit
        self.backend = backend
        self._order = circuit.topological_comb_order()
        self._flops = circuit.flops()
        self._n_cells = len(self._order)
        #: Hooks called (no arguments) after every committed step; the
        #: cycle-based counterpart of the kernel's ``cycle_hooks``, used
        #: by :class:`repro.obs.vcd.GateTrace`.
        self.step_hooks: list = []
        # Work counters (see stats()); initialized before the first
        # settle below so construction work is counted too.
        self._n_steps = 0
        self._n_settles = 0
        self._n_cell_evals = 0
        self._n_wakeups = 0
        self._n_fast_commits = 0
        # Slots are allocated for *live* nets only (cell pins, bus
        # members, constants): technology mapping leaves many dead nets
        # behind, and the value list is copied by every checkpoint.
        used: set[int] = set(circuit.primary_input_nets())
        for cell in circuit.cells:
            for net in cell.pins.values():
                used.add(net.uid)
        for nets in circuit.output_buses.values():
            for net in nets:
                used.add(net.uid)
        self._slot: dict[int, int] = {}
        for net in circuit.nets:
            if net.uid in used:
                self._slot[net.uid] = len(self._slot)
        slot = self._slot
        self._values: list[int] = [0] * len(slot)
        self._const_uids: set[int] = set()
        for value, net in circuit.constant_nets().items():
            self._values[slot[net.uid]] = value
            self._const_uids.add(net.uid)
        # Pre-resolved slots for the interpreted engine: input slots and
        # the output slot per cell, fan-out cells per slot, topo level.
        self._cell_ins: dict[int, list[int]] = {}
        self._cell_out: dict[int, int] = {}
        self._fanout: dict[int, list[Cell]] = {}
        self._level: dict[int, int] = {}
        for level, cell in enumerate(self._order):
            self._level[cell.uid] = level
            self._cell_ins[cell.uid] = [
                slot[n.uid] for n in cell.input_nets()
            ]
            self._cell_out[cell.uid] = \
                slot[cell.pins[cell.ctype.outputs[0]].uid]
            for net in cell.input_nets():
                self._fanout.setdefault(slot[net.uid], []).append(cell)
        self._in_slots = {
            name: [slot[n.uid] for n in nets]
            for name, nets in circuit.input_buses.items()
        }
        self._out_slots = {
            name: [slot[n.uid] for n in nets]
            for name, nets in circuit.output_buses.items()
        }
        self._flop_d = [slot[f.pins["d"].uid] for f in self._flops]
        self._flop_q = [slot[f.pins["q"].uid] for f in self._flops]
        self._inputs: dict[str, int] = {name: 0 for name in circuit.input_buses}
        self.cycle = 0
        self._compiled = (
            compile_engine(circuit, self._order, self._flops, slot)
            if backend == "compiled" else None
        )
        #: Compiled backend only: combinational values are stale after a
        #: flop commit and re-settled on demand (next step, peek, or
        #: state access) — one generated call per steady-state cycle.
        self._stale = False
        self._settle_all()

    @property
    def compiled_source(self) -> str | None:
        """The generated evaluator source (``None`` on the event backend)."""
        return self._compiled.source if self._compiled is not None else None

    # ------------------------------------------------------------------
    # evaluation
    # ------------------------------------------------------------------
    def _settle_all(self) -> None:
        self._n_settles += 1
        if self._compiled is not None:
            self._compiled.settle(self._values)
        else:
            self._n_cell_evals += self._n_cells
            for cell in self._order:
                self._eval(cell)
        self._stale = False

    def _ensure_settled(self) -> None:
        if self._stale:
            self._settle_all()

    def _eval(self, cell: Cell) -> bool:
        values = self._values
        ins = [values[s] for s in self._cell_ins[cell.uid]]
        out = self._cell_out[cell.uid]
        new = _eval_cell(cell.ctype.name, ins)
        if values[out] == new:
            return False
        values[out] = new
        return True

    def _propagate(self, dirty_slots: list[int]) -> None:
        """Event-driven settle: re-evaluate fan-out of changed slots."""
        pending: list[tuple[int, int]] = []
        queued: set[int] = set()
        _by_uid: dict[int, Cell] = {}

        def enqueue(net_slot: int) -> None:
            for cell in self._fanout.get(net_slot, ()):
                if cell.uid not in queued:
                    queued.add(cell.uid)
                    heapq.heappush(pending, (self._level[cell.uid], cell.uid))
                    _by_uid[cell.uid] = cell

        for net_slot in dirty_slots:
            enqueue(net_slot)
        evals = 0
        while pending:
            _, cell_uid = heapq.heappop(pending)
            cell = _by_uid[cell_uid]
            queued.discard(cell_uid)
            evals += 1
            if self._eval(cell):
                enqueue(self._cell_out[cell_uid])
        self._n_wakeups += evals
        self._n_cell_evals += evals

    def drive(self, **buses: int) -> list[int]:
        """Set input buses; returns the list of changed net slots.

        Values are masked to the bus width before being stored (matching
        :meth:`repro.rtl.simulate.RtlSimulator.drive`); negative values
        are rejected — drive the two's-complement raw pattern instead.
        """
        dirty: list[int] = []
        values = self._values
        for name, value in buses.items():
            slots = self._in_slots.get(name)
            if slots is None:
                raise NetlistError(f"no input bus {name!r}")
            value = int(value)
            if value < 0:
                raise NetlistError(
                    f"input bus {name!r} driven with negative value "
                    f"{value}; drive the raw two's-complement pattern"
                )
            value &= (1 << len(slots)) - 1
            self._inputs[name] = value
            for k, net_slot in enumerate(slots):
                bit_value = (value >> k) & 1
                if values[net_slot] != bit_value:
                    values[net_slot] = bit_value
                    dirty.append(net_slot)
        return dirty

    def peek_outputs(self) -> dict[str, int]:
        """Current output bus values."""
        self._ensure_settled()
        if self._compiled is not None:
            return self._compiled.peek(self._values)
        values = self._values
        result = {}
        for name, slots in self._out_slots.items():
            value = 0
            for k, net_slot in enumerate(slots):
                value |= values[net_slot] << k
            result[name] = value
        return result

    # ------------------------------------------------------------------
    # state checkpointing (used by the fault-campaign engine)
    # ------------------------------------------------------------------
    def snapshot_state(self) -> tuple:
        """A deep, settled copy of the simulator state."""
        self._ensure_settled()
        return (list(self._values), self.cycle, dict(self._inputs))

    def restore_state(self, snap: tuple) -> None:
        """Rewind to a :meth:`snapshot_state` checkpoint."""
        values, cycle, inputs = snap
        self._values = list(values)
        self.cycle = cycle
        self._inputs = dict(inputs)
        self._stale = False

    # ------------------------------------------------------------------
    # stepping
    # ------------------------------------------------------------------
    def step(self, **buses: int) -> dict[str, int]:
        """Advance one clock cycle; returns the sampled outputs."""
        if self._compiled is not None:
            outputs = self._step_compiled(buses)
        else:
            outputs = self._step_event(buses)
        self._n_steps += 1
        for hook in self.step_hooks:
            hook()
        return outputs

    def _step_event(self, buses: Mapping[str, int]) -> dict[str, int]:
        dirty = self.drive(**buses)
        if dirty:
            self._propagate(dirty)
        outputs = self.peek_outputs()
        values = self._values
        # Sample all flop D pins, then commit Q simultaneously.
        sampled = [values[d] for d in self._flop_d]
        changed: list[int] = []
        for q, d_value in zip(self._flop_q, sampled):
            if values[q] != d_value:
                values[q] = d_value
                changed.append(q)
        if changed:
            self._propagate(changed)
        self.cycle += 1
        return outputs

    def _step_compiled(self, buses: Mapping[str, int]) -> dict[str, int]:
        self.drive(**buses)
        engine = self._compiled
        values = self._values
        engine.settle(values)
        self._n_settles += 1
        outputs = engine.peek(values)
        engine.commit(values)
        self._n_fast_commits += 1
        # Combinational nets now lag the committed state; the next
        # settle (next step or on-demand) brings them forward.
        self._stale = True
        self.cycle += 1
        return outputs

    def run(self, stimulus: Iterable[Mapping[str, int]],
            max_cycles: int | None = None) -> list[dict[str, int]]:
        """Step once per stimulus entry; returns each cycle's outputs.

        With *max_cycles*, raise :class:`NetlistError` once that many
        cycles have been stepped — a guard against pathological (e.g.
        endless) stimulus generators.
        """
        outputs: list[dict[str, int]] = []
        for entry in stimulus:
            if max_cycles is not None and len(outputs) >= max_cycles:
                raise NetlistError(
                    f"run() exceeded its cycle budget of {max_cycles} "
                    f"cycles on {self.circuit.name!r}; the stimulus "
                    "generator did not terminate in time"
                )
            outputs.append(self.step(**dict(entry)))
        return outputs

    # ------------------------------------------------------------------
    # observability
    # ------------------------------------------------------------------
    def flop_values(self) -> dict[str, int]:
        """Committed flop output values by (disambiguated) net name."""
        values = self._values
        result: dict[str, int] = {}
        seen: dict[str, int] = {}
        for flop in self._flops:
            net = flop.pins["q"]
            count = seen.get(net.name, 0)
            seen[net.name] = count + 1
            name = net.name if count == 0 else f"{net.name}#{count}"
            result[name] = values[self._slot[net.uid]]
        return result

    def stats(self) -> dict[str, int | str]:
        """Uniform work counters (see DESIGN.md §8).

        ``steps``          committed clock cycles;
        ``cells``          combinational cells in the circuit;
        ``settle_passes``  full combinational settles (construction,
                           compiled steps, lazy re-settles);
        ``cell_evals``     *interpreted* per-cell dispatches — full
                           interpreted settles count every cell,
                           event-driven propagation counts only the
                           cells actually woken.  The compiled backend
                           performs none: its settles run as generated
                           straight-line code, so its work is
                           ``settle_passes × cells`` without the
                           per-cell dispatch this counter measures;
        ``event_wakeups``  cells popped from the event queue (event
                           backend only; a subset of ``cell_evals``);
        ``fast_commits``   code-generated flop commits (compiled only).
        """
        return {
            "backend": self.backend,
            "steps": self._n_steps,
            "cells": self._n_cells,
            "settle_passes": self._n_settles,
            "cell_evals": self._n_cell_evals,
            "event_wakeups": self._n_wakeups,
            "fast_commits": self._n_fast_commits,
        }

    def reset_stats(self) -> None:
        """Zero the work counters (simulation state is untouched)."""
        self._n_steps = 0
        self._n_settles = 0
        self._n_cell_evals = 0
        self._n_wakeups = 0
        self._n_fast_commits = 0

    def __repr__(self) -> str:
        return (f"GateSimulator({self.circuit.name!r}, "
                f"backend={self.backend!r}, cycle={self.cycle})")
