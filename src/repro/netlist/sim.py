"""Gate-level simulation.

A levelized simulator for mapped circuits with two interchangeable
evaluation backends:

``event`` (default)
    Event-driven within each cycle: the combinational cells are
    topologically ordered once; each clock cycle applies the inputs,
    re-evaluates only the fan-out cones of changed nets, then clocks
    every flip-flop simultaneously.
``compiled``
    One straight-line Python function is code-generated per circuit from
    the same topological order — one bitwise expression per cell over a
    flat value list, no per-cell dict lookups or dispatch — and executed
    once per cycle.  Combinational values are re-settled lazily after
    the flop commit, so the steady-state cost is a single generated
    call per cycle.
``bitparallel``
    The compiled evaluator regenerated with *lane-parallel* bitwise
    expressions (PPSFP): every net slot holds up to
    :attr:`GateSimulator.LANE_CAPACITY` independent one-bit simulations
    packed into one Python int, so a single ``settle`` evaluates all
    lanes at once.  With one lane active the generated code reduces
    exactly to the scalar compiled semantics (the all-lanes mask ``M``
    is 1), so the backend doubles as a drop-in compiled engine; the
    fault campaign (:mod:`repro.fault.campaign`) widens it to pack up
    to 64 stuck-at faults per settle.

All backends share one state representation (a dense ``list`` indexed
by per-circuit net *slots*) and are asserted equivalent by a randomized
oracle (``tests/netlist/test_sim_oracle.py``).  Used by the
stage-equivalence harness (claim R6: the netlist is bit- and
cycle-accurate against the OSSS source), as the slowest rung of the
simulation-speed ladder (claim R7), and as the hot path of the
fault-injection campaign engine (:mod:`repro.fault`).
"""

from __future__ import annotations

import heapq
from typing import Callable, Iterable, Mapping

from repro.netlist.circuit import Cell, Circuit, NetlistError

#: The simulation backends selectable via ``GateSimulator(..., backend=)``.
BACKENDS = ("event", "compiled", "bitparallel")


def _eval_cell(name: str, ins: list[int]) -> int:
    if name == "INV":
        return ins[0] ^ 1
    if name == "BUF":
        return ins[0]
    if name == "AND2":
        return ins[0] & ins[1]
    if name == "OR2":
        return ins[0] | ins[1]
    if name == "XOR2":
        return ins[0] ^ ins[1]
    if name == "XNOR2":
        return (ins[0] ^ ins[1]) ^ 1
    if name == "NAND2":
        return (ins[0] & ins[1]) ^ 1
    if name == "NOR2":
        return (ins[0] | ins[1]) ^ 1
    if name == "MUX2":
        d0, d1, s = ins
        return d1 if s else d0
    raise NetlistError(f"cannot evaluate cell type {name}")


def _cell_expr(name: str, ins: list[int]) -> str:
    """The cell's output as a Python expression over value slots."""
    if name == "INV":
        return f"v[{ins[0]}] ^ 1"
    if name == "BUF":
        return f"v[{ins[0]}]"
    if name == "AND2":
        return f"v[{ins[0]}] & v[{ins[1]}]"
    if name == "OR2":
        return f"v[{ins[0]}] | v[{ins[1]}]"
    if name == "XOR2":
        return f"v[{ins[0]}] ^ v[{ins[1]}]"
    if name == "XNOR2":
        return f"1 ^ v[{ins[0]}] ^ v[{ins[1]}]"
    if name == "NAND2":
        return f"1 ^ (v[{ins[0]}] & v[{ins[1]}])"
    if name == "NOR2":
        return f"1 ^ (v[{ins[0]}] | v[{ins[1]}])"
    if name == "MUX2":
        d0, d1, s = ins
        return f"v[{d1}] if v[{s}] else v[{d0}]"
    raise NetlistError(f"cannot compile cell type {name}")


def _cell_expr_wide(name: str, ins: list[int]) -> str:
    """Lane-parallel variant of :func:`_cell_expr`.

    ``M`` is a module-level global of the generated namespace holding
    the all-lanes mask ``(1 << lanes) - 1``: it replaces the scalar
    constant 1 so inversions flip every active lane, and MUX2 becomes
    branch-free so each lane selects independently.  With ``M == 1``
    every expression reduces exactly to its scalar counterpart.
    """
    if name == "INV":
        return f"M ^ v[{ins[0]}]"
    if name == "BUF":
        return f"v[{ins[0]}]"
    if name == "AND2":
        return f"v[{ins[0]}] & v[{ins[1]}]"
    if name == "OR2":
        return f"v[{ins[0]}] | v[{ins[1]}]"
    if name == "XOR2":
        return f"v[{ins[0]}] ^ v[{ins[1]}]"
    if name == "XNOR2":
        return f"M ^ v[{ins[0]}] ^ v[{ins[1]}]"
    if name == "NAND2":
        return f"M ^ (v[{ins[0]}] & v[{ins[1]}])"
    if name == "NOR2":
        return f"M ^ (v[{ins[0]}] | v[{ins[1]}])"
    if name == "MUX2":
        d0, d1, s = ins
        return f"(v[{d1}] & v[{s}]) | (v[{d0}] & (M ^ v[{s}]))"
    raise NetlistError(f"cannot compile cell type {name}")


class _CompiledEngine:
    """The code-generated evaluator functions for one circuit.

    ``settle(v)``            full combinational settle, straight-line;
    ``settle_forced(v, f)``  same, clamping slots present in *f* (the
                             fault subsystem's stuck-at forcing);
    ``commit(v)``            simultaneous flop commit (one tuple
                             assignment: every D is read before any Q
                             is written);
    ``peek(v)``              output buses as a fresh ``{name: value}``.

    A *wide* (lane-parallel) engine additionally carries:

    ``peek_lane(v, lane)``   one lane's output buses, extracted bit by
                             bit from the packed slots;
    ``set_mask(m)``          rebind the generated namespace's all-lanes
                             mask ``M`` (1 = scalar mode).

    Wide forcing masks are per-slot ``(keep, value)`` pairs: the settled
    expression becomes ``expr & keep | value``, so individual lanes are
    clamped while the others evaluate freely — scalar forcing is the
    degenerate pair ``(0, value)``.
    """

    __slots__ = ("settle", "settle_forced", "commit", "peek", "source",
                 "peek_lane", "namespace", "spec_lines", "spec_index")

    def __init__(self, settle: Callable, settle_forced: Callable,
                 commit: Callable, peek: Callable, source: str,
                 peek_lane: Callable | None = None,
                 namespace: dict | None = None,
                 spec_lines: list[str] | None = None,
                 spec_index: dict[int, tuple[int, str]] | None = None,
                 ) -> None:
        self.settle = settle
        self.settle_forced = settle_forced
        self.commit = commit
        self.peek = peek
        self.source = source
        self.peek_lane = peek_lane
        self.namespace = namespace
        self.spec_lines = spec_lines
        self.spec_index = spec_index

    def set_mask(self, mask: int) -> None:
        """Set the all-lanes mask ``M`` of a wide engine."""
        if self.namespace is None:
            raise NetlistError("set_mask() needs a lane-parallel engine")
        self.namespace["M"] = mask

    def specialize_forced(self, forces: dict[int, tuple[int, int]]
                          ) -> Callable:
        """Compile a settle with *forces* baked in as literal clamps.

        ``settle_forced`` pays a per-line membership test against the
        forcing dict on every call; for a force set that stays fixed
        over many steps (a lane batch draining toward quiescence, or
        the stimulus tail after the last lane activates) that test is
        pure overhead.  This regenerates the settle with the handful of
        clamped lines rewritten as ``(expr) & keep | value`` literals —
        as fast as the plain settle.  Forced slots that are not cell
        outputs (flop state, primary inputs) need no settle-line clamp:
        the settle never writes them, so their forced value persists.
        The function is compiled into the engine's own namespace, so
        the all-lanes mask ``M`` stays live.
        """
        if self.spec_lines is None or self.spec_index is None:
            raise NetlistError(
                "specialize_forced() needs a lane-parallel engine"
            )
        lines = list(self.spec_lines)
        for out, (keep, val) in forces.items():
            entry = self.spec_index.get(out)
            if entry is None:
                continue
            idx, expr = entry
            lines[idx] = f"    v[{out}] = ({expr}) & {keep} | {val}"
        source = "def settle_spec(v):\n" + "\n".join(lines or ["    pass"])
        exec(compile(source, "<bitparallel:specialized>", "exec"),
             self.namespace)
        return self.namespace.pop("settle_spec")


def compile_engine(circuit: Circuit, order: list[Cell],
                   flops: list[Cell], slot: dict[int, int],
                   wide: bool = False) -> _CompiledEngine:
    """Generate and compile the straight-line evaluator for *circuit*.

    With ``wide=True`` the lane-parallel variant is generated: cell
    expressions come from :func:`_cell_expr_wide` over the namespace
    global ``M`` (initially 1, i.e. scalar mode), forcing clamps take
    ``(keep, value)`` mask pairs instead of scalar values, and a
    ``peek_lane`` extractor is added.  ``peek`` itself stays the scalar
    extractor — it is only meaningful while ``M == 1``.
    """
    cell_expr = _cell_expr_wide if wide else _cell_expr
    settle_lines: list[str] = []
    forced_lines: list[str] = []
    spec_index: dict[int, tuple[int, str]] = {}
    for cell in order:
        out = slot[cell.pins[cell.ctype.outputs[0]].uid]
        ins = [slot[n.uid] for n in cell.input_nets()]
        expr = cell_expr(cell.ctype.name, ins)
        settle_lines.append(f"    v[{out}] = {expr}")
        if wide:
            spec_index[out] = (len(settle_lines) - 1, expr)
            forced_lines.append(
                f"    v[{out}] = ({expr}) if {out} not in f "
                f"else (({expr}) & f[{out}][0] | f[{out}][1])"
            )
        else:
            forced_lines.append(
                f"    v[{out}] = f[{out}] if {out} in f else ({expr})"
            )
    if flops:
        lhs = ", ".join(f"v[{slot[f.pins['q'].uid]}]" for f in flops)
        rhs = ", ".join(f"v[{slot[f.pins['d'].uid]}]" for f in flops)
        commit_lines = [f"    {lhs} = {rhs}"]
    else:
        commit_lines = ["    pass"]
    peek_items = []
    lane_items = []
    for name, nets in circuit.output_buses.items():
        bits = [
            f"v[{slot[net.uid]}]" if k == 0 else f"v[{slot[net.uid]}] << {k}"
            for k, net in enumerate(nets)
        ]
        peek_items.append(f"{name!r}: {' | '.join(bits) or '0'}")
        lane_bits = [
            f"(v[{slot[net.uid]}] >> lane & 1)" if k == 0
            else f"(v[{slot[net.uid]}] >> lane & 1) << {k}"
            for k, net in enumerate(nets)
        ]
        lane_items.append(f"{name!r}: {' | '.join(lane_bits) or '0'}")
    lines = [
        *(["M = 1", ""] if wide else []),
        "def settle(v):",
        *(settle_lines or ["    pass"]),
        "",
        "def settle_forced(v, f):",
        *(forced_lines or ["    pass"]),
        "",
        "def commit(v):",
        *commit_lines,
        "",
        "def peek(v):",
        "    return {" + ", ".join(peek_items) + "}",
        "",
    ]
    if wide:
        lines += [
            "def peek_lane(v, lane):",
            "    return {" + ", ".join(lane_items) + "}",
            "",
        ]
    source = "\n".join(lines)
    tag = "bitparallel" if wide else "compiled"
    namespace: dict = {}
    exec(compile(source, f"<{tag}:{circuit.name}>", "exec"), namespace)
    return _CompiledEngine(
        namespace["settle"], namespace["settle_forced"],
        namespace["commit"], namespace["peek"], source,
        peek_lane=namespace.get("peek_lane"),
        namespace=namespace if wide else None,
        spec_lines=settle_lines if wide else None,
        spec_index=spec_index if wide else None,
    )


class GateSimulator:
    """Cycle-based two-valued gate simulator.

    Parameters
    ----------
    circuit:
        A linked (no black boxes), validated circuit.
    backend:
        ``"event"`` for the interpreted event-driven engine (the
        reference), ``"compiled"`` for the code-generated straight-line
        evaluator (the fast path), or ``"bitparallel"`` for the
        lane-parallel generated evaluator (scalar until
        :meth:`begin_lanes` widens it; see the module docstring).

    Net values live in a flat list (``self._values``) indexed by a dense
    per-circuit *slot*; ``self._slot`` maps net uid to slot.  All
    backends share this store, so the fault-injection hooks
    (:mod:`repro.fault.inject`) work identically under each.
    """

    #: Maximum simultaneous lanes of the ``bitparallel`` backend.  64
    #: keeps every packed slot within one machine word of CPython's
    #: big-int representation, the sweet spot for the bitwise ops the
    #: generated code is made of.
    LANE_CAPACITY = 64

    def __init__(self, circuit: Circuit, backend: str = "event") -> None:
        if backend not in BACKENDS:
            raise NetlistError(
                f"unknown simulation backend {backend!r} "
                f"(expected one of {BACKENDS})"
            )
        circuit.validate()
        self.circuit = circuit
        self.backend = backend
        self._order = circuit.topological_comb_order()
        self._flops = circuit.flops()
        self._n_cells = len(self._order)
        #: Hooks called (no arguments) after every committed step; the
        #: cycle-based counterpart of the kernel's ``cycle_hooks``, used
        #: by :class:`repro.obs.vcd.GateTrace`.
        self.step_hooks: list = []
        # Work counters (see stats()); initialized before the first
        # settle below so construction work is counted too.
        self._n_steps = 0
        self._n_settles = 0
        self._n_cell_evals = 0
        self._n_wakeups = 0
        self._n_fast_commits = 0
        # Slots are allocated for *live* nets only (cell pins, bus
        # members, constants): technology mapping leaves many dead nets
        # behind, and the value list is copied by every checkpoint.
        used: set[int] = set(circuit.primary_input_nets())
        for cell in circuit.cells:
            for net in cell.pins.values():
                used.add(net.uid)
        for nets in circuit.output_buses.values():
            for net in nets:
                used.add(net.uid)
        self._slot: dict[int, int] = {}
        for net in circuit.nets:
            if net.uid in used:
                self._slot[net.uid] = len(self._slot)
        slot = self._slot
        self._values: list[int] = [0] * len(slot)
        self._const_uids: set[int] = set()
        for value, net in circuit.constant_nets().items():
            self._values[slot[net.uid]] = value
            self._const_uids.add(net.uid)
        # Pre-resolved slots for the interpreted engine: input slots and
        # the output slot per cell, fan-out cells per slot, topo level.
        self._cell_ins: dict[int, list[int]] = {}
        self._cell_out: dict[int, int] = {}
        self._fanout: dict[int, list[Cell]] = {}
        self._level: dict[int, int] = {}
        for level, cell in enumerate(self._order):
            self._level[cell.uid] = level
            self._cell_ins[cell.uid] = [
                slot[n.uid] for n in cell.input_nets()
            ]
            self._cell_out[cell.uid] = \
                slot[cell.pins[cell.ctype.outputs[0]].uid]
            for net in cell.input_nets():
                self._fanout.setdefault(slot[net.uid], []).append(cell)
        self._in_slots = {
            name: [slot[n.uid] for n in nets]
            for name, nets in circuit.input_buses.items()
        }
        self._out_slots = {
            name: [slot[n.uid] for n in nets]
            for name, nets in circuit.output_buses.items()
        }
        self._flop_d = [slot[f.pins["d"].uid] for f in self._flops]
        self._flop_q = [slot[f.pins["q"].uid] for f in self._flops]
        self._inputs: dict[str, int] = {name: 0 for name in circuit.input_buses}
        self.cycle = 0
        #: Active lane count / all-lanes mask (bitparallel backend; the
        #: scalar backends stay at 1 so shared code paths cost nothing).
        self._lanes = 1
        self._lane_mask = 1
        self._compiled = (
            compile_engine(circuit, self._order, self._flops, slot,
                           wide=backend == "bitparallel")
            if backend in ("compiled", "bitparallel") else None
        )
        #: Compiled backend only: combinational values are stale after a
        #: flop commit and re-settled on demand (next step, peek, or
        #: state access) — one generated call per steady-state cycle.
        self._stale = False
        self._settle_all()

    @property
    def compiled_source(self) -> str | None:
        """The generated evaluator source (``None`` on the event backend)."""
        return self._compiled.source if self._compiled is not None else None

    # ------------------------------------------------------------------
    # evaluation
    # ------------------------------------------------------------------
    def _settle_all(self) -> None:
        self._n_settles += 1
        if self._compiled is not None:
            self._compiled.settle(self._values)
        else:
            self._n_cell_evals += self._n_cells
            for cell in self._order:
                self._eval(cell)
        self._stale = False

    def _ensure_settled(self) -> None:
        if self._stale:
            self._settle_all()

    def _eval(self, cell: Cell) -> bool:
        values = self._values
        ins = [values[s] for s in self._cell_ins[cell.uid]]
        out = self._cell_out[cell.uid]
        new = _eval_cell(cell.ctype.name, ins)
        if values[out] == new:
            return False
        values[out] = new
        return True

    def _propagate(self, dirty_slots: list[int]) -> None:
        """Event-driven settle: re-evaluate fan-out of changed slots."""
        pending: list[tuple[int, int]] = []
        queued: set[int] = set()
        _by_uid: dict[int, Cell] = {}

        def enqueue(net_slot: int) -> None:
            for cell in self._fanout.get(net_slot, ()):
                if cell.uid not in queued:
                    queued.add(cell.uid)
                    heapq.heappush(pending, (self._level[cell.uid], cell.uid))
                    _by_uid[cell.uid] = cell

        for net_slot in dirty_slots:
            enqueue(net_slot)
        evals = 0
        while pending:
            _, cell_uid = heapq.heappop(pending)
            cell = _by_uid[cell_uid]
            queued.discard(cell_uid)
            evals += 1
            if self._eval(cell):
                enqueue(self._cell_out[cell_uid])
        self._n_wakeups += evals
        self._n_cell_evals += evals

    def drive(self, **buses: int) -> list[int]:
        """Set input buses; returns the list of changed net slots.

        Values are masked to the bus width before being stored (matching
        :meth:`repro.rtl.simulate.RtlSimulator.drive`); negative values
        are rejected — drive the two's-complement raw pattern instead.
        """
        dirty: list[int] = []
        values = self._values
        for name, value in buses.items():
            slots = self._in_slots.get(name)
            if slots is None:
                raise NetlistError(f"no input bus {name!r}")
            value = int(value)
            if value < 0:
                raise NetlistError(
                    f"input bus {name!r} driven with negative value "
                    f"{value}; drive the raw two's-complement pattern"
                )
            value &= (1 << len(slots)) - 1
            self._inputs[name] = value
            mask = self._lane_mask  # broadcast 1-bits across all lanes
            for k, net_slot in enumerate(slots):
                bit_value = (value >> k) & 1 and mask
                if values[net_slot] != bit_value:
                    values[net_slot] = bit_value
                    dirty.append(net_slot)
        return dirty

    def peek_outputs(self) -> dict[str, int]:
        """Current output bus values."""
        if self._lanes != 1:
            raise NetlistError(
                "outputs are lane-packed during lane-parallel simulation; "
                "use peek_lane_outputs(lane)"
            )
        self._ensure_settled()
        if self._compiled is not None:
            return self._compiled.peek(self._values)
        values = self._values
        result = {}
        for name, slots in self._out_slots.items():
            value = 0
            for k, net_slot in enumerate(slots):
                value |= values[net_slot] << k
            result[name] = value
        return result

    # ------------------------------------------------------------------
    # state checkpointing (used by the fault-campaign engine)
    # ------------------------------------------------------------------
    def snapshot_state(self) -> tuple:
        """A deep, settled copy of the simulator state (scalar mode)."""
        if self._lanes != 1:
            raise NetlistError(
                "cannot checkpoint lane-packed state; checkpoints are "
                "taken from scalar (single-lane) simulation"
            )
        self._ensure_settled()
        return (list(self._values), self.cycle, dict(self._inputs))

    def restore_state(self, snap: tuple) -> None:
        """Rewind to a :meth:`snapshot_state` checkpoint (scalar mode)."""
        if self._lanes != 1:
            self._lanes = 1
            self._lane_mask = 1
            self._compiled.set_mask(1)
        values, cycle, inputs = snap
        self._values = list(values)
        self.cycle = cycle
        self._inputs = dict(inputs)
        self._stale = False

    # ------------------------------------------------------------------
    # lane-parallel simulation (bitparallel backend)
    # ------------------------------------------------------------------
    @property
    def lanes(self) -> int:
        """Active lane count (1 outside lane-parallel simulation)."""
        return self._lanes

    def begin_lanes(self, n: int) -> None:
        """Widen to *n* independent lanes, each a copy of this state.

        Every slot's scalar 0/1 value is broadcast across the lanes;
        from here the lanes evolve independently under per-lane forcing
        masks (:class:`repro.fault.inject.FaultableGateSimulator`).
        Ends with :meth:`end_lanes` or :meth:`restore_state`.
        """
        if self.backend != "bitparallel":
            raise NetlistError(
                "lane-parallel simulation needs backend='bitparallel' "
                f"(this simulator uses {self.backend!r})"
            )
        if self._lanes != 1:
            raise NetlistError("already in lane-parallel mode")
        if not 1 <= n <= self.LANE_CAPACITY:
            raise NetlistError(
                f"lane count {n} outside [1, {self.LANE_CAPACITY}]"
            )
        self._ensure_settled()
        mask = (1 << n) - 1
        self._lanes = n
        self._lane_mask = mask
        self._compiled.set_mask(mask)
        self._values = [value and mask for value in self._values]

    def end_lanes(self) -> None:
        """Collapse back to scalar mode, keeping lane 0's state."""
        if self._lanes == 1:
            return
        self._lanes = 1
        self._lane_mask = 1
        self._compiled.set_mask(1)
        self._values = [value & 1 for value in self._values]

    def peek_lane_outputs(self, lane: int) -> dict[str, int]:
        """One lane's output bus values during lane-parallel simulation."""
        if self.backend != "bitparallel":
            raise NetlistError(
                "peek_lane_outputs() needs backend='bitparallel'"
            )
        if not 0 <= lane < self._lanes:
            raise NetlistError(
                f"lane {lane} outside the {self._lanes} active lane(s)"
            )
        self._ensure_settled()
        return self._compiled.peek_lane(self._values, lane)

    # ------------------------------------------------------------------
    # stepping
    # ------------------------------------------------------------------
    def step(self, **buses: int) -> dict[str, int]:
        """Advance one clock cycle; returns the sampled outputs."""
        if self._lanes != 1:
            raise NetlistError(
                "step() is scalar; lane-parallel simulation advances via "
                "the fault subsystem's step_lanes()/commit_lanes()"
            )
        if self._compiled is not None:
            outputs = self._step_compiled(buses)
        else:
            outputs = self._step_event(buses)
        self._n_steps += 1
        for hook in self.step_hooks:
            hook()
        return outputs

    def _step_event(self, buses: Mapping[str, int]) -> dict[str, int]:
        dirty = self.drive(**buses)
        if dirty:
            self._propagate(dirty)
        outputs = self.peek_outputs()
        values = self._values
        # Sample all flop D pins, then commit Q simultaneously.
        sampled = [values[d] for d in self._flop_d]
        changed: list[int] = []
        for q, d_value in zip(self._flop_q, sampled):
            if values[q] != d_value:
                values[q] = d_value
                changed.append(q)
        if changed:
            self._propagate(changed)
        self.cycle += 1
        return outputs

    def _step_compiled(self, buses: Mapping[str, int]) -> dict[str, int]:
        self.drive(**buses)
        engine = self._compiled
        values = self._values
        engine.settle(values)
        self._n_settles += 1
        outputs = engine.peek(values)
        engine.commit(values)
        self._n_fast_commits += 1
        # Combinational nets now lag the committed state; the next
        # settle (next step or on-demand) brings them forward.
        self._stale = True
        self.cycle += 1
        return outputs

    def run(self, stimulus: Iterable[Mapping[str, int]],
            max_cycles: int | None = None) -> list[dict[str, int]]:
        """Step once per stimulus entry; returns each cycle's outputs.

        With *max_cycles*, raise :class:`NetlistError` once that many
        cycles have been stepped — a guard against pathological (e.g.
        endless) stimulus generators.
        """
        outputs: list[dict[str, int]] = []
        for entry in stimulus:
            if max_cycles is not None and len(outputs) >= max_cycles:
                raise NetlistError(
                    f"run() exceeded its cycle budget of {max_cycles} "
                    f"cycles on {self.circuit.name!r}; the stimulus "
                    "generator did not terminate in time"
                )
            outputs.append(self.step(**dict(entry)))
        return outputs

    # ------------------------------------------------------------------
    # observability
    # ------------------------------------------------------------------
    def flop_values(self) -> dict[str, int]:
        """Committed flop output values by (disambiguated) net name."""
        values = self._values
        result: dict[str, int] = {}
        seen: dict[str, int] = {}
        for flop in self._flops:
            net = flop.pins["q"]
            count = seen.get(net.name, 0)
            seen[net.name] = count + 1
            name = net.name if count == 0 else f"{net.name}#{count}"
            result[name] = values[self._slot[net.uid]]
        return result

    def stats(self) -> dict[str, int | str]:
        """Uniform work counters (see DESIGN.md §8).

        ``steps``          committed clock cycles;
        ``cells``          combinational cells in the circuit;
        ``settle_passes``  full combinational settles (construction,
                           compiled steps, lazy re-settles);
        ``cell_evals``     *interpreted* per-cell dispatches — full
                           interpreted settles count every cell,
                           event-driven propagation counts only the
                           cells actually woken.  The compiled backend
                           performs none: its settles run as generated
                           straight-line code, so its work is
                           ``settle_passes × cells`` without the
                           per-cell dispatch this counter measures;
        ``event_wakeups``  cells popped from the event queue (event
                           backend only; a subset of ``cell_evals``);
        ``fast_commits``   code-generated flop commits (compiled only).
        """
        return {
            "backend": self.backend,
            "steps": self._n_steps,
            "cells": self._n_cells,
            "settle_passes": self._n_settles,
            "cell_evals": self._n_cell_evals,
            "event_wakeups": self._n_wakeups,
            "fast_commits": self._n_fast_commits,
        }

    def reset_stats(self) -> None:
        """Zero the work counters (simulation state is untouched)."""
        self._n_steps = 0
        self._n_settles = 0
        self._n_cell_evals = 0
        self._n_wakeups = 0
        self._n_fast_commits = 0

    def __repr__(self) -> str:
        return (f"GateSimulator({self.circuit.name!r}, "
                f"backend={self.backend!r}, cycle={self.cycle})")
