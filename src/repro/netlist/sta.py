"""Static timing analysis.

Computes the worst register-to-register (or input-to-register / -to-output)
combinational path of a mapped circuit and the resulting maximum clock
frequency, reproducing the "achieved frequency" comparison of the paper's
Results section (§12, target 66 MHz).

Model: every primary input and flip-flop ``q`` pin launches at
``clk_to_q``; arrival times propagate through combinational cells using
their pin-to-pin delays; paths captured at a flip-flop ``d`` pin pay the
``setup`` time.  Optional per-net wire delays (from the toy placer in
:mod:`repro.netlist.pnr`) are added on every net traversal.
"""

from __future__ import annotations

from repro.netlist.cells import DFF
from repro.netlist.circuit import Cell, Circuit, Net


class TimingReport:
    """Result of :func:`analyze`."""

    def __init__(
        self,
        critical_path_ns: float,
        fmax_mhz: float,
        path: list[str],
        arrival: dict[int, float],
    ) -> None:
        #: Worst launch-to-capture delay in nanoseconds (incl. clk→q, setup).
        self.critical_path_ns = critical_path_ns
        #: Maximum clock frequency in MHz.
        self.fmax_mhz = fmax_mhz
        #: Cell names along the critical path, launch to capture.
        self.path = path
        #: Final arrival time per net uid (ns).
        self.arrival = arrival

    def meets(self, frequency_mhz: float) -> bool:
        """True if the circuit can run at *frequency_mhz*."""
        return self.fmax_mhz >= frequency_mhz

    def __repr__(self) -> str:
        return (
            f"TimingReport(critical={self.critical_path_ns:.3f}ns, "
            f"fmax={self.fmax_mhz:.1f}MHz, depth={len(self.path)})"
        )


def analyze(circuit: Circuit,
            wire_delays: dict[int, float] | None = None) -> TimingReport:
    """Run STA on *circuit*; optional *wire_delays* map net uid → ns."""
    circuit.validate()
    wire_delays = wire_delays or {}
    arrival: dict[int, float] = {}
    from_cell: dict[int, tuple[Cell, Net] | None] = {}

    def launch(net: Net, time: float) -> None:
        if arrival.get(net.uid, -1.0) < time:
            arrival[net.uid] = time
            from_cell[net.uid] = None

    for nets in circuit.input_buses.values():
        for net in nets:
            launch(net, 0.0)
    for flop in circuit.flops():
        for net in flop.output_nets():
            launch(net, flop.ctype.clk_to_q)
    # Constant nets launch at time 0 (they are static, but keeping them in
    # the graph simplifies traversal; optimization removes most of them).
    for cell in circuit.cells:
        if cell.ctype.name in ("TIE0", "TIE1"):
            for net in cell.output_nets():
                launch(net, 0.0)

    worst = 0.0
    worst_end: tuple[Cell, str] | None = None

    for cell in circuit.topological_comb_order():
        for out_pin in cell.ctype.outputs:
            out_net = cell.pins[out_pin]
            best_time = 0.0
            best_from: Net | None = None
            for in_pin in cell.ctype.inputs:
                in_net = cell.pins[in_pin]
                time = (
                    arrival.get(in_net.uid, 0.0)
                    + wire_delays.get(in_net.uid, 0.0)
                    + cell.ctype.pin_delay(in_pin, out_pin)
                )
                if time > best_time:
                    best_time = time
                    best_from = in_net
            arrival[out_net.uid] = best_time
            from_cell[out_net.uid] = (cell, best_from) if best_from else None

    # Capture at flop d pins (+ setup) and at primary outputs.
    for flop in circuit.flops():
        for in_pin in flop.ctype.inputs:
            net = flop.pins[in_pin]
            time = (
                arrival.get(net.uid, 0.0)
                + wire_delays.get(net.uid, 0.0)
                + flop.ctype.setup
            )
            if time > worst:
                worst = time
                worst_end = (flop, in_pin)
    for nets in circuit.output_buses.values():
        for net in nets:
            time = arrival.get(net.uid, 0.0) + wire_delays.get(net.uid, 0.0)
            if time > worst:
                worst = time
                worst_end = None

    path: list[str] = []
    if worst_end is not None:
        cell, pin = worst_end
        path.append(cell.name)
        cursor = cell.pins[pin]
        while cursor is not None:
            step = from_cell.get(cursor.uid)
            if step is None:
                break
            cell, cursor = step
            path.append(cell.name)
        path.reverse()

    # A purely wire-through circuit still needs one flop period.
    worst = max(worst, DFF.clk_to_q + DFF.setup)
    fmax = 1000.0 / worst  # ns → MHz
    return TimingReport(worst, fmax, path, arrival)
