"""Gate-level backend: cells, mapping, optimization, STA, area, P&R, sim."""

from repro.netlist.area import AreaReport, area_by_module, cell_histogram, total_area
from repro.netlist.cells import LIBRARY, CellType
from repro.netlist.circuit import BlackBox, Cell, Circuit, Net, NetlistError
from repro.netlist.linker import link
from repro.netlist.opt import optimize
from repro.netlist.pnr import Placement, place
from repro.netlist.power import ActivitySimulator, PowerReport, estimate_power
from repro.netlist.sim import GateSimulator
from repro.netlist.sta import TimingReport, analyze
from repro.netlist.techmap import TechMapper, map_module
from repro.netlist.verilog import netlist_stats_comment, to_structural_verilog

__all__ = [
    "AreaReport",
    "BlackBox",
    "Cell",
    "CellType",
    "Circuit",
    "GateSimulator",
    "LIBRARY",
    "Net",
    "NetlistError",
    "ActivitySimulator",
    "Placement",
    "PowerReport",
    "TechMapper",
    "TimingReport",
    "analyze",
    "area_by_module",
    "cell_histogram",
    "link",
    "map_module",
    "optimize",
    "estimate_power",
    "place",
    "netlist_stats_comment",
    "to_structural_verilog",
    "total_area",
]
