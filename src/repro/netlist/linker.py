"""Netlist-level IP linking (paper Fig. 6).

The paper integrates existing VHDL IP by synthesizing it separately and
letting the tools *"connect the whole design automatically"* on the netlist
level.  :func:`link` reproduces that: black-box instances left by the
technology mapper are replaced by clones of separately mapped IP circuits,
with the IP's primary input/output nets spliced onto the host's nets.
"""

from __future__ import annotations

from repro.netlist.cells import BUF
from repro.netlist.circuit import Cell, Circuit, Net, NetlistError


def _clone_ip(host: Circuit, ip: Circuit, prefix: str,
              net_map: dict[int, Net]) -> None:
    """Copy every cell of *ip* into *host*, translating nets."""

    def translate(net: Net) -> Net:
        mapped = net_map.get(net.uid)
        if mapped is None:
            mapped = host.new_net(f"{prefix}/{net.name}")
            net_map[net.uid] = mapped
        return mapped

    for cell in ip.cells:
        pins = {pin: translate(net) for pin, net in cell.pins.items()}
        if cell.ctype.name in ("TIE0", "TIE1"):
            # Reuse the host's shared constant nets instead of new ties.
            value = 1 if cell.ctype.name == "TIE1" else 0
            const = host.const_net(value)
            out = pins[cell.ctype.outputs[0]]
            host.add_cell(f"{prefix}/{cell.name}", BUF, a=const, y=out)
            continue
        host.add_cell(f"{prefix}/{cell.name}", cell.ctype, **pins)


def link(host: Circuit, ip_library: dict[str, Circuit]) -> Circuit:
    """Resolve every black box in *host* using *ip_library* (in place)."""
    for box in list(host.blackboxes):
        ip = ip_library.get(box.ip_name)
        if ip is None:
            raise NetlistError(
                f"black box {box.name!r} needs IP {box.ip_name!r}, "
                f"which is not in the library {sorted(ip_library)}"
            )
        if ip.blackboxes:
            raise NetlistError(f"IP {ip.name!r} is itself unlinked")
        net_map: dict[int, Net] = {}
        for bus_name, host_nets in box.input_buses.items():
            ip_nets = ip.input_buses.get(bus_name)
            if ip_nets is None or len(ip_nets) != len(host_nets):
                raise NetlistError(
                    f"{box.name}: input bus {bus_name!r} mismatch with IP "
                    f"{ip.name!r}"
                )
            for ip_net, host_net in zip(ip_nets, host_nets):
                net_map[ip_net.uid] = host_net
        for bus_name, host_nets in box.output_buses.items():
            ip_nets = ip.output_buses.get(bus_name)
            if ip_nets is None or len(ip_nets) != len(host_nets):
                raise NetlistError(
                    f"{box.name}: output bus {bus_name!r} mismatch with IP "
                    f"{ip.name!r}"
                )
            for ip_net, host_net in zip(ip_nets, host_nets):
                if ip_net.uid in net_map:
                    # Wire-through: the IP output is directly one of its
                    # inputs; keep the input mapping and buffer across.
                    host.add_cell(
                        f"{box.name}/thru_{bus_name}",
                        BUF,
                        a=net_map[ip_net.uid],
                        y=host_net,
                    )
                else:
                    net_map[ip_net.uid] = host_net
        _clone_ip(host, ip, box.name, net_map)
        host.blackboxes.remove(box)
    return host
