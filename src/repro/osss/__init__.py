"""The OSSS object-oriented hardware layer — the paper's core contribution.

Synthesizable classes (:class:`HwClass`), C++-style templates
(:func:`template`), polymorphic storage (:class:`PolyVar`) and global shared
objects with generated arbitration (:class:`SharedObject`), plus the object
state ↔ flat bit-vector mapping (:class:`StateLayout`) that the synthesizer
applies (paper §8).
"""

from repro.osss.hwclass import HwClass, HwClassError, registry
from repro.osss.polymorph import PolyVar
from repro.osss.shared import (
    ClientPort,
    Fcfs,
    RoundRobin,
    Scheduler,
    SharedAccessError,
    SharedObject,
    StaticPriority,
)
from repro.osss.state_layout import StateLayout, pack_object, unpack_object
from repro.osss.template import (
    TemplateError,
    is_generic,
    is_template,
    template,
    template_binding,
)

__all__ = [
    "ClientPort",
    "Fcfs",
    "HwClass",
    "HwClassError",
    "PolyVar",
    "RoundRobin",
    "Scheduler",
    "SharedAccessError",
    "SharedObject",
    "StateLayout",
    "StaticPriority",
    "TemplateError",
    "is_generic",
    "is_template",
    "pack_object",
    "registry",
    "template",
    "template_binding",
    "unpack_object",
]
