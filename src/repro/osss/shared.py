"""Global (shared) objects with generated scheduling (paper §6, §8).

Components *"either shared resources (like an ALU) or used for
intercommunication (like buses or memories)"* are declared once as a
:class:`SharedObject` and accessed from several clocked threads through
:class:`ClientPort` handles.  Access is a blocking member-function call —
``result = yield from port.call("execute", a, b)`` — and *"the access and
scheduling of a global object gets automatically included for synthesis"*:
the synthesizer emits an arbiter (see ``repro.synth.sharedgen``) whose
cycle behaviour matches this simulation model exactly.

Timing contract (identical in simulation and generated RTL)
-----------------------------------------------------------
* cycle *t*:   client posts its request (request register written);
* cycle *t+1*: the arbiter sees all requests posted before *t+1*, picks a
  winner with the :class:`Scheduler` policy, executes the method
  combinationally and registers the result;
* cycle *t+2*: the winning client observes its completed result and
  resumes.  Losing clients keep spinning and are served in later rounds.

An uncontended call therefore costs two cycles; each lost arbitration round
adds one.  *"A designer can use a standard scheduler or implement an own
according to the required needs"* — subclass :class:`Scheduler`.

Watchdog semantics
------------------
Every client wait is bounded: a call that loses more than
``watchdog_rounds`` consecutive arbitration rounds raises
:class:`SharedAccessError` with the full arbitration context instead of
spinning forever.  This is the *dynamic* counterpart of the analyzer's
static OSS303 deadlock rule (see :mod:`repro.analyze.shared_check`): OSS303
rejects call cycles that provably self-deadlock, the watchdog catches
deadlock and starvation that only manifest at run time (e.g. a
:class:`StaticPriority` scheduler starving a low-priority client under
sustained contention).  Pass ``watchdog_rounds=None`` to restore the old
unbounded behaviour.
"""

from __future__ import annotations

from typing import Any, Iterator, Sequence

from repro.osss.hwclass import HwClass


class SharedAccessError(RuntimeError):
    """Raised for protocol misuse (double request, unknown method, ...)."""


class Scheduler:
    """Arbitration policy interface.

    ``pick`` receives the indices of clients with eligible requests (always
    non-empty, ascending) and returns the winning index.  ``reset`` clears
    any internal state (round-robin pointers etc.).
    """

    #: Policy name used by the synthesizer to emit matching RTL.
    policy_name = "custom"

    def pick(self, eligible: Sequence[int], num_clients: int) -> int:
        """Return the winning client index."""
        raise NotImplementedError

    def reset(self) -> None:
        """Clear internal arbitration state."""

    def __repr__(self) -> str:
        return f"{type(self).__name__}()"


class StaticPriority(Scheduler):
    """Lowest client index always wins (simple priority encoder)."""

    policy_name = "static_priority"

    def pick(self, eligible: Sequence[int], num_clients: int) -> int:
        return min(eligible)


class RoundRobin(Scheduler):
    """Fair rotation: the pointer advances past each winner."""

    policy_name = "round_robin"

    def __init__(self) -> None:
        self._pointer = 0

    @property
    def pointer(self) -> int:
        """Next preferred client index."""
        return self._pointer

    def pick(self, eligible: Sequence[int], num_clients: int) -> int:
        for offset in range(num_clients):
            candidate = (self._pointer + offset) % num_clients
            if candidate in eligible:
                self._pointer = (candidate + 1) % num_clients
                return candidate
        raise SharedAccessError("pick() called with no eligible client")

    def reset(self) -> None:
        self._pointer = 0


class Fcfs(Scheduler):
    """First come, first served; ties broken by client index.

    Synthesized with per-client age counters (saturating), so very old
    requests of equal recorded age fall back to index order — matching the
    simulation model, which uses exact arrival stamps but saturates them
    through :attr:`age_bits`.
    """

    policy_name = "fcfs"

    def __init__(self, age_bits: int = 8) -> None:
        self.age_bits = age_bits
        self._ages: dict[int, int] = {}

    def note_waiting(self, waiting: Sequence[int]) -> None:
        """Advance age counters; called by the shared object every round."""
        ceiling = (1 << self.age_bits) - 1
        for index in waiting:
            self._ages[index] = min(self._ages.get(index, 0) + 1, ceiling)
        for index in list(self._ages):
            if index not in waiting:
                del self._ages[index]

    def pick(self, eligible: Sequence[int], num_clients: int) -> int:
        return max(eligible, key=lambda i: (self._ages.get(i, 0), -i))

    def reset(self) -> None:
        self._ages.clear()


class _Request:
    """A posted, not-yet-served method call."""

    __slots__ = ("method", "args", "arrival")

    def __init__(self, method: str, args: tuple, arrival: int) -> None:
        self.method = method
        self.args = args
        self.arrival = arrival


class _Result:
    """A completed call waiting for its client to fetch it."""

    __slots__ = ("value", "ready_at")

    def __init__(self, value: Any, ready_at: int) -> None:
        self.value = value
        self.ready_at = ready_at


class ClientPort:
    """One client's handle onto a :class:`SharedObject`."""

    def __init__(self, owner: "SharedObject", index: int, name: str) -> None:
        self.owner = owner
        self.index = index
        self.name = name

    def call(self, method: str, *args: Any) -> Iterator[None]:
        """Blocking shared-object access; use ``yield from`` in a CThread.

        Returns the method's return value after the arbitration rounds
        described in the module docstring.
        """
        self.owner.post(self.index, method, args)
        rounds = 0
        while True:
            yield
            self.owner.arbitrate()
            result = self.owner.fetch(self.index)
            if result is not _PENDING:
                return result
            rounds += 1
            budget = self.owner.watchdog_rounds
            if budget is not None and rounds >= budget:
                raise self.owner._watchdog_error(self.index, method, rounds)

    def __repr__(self) -> str:
        return f"ClientPort({self.owner.name}.{self.name}[{self.index}])"


#: Sentinel distinguishing "no result yet" from a method returning None.
_PENDING = object()


class SharedObject:
    """A globally accessible hardware object with generated arbitration.

    Parameters
    ----------
    name:
        Instance name (used for generated modules and reports).
    instance:
        The guarded :class:`HwClass` object.
    scheduler:
        Arbitration policy; defaults to :class:`RoundRobin`, the paper's
        "standard scheduler".
    watchdog_rounds:
        Maximum consecutive arbitration rounds a client may lose before
        its blocked call raises :class:`SharedAccessError` (dynamic
        counterpart of analyzer rule OSS303).  ``None`` disables the
        watchdog (the pre-hardening unbounded wait).
    """

    #: Default client wait budget, in arbitration rounds.  Generous: an
    #: uncontended call completes in two rounds and each lost round adds
    #: one, so a legitimate wait is bounded by traffic, not by this.
    DEFAULT_WATCHDOG_ROUNDS = 4096

    def __init__(
        self,
        name: str,
        instance: HwClass,
        scheduler: Scheduler | None = None,
        watchdog_rounds: int | None = DEFAULT_WATCHDOG_ROUNDS,
    ) -> None:
        if not isinstance(instance, HwClass):
            raise TypeError("SharedObject guards a HwClass instance")
        if watchdog_rounds is not None and watchdog_rounds < 1:
            raise ValueError("watchdog_rounds must be >= 1 or None")
        self.name = name
        self.instance = instance
        self.watchdog_rounds = watchdog_rounds
        self.scheduler = scheduler if scheduler is not None else RoundRobin()
        self.ports: list[ClientPort] = []
        self._requests: dict[int, _Request] = {}
        self._results: dict[int, _Result] = {}
        self._last_arbitration: int | None = None
        #: Per-client time of the last completed (fetched) call: the
        #: generated arbiter needs one ack + one clear cycle before the
        #: same client can win again, so a request is ineligible until two
        #: clock cycles after its owner's previous fetch.  The clock period
        #: is inferred from successive arbitration timestamps.
        self._last_fetch: dict[int, int] = {}
        self._period: int | None = None
        self.grant_history: list[tuple[int, int]] = []

    # ------------------------------------------------------------------
    # wiring
    # ------------------------------------------------------------------
    def client_port(self, name: str) -> ClientPort:
        """Create the next client port; call once per accessing process."""
        port = ClientPort(self, len(self.ports), name)
        self.ports.append(port)
        return port

    @property
    def num_clients(self) -> int:
        """Number of created client ports."""
        return len(self.ports)

    # ------------------------------------------------------------------
    # protocol engine
    # ------------------------------------------------------------------
    def _now(self) -> int:
        from repro.hdl.kernel import current_simulator

        sim = current_simulator()
        if sim is None:
            raise SharedAccessError(
                "shared-object access requires a running simulator; "
                "use call_direct() in plain unit tests"
            )
        return sim.now

    def post(self, index: int, method: str, args: tuple) -> None:
        """Register a request from client *index* (arrival-stamped now)."""
        if index in self._requests:
            raise SharedAccessError(
                f"client {index} posted a second request while one is "
                "pending"
            )
        if not callable(getattr(self.instance, method, None)):
            raise SharedAccessError(
                f"{type(self.instance).__name__} has no method {method!r}"
            )
        self._requests[index] = _Request(method, args, self._now())

    def arbitrate(self) -> None:
        """Run at most one arbitration round per timestamp."""
        now = self._now()
        if self._last_arbitration == now:
            return
        if self._last_arbitration is not None:
            delta = now - self._last_arbitration
            if delta > 0 and (self._period is None or delta < self._period):
                self._period = delta
        self._last_arbitration = now
        turnaround = 2 * (self._period or 0)
        eligible = sorted(
            index
            for index, request in self._requests.items()
            if request.arrival < now
            and now - self._last_fetch.get(index, -(1 << 62)) >= turnaround
        )
        if isinstance(self.scheduler, Fcfs):
            self.scheduler.note_waiting(eligible)
        if not eligible:
            return
        winner = self.scheduler.pick(eligible, max(self.num_clients, 1))
        if winner not in eligible:
            raise SharedAccessError(
                f"scheduler {self.scheduler!r} picked ineligible client "
                f"{winner}"
            )
        request = self._requests.pop(winner)
        value = getattr(self.instance, request.method)(*request.args)
        self._results[winner] = _Result(value, now)
        self.grant_history.append((now, winner))

    def fetch(self, index: int) -> Any:
        """Fetch client *index*'s result if complete, else the sentinel."""
        result = self._results.get(index)
        if result is None or self._now() <= result.ready_at:
            return _PENDING
        del self._results[index]
        self._last_fetch[index] = self._now()
        return result.value

    def _watchdog_error(self, index: int, method: str,
                        rounds: int) -> SharedAccessError:
        """Build the watchdog timeout error and drop the stale request.

        The pending request is removed so a testbench that catches the
        error observes a consistent arbiter (no wedged request slot).
        """
        self._requests.pop(index, None)
        port = self.ports[index] if index < len(self.ports) else None
        client = f"{port.name!r} (index {index})" if port else f"index {index}"
        waiting = sorted(i for i in self._requests)
        recent = [winner for _, winner in self.grant_history[-8:]]
        return SharedAccessError(
            f"watchdog: client {client} of shared object {self.name!r} "
            f"waited {rounds} arbitration rounds for {method!r} without "
            f"being served — likely deadlock or starvation (dynamic "
            f"counterpart of analyzer rule OSS303); "
            f"scheduler={self.scheduler!r}, other waiting clients="
            f"{waiting}, recent grants={recent}"
        )

    # ------------------------------------------------------------------
    # conveniences
    # ------------------------------------------------------------------
    def call_direct(self, method: str, *args: Any) -> Any:
        """Bypass arbitration (unit tests of the guarded object only)."""
        return getattr(self.instance, method)(*args)

    def reset(self) -> None:
        """Drop pending traffic and scheduler state (testbench resets)."""
        self._requests.clear()
        self._results.clear()
        self._last_arbitration = None
        self._last_fetch.clear()
        self._period = None
        self.scheduler.reset()

    def __repr__(self) -> str:
        return (
            f"SharedObject({self.name!r}, {type(self.instance).__name__}, "
            f"{self.scheduler!r}, clients={self.num_clients})"
        )
