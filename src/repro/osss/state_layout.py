"""Object state ↔ flat bit-vector mapping (paper §8).

The OSSS synthesizer maps *"the data members of a class instance … to a
single bit vector"* that *"stays where it has been declared"* and rewrites
member access into part-selects of that vector (Fig. 7: ``sc_biguint<4>
_this_``).  :class:`StateLayout` is that mapping: member name → (offset,
spec) with members packed LSB-first in declaration order, inherited members
first.

The same layout drives three places, which is what makes claim R3 (zero
resolution overhead) checkable:

* the synthesizer's lowering of ``self.member`` into ``_this_`` slices,
* the equivalence tests packing live simulation objects,
* the generated readable intermediate code (Fig. 7/8).
"""

from __future__ import annotations

from typing import Any

from repro.osss.hwclass import HwClass
from repro.types.integer import Unsigned
from repro.types.spec import TypeSpec


class FieldSlot:
    """Placement of one data member inside the packed state vector."""

    __slots__ = ("name", "spec", "offset")

    def __init__(self, name: str, spec: TypeSpec, offset: int) -> None:
        self.name = name
        self.spec = spec
        self.offset = offset

    @property
    def width(self) -> int:
        """Width of the member in bits."""
        return self.spec.width

    @property
    def msb(self) -> int:
        """Index of the member's most significant bit in the vector."""
        return self.offset + self.spec.width - 1

    def __repr__(self) -> str:
        return f"FieldSlot({self.name}[{self.msb}:{self.offset}])"


class StateLayout:
    """The packed bit-vector layout of a hardware class."""

    _cache: dict[type, "StateLayout"] = {}

    def __init__(self, cls: type) -> None:
        if not (isinstance(cls, type) and issubclass(cls, HwClass)):
            raise TypeError(f"{cls!r} is not a HwClass subclass")
        self.cls = cls
        self.slots: dict[str, FieldSlot] = {}
        offset = 0
        for name, spec in cls.full_layout().items():
            self.slots[name] = FieldSlot(name, spec, offset)
            offset += spec.width
        self.total_width = max(offset, 1)

    @classmethod
    def of(cls, hw_cls: type) -> "StateLayout":
        """Memoized layout lookup for *hw_cls*."""
        layout = cls._cache.get(hw_cls)
        if layout is None:
            layout = StateLayout(hw_cls)
            cls._cache[hw_cls] = layout
        return layout

    # ------------------------------------------------------------------
    # packing
    # ------------------------------------------------------------------
    def pack(self, instance: HwClass) -> Unsigned:
        """Pack a live object's members into the flat state vector."""
        if not isinstance(instance, self.cls):
            raise TypeError(
                f"cannot pack {type(instance).__name__} with the layout of "
                f"{self.cls.__name__}"
            )
        raw = 0
        members = instance.hw_members()
        for name, slot in self.slots.items():
            raw |= slot.spec.to_raw(members[name]) << slot.offset
        return Unsigned(self.total_width, raw)

    def unpack(self, vector: "Unsigned | int") -> HwClass:
        """Rebuild an object (bypassing the constructor) from the vector."""
        raw = int(vector) if not isinstance(vector, Unsigned) else vector.raw
        instance = self.cls.__new__(self.cls)
        object.__setattr__(instance, "_member_specs", self.cls.full_layout())
        members = {}
        for name, slot in self.slots.items():
            field_raw = (raw >> slot.offset) & ((1 << slot.width) - 1)
            members[name] = slot.spec.from_raw(field_raw)
        object.__setattr__(instance, "_members", members)
        return instance

    def field_raw(self, vector: "Unsigned | int", name: str) -> int:
        """Extract one member's raw bits from a packed vector."""
        slot = self.slots[name]
        raw = int(vector) if not isinstance(vector, Unsigned) else vector.raw
        return (raw >> slot.offset) & ((1 << slot.width) - 1)

    # ------------------------------------------------------------------
    # reports
    # ------------------------------------------------------------------
    def describe(self) -> str:
        """Human-readable layout table (used in generated code comments)."""
        lines = [f"state vector of {self.cls.__name__}: "
                 f"{self.total_width} bit(s)"]
        for name, slot in self.slots.items():
            lines.append(
                f"  [{slot.msb}:{slot.offset}] {name} : {slot.spec.describe()}"
            )
        return "\n".join(lines)

    def __repr__(self) -> str:
        return f"StateLayout({self.cls.__name__}, {self.total_width} bits)"


def pack_object(instance: HwClass) -> Unsigned:
    """Convenience: pack *instance* using its class layout."""
    return StateLayout.of(type(instance)).pack(instance)


def unpack_object(cls: type, vector: "Unsigned | int") -> HwClass:
    """Convenience: unpack *vector* as an instance of *cls*."""
    return StateLayout.of(cls).unpack(vector)
