"""Synthesizable polymorphism (paper §6, §8).

A :class:`PolyVar` is polymorphic storage declared against a base hardware
class: it can hold any registered concrete subclass and dispatches method
calls to the stored object's overrides — *"to call different operations
through the same interface on different objects"*, the paper's ALU example.

Synthesis lowers a ``PolyVar`` to a **tag** (``ceil(log2(n))`` bits
selecting the dynamic class) plus a state vector sized for the *largest*
subclass; a virtual call becomes a tag-selected multiplexer over the inlined
method bodies — §8: *"In case of polymorphism, multiplexers are being
inserted to select the function and object."*  The simulation model below
keeps exactly the information the hardware has (tag + state), so behaviour
matches the generated netlist bit for bit.
"""

from __future__ import annotations

import math
from typing import Any, Callable, Sequence

from repro.osss.hwclass import HwClass, HwClassError, registry
from repro.osss.state_layout import StateLayout


class PolyVar:
    """Polymorphic object storage with a fixed set of dynamic classes.

    Parameters
    ----------
    base:
        The common base :class:`HwClass`; virtual calls use its interface.
    subclasses:
        The concrete classes this variable may hold, in tag order.  Defaults
        to every registered concrete subclass of *base* at declaration time
        — pass an explicit list in synthesizable designs so tags do not
        depend on import order.
    init:
        Optional initial object; defaults to a default-constructed instance
        of the first subclass.
    """

    def __init__(
        self,
        base: type,
        subclasses: Sequence[type] | None = None,
        init: HwClass | None = None,
    ) -> None:
        if not (isinstance(base, type) and issubclass(base, HwClass)):
            raise TypeError("PolyVar base must be a HwClass subclass")
        self.base = base
        if subclasses is None:
            subclasses = registry.concrete_subclasses(base)
        if not subclasses:
            raise HwClassError(
                f"PolyVar({base.__name__}) has no concrete subclasses"
            )
        for cls in subclasses:
            if not issubclass(cls, base):
                raise HwClassError(
                    f"{cls.__name__} is not a subclass of {base.__name__}"
                )
        self.subclasses = tuple(subclasses)
        self._current: HwClass = init if init is not None else self.subclasses[0]()
        if type(self._current) not in self.subclasses:
            raise HwClassError(
                f"initial object {type(self._current).__name__} is not in "
                "the declared subclass set"
            )

    # ------------------------------------------------------------------
    # hardware geometry
    # ------------------------------------------------------------------
    @property
    def tag_width(self) -> int:
        """Bits needed to encode the dynamic class."""
        return max(1, math.ceil(math.log2(len(self.subclasses))))

    @property
    def state_width(self) -> int:
        """Bits of the shared state vector (largest subclass)."""
        return max(StateLayout.of(cls).total_width for cls in self.subclasses)

    @property
    def total_width(self) -> int:
        """Tag plus state — the full storage cost of the variable."""
        return self.tag_width + self.state_width

    @property
    def tag(self) -> int:
        """Current dynamic-class tag."""
        return self.subclasses.index(type(self._current))

    # ------------------------------------------------------------------
    # object access
    # ------------------------------------------------------------------
    @property
    def current(self) -> HwClass:
        """The currently stored object."""
        return self._current

    def assign(self, obj: HwClass) -> None:
        """Store *obj* (value semantics; the object is copied)."""
        if type(obj) not in self.subclasses:
            raise HwClassError(
                f"cannot assign {type(obj).__name__}; PolyVar accepts "
                f"{[c.__name__ for c in self.subclasses]}"
            )
        self._current = obj.copy()

    def call(self, method: str, *args: Any) -> Any:
        """Virtual dispatch: invoke *method* on the stored object."""
        if not hasattr(self.base, method):
            raise AttributeError(
                f"{self.base.__name__} interface has no method {method!r}"
            )
        return getattr(self._current, method)(*args)

    def __getattr__(self, name: str) -> Callable[..., Any]:
        # Sugar: poly.execute(a, b) == poly.call("execute", a, b).
        if name.startswith("_") or not hasattr(self.base, name):
            raise AttributeError(name)

        def dispatch(*args: Any) -> Any:
            return self.call(name, *args)

        return dispatch

    # ------------------------------------------------------------------
    # packed representation (what the netlist stores)
    # ------------------------------------------------------------------
    def pack(self) -> tuple[int, int]:
        """``(tag, state_raw)`` exactly as the generated hardware holds it."""
        state = StateLayout.of(type(self._current)).pack(self._current)
        return self.tag, state.raw

    def load(self, tag: int, state_raw: int) -> None:
        """Restore from a packed representation."""
        if not 0 <= tag < len(self.subclasses):
            raise ValueError(f"tag {tag} out of range")
        cls = self.subclasses[tag]
        self._current = StateLayout.of(cls).unpack(state_raw)

    def __repr__(self) -> str:
        return (
            f"PolyVar({self.base.__name__}, tag={self.tag}, "
            f"current={self._current!r})"
        )
