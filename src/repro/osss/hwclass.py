"""Synthesizable hardware classes (paper §6, Fig. 2–5).

:class:`HwClass` is the OSSS hardware-class base.  A subclass declares its
data members in a ``layout()`` classmethod (name → :class:`TypeSpec`),
defines an optional synthesizable constructor ``construct()`` and ordinary
Python methods; it then behaves like a C++ class in the paper's listings:

* instantiable inside a module or a process;
* full member access control by Python convention (``_private`` members);
* inheritance — derived layouts extend base layouts, methods override;
* operator overloading (``__eq__`` and friends map to ``operator ==``);
* usable with :func:`repro.osss.template.template` parameters.

For synthesis the data members are packed into a single flat bit vector
(:mod:`repro.osss.state_layout`) and each method is resolved into a
non-member function over that vector, exactly the resolution shown in the
paper's Fig. 7/8.  For simulation the members simply live in a dict and
methods run as plain Python — the OSSS promise that the same source both
simulates and synthesizes.
"""

from __future__ import annotations

from typing import Any, Iterator

from repro.osss.template import is_generic
from repro.types.spec import TypeSpec


class HwClassError(TypeError):
    """Raised for invalid hardware-class declarations or member access."""


class _HwClassRegistry:
    """Registry of all hardware classes — the seed of the 'design library'.

    Tracks declaration order (giving polymorphism tags a deterministic
    encoding) and the concrete-subclass sets used by
    :class:`repro.osss.polymorph.PolyVar`.
    """

    def __init__(self) -> None:
        self._classes: list[type] = []

    def register(self, cls: type) -> None:
        self._classes.append(cls)

    def all_classes(self) -> tuple[type, ...]:
        """Every registered hardware class, in declaration order."""
        return tuple(self._classes)

    def concrete_subclasses(self, base: type) -> tuple[type, ...]:
        """Concrete (instantiable) registered subclasses of *base*.

        Includes *base* itself when concrete.  Template specializations are
        included only if they have been created (instantiated somewhere).
        """
        found = []
        for cls in self._classes:
            if issubclass(cls, base) and not is_generic(cls) \
                    and not cls.__dict__.get("abstract", False):
                found.append(cls)
        return tuple(found)


#: The process-wide hardware class registry.
registry = _HwClassRegistry()


class HwClass:
    """Base class for synthesizable hardware objects.

    Subclasses override:

    ``layout()``
        Classmethod returning an ordered ``dict`` of member name →
        :class:`~repro.types.spec.TypeSpec`.  Template parameters are
        available as class attributes, so widths may depend on them.
    ``construct()``
        Optional synthesizable constructor; runs at instantiation with all
        members zero-initialized.
    ``abstract``
        Class attribute; set True for interface-only bases that only serve
        as polymorphic handles.
    """

    #: Interface-only classes set this True and get no polymorphism tag.
    abstract = False

    def __init_subclass__(cls, **kwargs: Any) -> None:
        super().__init_subclass__(**kwargs)
        registry.register(cls)

    @classmethod
    def layout(cls) -> dict[str, TypeSpec]:
        """Member declarations; base implementation declares none."""
        return {}

    @classmethod
    def full_layout(cls) -> dict[str, TypeSpec]:
        """Layout including inherited members, bases first (C++ order).

        A derived class may not redeclare a base member.
        """
        merged: dict[str, TypeSpec] = {}
        for klass in reversed(cls.__mro__):
            layout_fn = vars(klass).get("layout")
            if layout_fn is None:
                continue
            # Bind the defining class's layout() to the *most derived* class
            # so member widths see bound template parameters.
            own = layout_fn.__get__(None, cls)()
            for name, spec in own.items():
                if not isinstance(spec, TypeSpec):
                    raise HwClassError(
                        f"{klass.__name__}.layout()[{name!r}] must be a "
                        f"TypeSpec, got {type(spec).__name__}"
                    )
                if name in merged and merged[name] != spec:
                    raise HwClassError(
                        f"{klass.__name__} redeclares member {name!r} with a "
                        "different type"
                    )
                merged[name] = spec
            # vars(klass)["layout"] sees the most-derived override when the
            # subclass calls super().layout(); stop merging duplicates by
            # only visiting classes that *define* layout.
        return merged

    def __init__(self) -> None:
        cls = type(self)
        if is_generic(cls):
            raise HwClassError(
                f"{cls.__name__} is a generic template; instantiate a "
                f"specialization, e.g. {cls.__name__}[...]()"
            )
        if cls.__dict__.get("abstract", False):
            raise HwClassError(f"{cls.__name__} is abstract")
        members = cls.full_layout()
        object.__setattr__(self, "_member_specs", members)
        object.__setattr__(
            self, "_members", {name: spec.default() for name, spec in members.items()}
        )
        self.construct()

    def construct(self) -> None:
        """Synthesizable constructor body; default does nothing."""

    # ------------------------------------------------------------------
    # member access
    # ------------------------------------------------------------------
    def __getattr__(self, name: str) -> Any:
        # Only called when normal lookup fails: members live in _members.
        if name.startswith("_"):
            raise AttributeError(name)
        members = self.__dict__.get("_members")
        if members is not None and name in members:
            return members[name]
        raise AttributeError(
            f"{type(self).__name__} has no member {name!r} "
            f"(declared: {sorted(self._member_specs)})"
        )

    def __setattr__(self, name: str, value: Any) -> None:
        if name.startswith("_"):
            object.__setattr__(self, name, value)
            return
        specs = self.__dict__.get("_member_specs")
        if specs is None or name not in specs:
            raise HwClassError(
                f"{type(self).__name__} has no declared member {name!r}; "
                "declare it in layout()"
            )
        spec = specs[name]
        if type(value) is spec._expected:
            if spec.kind != "bit" and value.width != spec.width:
                spec.check(value)
        elif isinstance(value, bool):
            value = spec.from_raw(int(value))
        elif isinstance(value, int):
            value = spec.from_raw(value & ((1 << spec.width) - 1))
        else:
            spec.check(value)
        self.__dict__["_members"][name] = value

    # ------------------------------------------------------------------
    # introspection (tracing, state packing, synthesis)
    # ------------------------------------------------------------------
    def hw_members(self) -> dict[str, Any]:
        """Current member values in declaration order (used by sc_trace)."""
        return dict(self._members)

    @classmethod
    def member_specs(cls) -> dict[str, TypeSpec]:
        """Alias of :meth:`full_layout` for external tooling."""
        return cls.full_layout()

    def copy(self) -> "HwClass":
        """A value copy (objects transferred via signals are values)."""
        clone = type(self).__new__(type(self))
        object.__setattr__(clone, "_member_specs", dict(self._member_specs))
        object.__setattr__(clone, "_members", dict(self._members))
        return clone

    def __eq__(self, other: object) -> bool:
        """Default whole-object comparison (overloadable, paper Fig. 11)."""
        if type(other) is not type(self):
            return NotImplemented
        return self._members == other._members

    def __hash__(self) -> int:
        return hash((type(self).__name__, tuple(
            (k, repr(v)) for k, v in self._members.items()
        )))

    def __iter__(self) -> Iterator[tuple[str, Any]]:
        return iter(self._members.items())

    def __repr__(self) -> str:
        inner = ", ".join(f"{k}={v}" for k, v in self._members.items())
        return f"{type(self).__name__}({inner})"
