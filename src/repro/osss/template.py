"""Synthesizable templates (paper §6, Fig. 3–4).

The ``@template`` decorator reproduces C++ class templates for hardware
classes *and* modules: ``SyncRegister[4, 0]`` creates (and memoizes) a
specialization with the template parameters bound as class attributes,
mirroring the paper's ``SyncRegister< 4, 0 > data_sync_reg;``.

Template parameters may be integers, booleans, strings, type specs or —
matching OSSS's "even complex types like classes" — other hardware classes.
Each distinct argument tuple yields exactly one specialized class, so
specializations compare identical by ``is`` and the synthesizer resolves
each specialization once.
"""

from __future__ import annotations

from typing import Any


class TemplateError(TypeError):
    """Raised for bad template usage (missing/excess/duplicate arguments)."""


def _spec_name(value: Any) -> str:
    """A readable suffix fragment for a template argument."""
    if isinstance(value, type):
        return value.__name__
    return str(value).replace(" ", "").replace(".", "_")


def template(*param_names: str, **defaults: Any):
    """Class decorator declaring template parameters.

    Parameters
    ----------
    param_names:
        Names of required template parameters, in positional order.
    defaults:
        Optional trailing parameters with default values.

    The decorated class gains:

    * ``Cls[args]`` — create/fetch the specialization (``__class_getitem__``);
    * ``Cls.specialize(**kwargs)`` — keyword form;
    * ``is_generic`` / ``template_args`` attributes used by the analyzer.

    A generic class with unbound required parameters cannot be instantiated.
    """
    ordered = list(param_names) + list(defaults)
    if len(set(ordered)) != len(ordered):
        raise TemplateError(f"duplicate template parameter in {ordered}")

    def decorate(cls: type) -> type:
        cls._template_params_ = tuple(ordered)
        cls._template_required_ = tuple(param_names)
        cls._template_defaults_ = dict(defaults)
        cls._template_base_ = cls
        cls._template_args_ = None  # generic
        cls._template_cache_ = {}

        def class_getitem(inner_cls, args: Any) -> type:
            if not isinstance(args, tuple):
                args = (args,)
            return _specialize(inner_cls, args)

        cls.__class_getitem__ = classmethod(
            lambda inner_cls, args: class_getitem(inner_cls, args)
        )
        cls.specialize = classmethod(_specialize_kw)
        return cls

    return decorate


def _specialize(cls: type, args: tuple) -> type:
    base = cls._template_base_
    params = base._template_params_
    required = base._template_required_
    if len(args) < len(required):
        raise TemplateError(
            f"{base.__name__} needs {len(required)} template argument(s) "
            f"{required}, got {len(args)}"
        )
    if len(args) > len(params):
        raise TemplateError(
            f"{base.__name__} takes at most {len(params)} template "
            f"argument(s), got {len(args)}"
        )
    binding = dict(base._template_defaults_)
    for name, value in zip(params, args):
        binding[name] = value
    key = tuple(binding[name] for name in params)
    cache = base._template_cache_
    if key in cache:
        return cache[key]
    suffix = "_".join(_spec_name(binding[name]) for name in params)
    namespace = dict(binding)
    namespace["_template_args_"] = key
    namespace["_template_base_"] = base
    specialized = type(f"{base.__name__}_{suffix}", (base,), namespace)
    specialized.__module__ = base.__module__
    specialized.__qualname__ = f"{base.__qualname__}[{suffix}]"
    cache[key] = specialized
    return specialized


def _specialize_kw(cls: type, **kwargs: Any) -> type:
    base = cls._template_base_
    params = base._template_params_
    unknown = set(kwargs) - set(params)
    if unknown:
        raise TemplateError(
            f"{base.__name__} has no template parameter(s) {sorted(unknown)}"
        )
    binding = dict(base._template_defaults_)
    binding.update(kwargs)
    missing = [p for p in base._template_required_ if p not in binding]
    if missing:
        raise TemplateError(
            f"{base.__name__} missing template argument(s) {missing}"
        )
    args = tuple(binding[name] for name in params if name in binding)
    return _specialize(base, args)


def is_template(cls: type) -> bool:
    """True if *cls* was declared with :func:`template`."""
    return hasattr(cls, "_template_params_")


def is_generic(cls: type) -> bool:
    """True if *cls* is an unspecialized template (cannot instantiate)."""
    return is_template(cls) and cls._template_args_ is None


def template_binding(cls: type) -> dict[str, Any]:
    """Mapping of template parameter name to bound value for *cls*."""
    if not is_template(cls):
        return {}
    if is_generic(cls):
        return dict(cls._template_defaults_)
    return dict(zip(cls._template_params_, cls._template_args_))
