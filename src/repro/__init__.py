"""PyOSSS — an object-oriented synthesizable hardware design methodology.

Reproduction of N. Bannow and K. Haug, "Evaluation of an Object-Oriented
Hardware Design Methodology for Automotive Applications" (DATE 2004): the
OSSS object-oriented hardware layer, a SystemC-like simulation kernel, an
analyzer/synthesizer down to RTL and gates, the camera Exposure Control
Unit case study in both the OSSS and the hand-written "VHDL" flow, and the
evaluation harness reproducing the paper's Results section.

See DESIGN.md for the system inventory and EXPERIMENTS.md for the
paper-vs-measured record.
"""

__version__ = "1.0.0"
