"""Fixed-width bit vectors.

``BitVector`` is the Python stand-in for SystemC's ``sc_bv<W>``: an immutable
vector of two-valued bits with a compile-time-fixed width.  Bit 0 is the least
significant bit, matching SystemC/Verilog numbering.  Range selections are
*inclusive* and written ``vector.range(hi, lo)``, exactly like
``sc_bv::range`` in the paper's Fig. 7 listing.

All mutating-looking operations (``with_bit``, ``with_range``) return new
vectors; values held in signals or object state are never aliased.
"""

from __future__ import annotations

from typing import Iterator

from repro.types.logic import Bit


def _mask(width: int) -> int:
    return (1 << width) - 1


class BitVector:
    """An immutable fixed-width vector of two-valued bits.

    Parameters
    ----------
    width:
        Number of bits; must be positive.
    value:
        Initial contents.  Accepts ``int`` (masked to *width* bits; negative
        values are two's-complement encoded), another ``BitVector`` of equal
        width, a ``Bit`` (width must be 1), or a ``str`` of ``'0'``/``'1'``
        characters written MSB-first.
    """

    __slots__ = ("_width", "_value")

    def __init__(self, width: int, value: "int | str | Bit | BitVector" = 0) -> None:
        if width <= 0:
            raise ValueError(f"BitVector width must be positive, got {width}")
        self._width = width
        if isinstance(value, BitVector):
            if value._width != width:
                raise ValueError(
                    f"width mismatch: BitVector({value._width}) -> BitVector({width})"
                )
            self._value = value._value
        elif isinstance(value, Bit):
            if width != 1:
                raise ValueError("a Bit can only initialize a 1-bit vector")
            self._value = value.value
        elif isinstance(value, str):
            if len(value) != width or set(value) - {"0", "1"}:
                raise ValueError(f"bad literal {value!r} for BitVector({width})")
            self._value = int(value, 2)
        elif isinstance(value, int):
            self._value = value & _mask(width)
        else:
            raise TypeError(f"cannot build BitVector from {type(value).__name__}")

    # ------------------------------------------------------------------
    # basic accessors
    # ------------------------------------------------------------------
    @property
    def width(self) -> int:
        """The fixed number of bits in the vector."""
        return self._width

    @property
    def value(self) -> int:
        """The vector contents interpreted as an unsigned integer."""
        return self._value

    def __int__(self) -> int:
        return self._value

    def __index__(self) -> int:
        return self._value

    def __len__(self) -> int:
        return self._width

    def __bool__(self) -> bool:
        return self._value != 0

    def bit(self, index: int) -> Bit:
        """Return bit *index* (0 = LSB) as a :class:`Bit`."""
        if not 0 <= index < self._width:
            raise IndexError(f"bit {index} out of range for BitVector({self._width})")
        return Bit((self._value >> index) & 1)

    def __getitem__(self, index: int) -> Bit:
        """``vector[i]`` is shorthand for :meth:`bit`."""
        if isinstance(index, slice):
            raise TypeError(
                "use .range(hi, lo) for inclusive HDL-style part selects"
            )
        if index < 0:
            index += self._width
        return self.bit(index)

    def range(self, hi: int, lo: int) -> "BitVector":
        """Inclusive part-select ``[hi:lo]``, like ``sc_bv::range``."""
        if hi < lo:
            raise ValueError(f"range({hi}, {lo}): hi must be >= lo")
        if not (0 <= lo and hi < self._width):
            raise IndexError(
                f"range({hi}, {lo}) out of bounds for BitVector({self._width})"
            )
        width = hi - lo + 1
        return BitVector(width, (self._value >> lo) & _mask(width))

    def __iter__(self) -> Iterator[Bit]:
        """Iterate bits LSB-first."""
        for i in range(self._width):
            yield self.bit(i)

    # ------------------------------------------------------------------
    # functional updates
    # ------------------------------------------------------------------
    def with_bit(self, index: int, bit: "Bit | int") -> "BitVector":
        """Return a copy with bit *index* replaced."""
        if not 0 <= index < self._width:
            raise IndexError(f"bit {index} out of range for BitVector({self._width})")
        b = int(Bit(bit))
        cleared = self._value & ~(1 << index)
        return BitVector(self._width, cleared | (b << index))

    def with_range(self, hi: int, lo: int, value: "BitVector | int") -> "BitVector":
        """Return a copy with the inclusive range ``[hi:lo]`` replaced."""
        if hi < lo:
            raise ValueError(f"with_range({hi}, {lo}): hi must be >= lo")
        if not (0 <= lo and hi < self._width):
            raise IndexError(
                f"with_range({hi}, {lo}) out of bounds for BitVector({self._width})"
            )
        width = hi - lo + 1
        if isinstance(value, BitVector):
            if value.width != width:
                raise ValueError(
                    f"with_range({hi}, {lo}) needs {width} bits, got {value.width}"
                )
            bits = value.value
        else:
            bits = int(value) & _mask(width)
        cleared = self._value & ~(_mask(width) << lo)
        return BitVector(self._width, cleared | (bits << lo))

    # ------------------------------------------------------------------
    # bitwise operators
    # ------------------------------------------------------------------
    def _coerce(self, other: "BitVector | int") -> "BitVector":
        if isinstance(other, BitVector):
            if other._width != self._width:
                raise ValueError(
                    f"width mismatch: BitVector({self._width}) vs "
                    f"BitVector({other._width})"
                )
            return other
        if isinstance(other, int):
            return BitVector(self._width, other)
        raise TypeError(f"cannot combine BitVector with {type(other).__name__}")

    def __invert__(self) -> "BitVector":
        return BitVector(self._width, ~self._value)

    def __and__(self, other: "BitVector | int") -> "BitVector":
        return BitVector(self._width, self._value & self._coerce(other)._value)

    __rand__ = __and__

    def __or__(self, other: "BitVector | int") -> "BitVector":
        return BitVector(self._width, self._value | self._coerce(other)._value)

    __ror__ = __or__

    def __xor__(self, other: "BitVector | int") -> "BitVector":
        return BitVector(self._width, self._value ^ self._coerce(other)._value)

    __rxor__ = __xor__

    def __lshift__(self, amount: int) -> "BitVector":
        """Width-preserving logical shift left."""
        if amount < 0:
            raise ValueError("shift amount must be non-negative")
        return BitVector(self._width, self._value << amount)

    def __rshift__(self, amount: int) -> "BitVector":
        """Width-preserving logical shift right."""
        if amount < 0:
            raise ValueError("shift amount must be non-negative")
        return BitVector(self._width, self._value >> amount)

    # ------------------------------------------------------------------
    # reductions, concatenation, conversion
    # ------------------------------------------------------------------
    def reduce_and(self) -> Bit:
        """AND of all bits."""
        return Bit(self._value == _mask(self._width))

    def reduce_or(self) -> Bit:
        """OR of all bits."""
        return Bit(self._value != 0)

    def reduce_xor(self) -> Bit:
        """XOR (parity) of all bits."""
        return Bit(bin(self._value).count("1") & 1)

    def concat(self, low: "BitVector | Bit") -> "BitVector":
        """Concatenate with ``low`` as the less-significant part."""
        low_width = 1 if isinstance(low, Bit) else low.width
        low_value = int(low)
        return BitVector(
            self._width + low_width, (self._value << low_width) | low_value
        )

    def resized(self, width: int) -> "BitVector":
        """Zero-extend or truncate (keeping the LSBs) to *width* bits."""
        return BitVector(width, self._value)

    def to_unsigned(self) -> "Unsigned":
        """Reinterpret the bits as an :class:`repro.types.integer.Unsigned`."""
        from repro.types.integer import Unsigned

        return Unsigned(self._width, self._value)

    def to_signed(self) -> "Signed":
        """Reinterpret the bits as a two's-complement ``Signed``."""
        from repro.types.integer import Signed

        return Signed(self._width, self._value, _raw=True)

    # ------------------------------------------------------------------
    # equality / representation
    # ------------------------------------------------------------------
    def __eq__(self, other: object) -> bool:
        if isinstance(other, BitVector):
            return self._width == other._width and self._value == other._value
        if isinstance(other, int):
            return self._value == (other & _mask(self._width))
        return NotImplemented

    def __hash__(self) -> int:
        return hash(("BitVector", self._width, self._value))

    def to_binary(self) -> str:
        """MSB-first string of ``'0'``/``'1'`` characters."""
        return format(self._value, f"0{self._width}b")

    def __repr__(self) -> str:
        return f"BitVector({self._width}, 0b{self.to_binary()})"

    def __str__(self) -> str:
        return self.to_binary()


def concat(*parts: "BitVector | Bit") -> BitVector:
    """Concatenate *parts* MSB-first into a single :class:`BitVector`."""
    if not parts:
        raise ValueError("concat needs at least one part")
    total = 0
    width = 0
    for part in parts:
        part_width = 1 if isinstance(part, Bit) else part.width
        total = (total << part_width) | int(part)
        width += part_width
    return BitVector(width, total)
