"""Single-bit logic values.

``Bit`` is the Python stand-in for SystemC's ``sc_bit``: a two-valued,
immutable logic bit.  Signals carrying control lines (clock enables,
ready/valid, I2C SDA/SCL, ...) use ``Bit`` rather than raw ``bool`` so that
widths, tracing and synthesis type inference treat them uniformly with the
vector types in :mod:`repro.types.bitvector`.
"""

from __future__ import annotations


class Bit:
    """An immutable two-valued logic bit.

    Accepts ``0``/``1``, ``bool`` or another ``Bit`` as initializer.  All
    logical operators return new ``Bit`` instances; ``Bit`` never coerces
    silently to an integer wider than one bit.
    """

    __slots__ = ("_value",)

    def __init__(self, value: "Bit | bool | int" = 0) -> None:
        if isinstance(value, Bit):
            self._value = value._value
        elif isinstance(value, bool):
            self._value = int(value)
        elif isinstance(value, int):
            if value not in (0, 1):
                raise ValueError(f"Bit value must be 0 or 1, got {value!r}")
            self._value = value
        else:
            raise TypeError(f"cannot build Bit from {type(value).__name__}")

    @property
    def value(self) -> int:
        """The bit as an ``int`` (0 or 1)."""
        return self._value

    @property
    def width(self) -> int:
        """Bit width; always 1.  Present for symmetry with vector types."""
        return 1

    def __bool__(self) -> bool:
        return bool(self._value)

    def __int__(self) -> int:
        return self._value

    def __index__(self) -> int:
        return self._value

    def __invert__(self) -> "Bit":
        return Bit(1 - self._value)

    def _coerce(self, other: "Bit | bool | int") -> "Bit":
        if isinstance(other, Bit):
            return other
        return Bit(other)

    def __and__(self, other: "Bit | bool | int") -> "Bit":
        return Bit(self._value & self._coerce(other)._value)

    __rand__ = __and__

    def __or__(self, other: "Bit | bool | int") -> "Bit":
        return Bit(self._value | self._coerce(other)._value)

    __ror__ = __or__

    def __xor__(self, other: "Bit | bool | int") -> "Bit":
        return Bit(self._value ^ self._coerce(other)._value)

    __rxor__ = __xor__

    def __eq__(self, other: object) -> bool:
        if isinstance(other, Bit):
            return self._value == other._value
        if isinstance(other, (bool, int)):
            return self._value == int(other)
        return NotImplemented

    def __hash__(self) -> int:
        return hash(("Bit", self._value))

    def __repr__(self) -> str:
        return f"Bit({self._value})"

    def __str__(self) -> str:
        return str(self._value)


#: Convenience constants mirroring SystemC's SC_LOGIC_0 / SC_LOGIC_1.
LOW = Bit(0)
HIGH = Bit(1)
