"""Fixed-point numbers with automatic format resolution.

The paper (§6) mentions *"prototypic support of automated fixed point number
resolution"* in OSSS.  ``FixedPoint`` reproduces that prototype: a signed
fixed-point value described by ``(int_bits, frac_bits)`` whose arithmetic
operators automatically compute the exact result format, so a designer never
aligns binary points by hand:

* addition / subtraction: ``(max(ia, ib) + 1, max(fa, fb))`` — one carry bit,
  fractional parts aligned to the finer resolution;
* multiplication: ``(ia + ib, fa + fb)`` — exact product format.

Values are stored as scaled integers (no floating point in the datapath), so
fixed-point simulation results are bit-reproducible and synthesizable: the
synthesizer lowers a ``FixedPoint(i, f)`` carrier to a ``Signed(i + f)``
register and the alignment shifts become wiring.
"""

from __future__ import annotations

from fractions import Fraction

from repro.types.integer import Signed


class FixedPoint:
    """A signed fixed-point number with automatic format resolution.

    Parameters
    ----------
    int_bits:
        Number of integer bits, including the sign bit.  Must be >= 1.
    frac_bits:
        Number of fractional bits.  Must be >= 0.
    value:
        Numeric initializer (``int``, ``float``, ``Fraction`` or another
        ``FixedPoint``).  The value is quantized by truncation toward
        negative infinity (hardware right-shift behaviour) and wraps
        modularly if it exceeds the representable range.
    """

    __slots__ = ("_int_bits", "_frac_bits", "_stored")

    def __init__(self, int_bits: int, frac_bits: int,
                 value: "int | float | Fraction | FixedPoint" = 0) -> None:
        if int_bits < 1:
            raise ValueError("FixedPoint needs at least 1 integer (sign) bit")
        if frac_bits < 0:
            raise ValueError("frac_bits must be non-negative")
        self._int_bits = int_bits
        self._frac_bits = frac_bits
        if isinstance(value, FixedPoint):
            scaled = value._stored.value
            shift = frac_bits - value._frac_bits
            if shift >= 0:
                scaled <<= shift
            else:
                scaled >>= -shift
        elif isinstance(value, (int, float, Fraction)):
            exact = Fraction(value) * (1 << frac_bits)
            # Truncate toward negative infinity, like an arithmetic shift.
            scaled = exact.numerator // exact.denominator
        else:
            raise TypeError(f"cannot build FixedPoint from {type(value).__name__}")
        self._stored = Signed(int_bits + frac_bits, scaled)

    # ------------------------------------------------------------------
    # accessors
    # ------------------------------------------------------------------
    @property
    def int_bits(self) -> int:
        """Integer bits, including sign."""
        return self._int_bits

    @property
    def frac_bits(self) -> int:
        """Fractional bits."""
        return self._frac_bits

    @property
    def width(self) -> int:
        """Total storage width in bits."""
        return self._int_bits + self._frac_bits

    @property
    def stored(self) -> Signed:
        """The scaled-integer representation (what synthesis registers)."""
        return self._stored

    @property
    def value(self) -> Fraction:
        """The exact numeric value as a :class:`fractions.Fraction`."""
        return Fraction(self._stored.value, 1 << self._frac_bits)

    def __float__(self) -> float:
        return float(self.value)

    # ------------------------------------------------------------------
    # automatic-resolution arithmetic
    # ------------------------------------------------------------------
    @staticmethod
    def add_format(a: "FixedPoint", b: "FixedPoint") -> tuple[int, int]:
        """Result format of ``a + b`` / ``a - b``."""
        return max(a._int_bits, b._int_bits) + 1, max(a._frac_bits, b._frac_bits)

    @staticmethod
    def mul_format(a: "FixedPoint", b: "FixedPoint") -> tuple[int, int]:
        """Result format of ``a * b``."""
        return a._int_bits + b._int_bits, a._frac_bits + b._frac_bits

    def _coerce(self, other: "FixedPoint | int | float | Fraction") -> "FixedPoint":
        if isinstance(other, FixedPoint):
            return other
        if isinstance(other, int):
            int_bits = max(2, other.bit_length() + 1)
            return FixedPoint(int_bits, 0, other)
        if isinstance(other, (float, Fraction)):
            # Give literals a generous but bounded prototype format.
            return FixedPoint(16, 16, other)
        raise TypeError(f"cannot combine FixedPoint with {type(other).__name__}")

    def __add__(self, other: "FixedPoint | int | float") -> "FixedPoint":
        o = self._coerce(other)
        int_bits, frac_bits = self.add_format(self, o)
        return FixedPoint(int_bits, frac_bits, self.value + o.value)

    __radd__ = __add__

    def __sub__(self, other: "FixedPoint | int | float") -> "FixedPoint":
        o = self._coerce(other)
        int_bits, frac_bits = self.add_format(self, o)
        return FixedPoint(int_bits, frac_bits, self.value - o.value)

    def __rsub__(self, other: "int | float") -> "FixedPoint":
        return self._coerce(other).__sub__(self)

    def __mul__(self, other: "FixedPoint | int | float") -> "FixedPoint":
        o = self._coerce(other)
        int_bits, frac_bits = self.mul_format(self, o)
        return FixedPoint(int_bits, frac_bits, self.value * o.value)

    __rmul__ = __mul__

    def __neg__(self) -> "FixedPoint":
        return FixedPoint(self._int_bits + 1, self._frac_bits, -self.value)

    # ------------------------------------------------------------------
    # format control
    # ------------------------------------------------------------------
    def quantized(self, int_bits: int, frac_bits: int) -> "FixedPoint":
        """Explicitly convert to a target format (truncating/wrapping)."""
        return FixedPoint(int_bits, frac_bits, self)

    # ------------------------------------------------------------------
    # comparisons / representation
    # ------------------------------------------------------------------
    def __eq__(self, other: object) -> bool:
        if isinstance(other, FixedPoint):
            return self.value == other.value
        if isinstance(other, (int, float, Fraction)):
            return self.value == Fraction(other)
        return NotImplemented

    def __hash__(self) -> int:
        return hash(("FixedPoint", self.value))

    def __lt__(self, other: "FixedPoint | int | float") -> bool:
        return self.value < self._coerce(other).value

    def __le__(self, other: "FixedPoint | int | float") -> bool:
        return self.value <= self._coerce(other).value

    def __gt__(self, other: "FixedPoint | int | float") -> bool:
        return self.value > self._coerce(other).value

    def __ge__(self, other: "FixedPoint | int | float") -> bool:
        return self.value >= self._coerce(other).value

    def __repr__(self) -> str:
        return (
            f"FixedPoint({self._int_bits}, {self._frac_bits}, "
            f"{float(self.value)!r})"
        )
