"""Fixed-width hardware integers.

``Unsigned`` and ``Signed`` are the Python stand-ins for SystemC's
``sc_biguint<W>`` / ``sc_bigint<W>``.  They carry their width with the value,
wrap modularly like hardware registers, and define *deterministic result
widths* for every operator.  The synthesis type inference in
:mod:`repro.synth.hir` applies exactly the rules implemented here, which is
what makes the generated RTL bit-accurate with respect to simulation
(claim R6 in DESIGN.md).

Result-width rules
------------------
==============  =======================================
operation       result width
==============  =======================================
``+`` ``-``     ``max(wa, wb)`` (modular wrap-around)
``*``           ``wa + wb``
``& | ^``       ``max(wa, wb)``
``<< >>``       width preserving (shifted-out bits lost)
comparisons     :class:`repro.types.logic.Bit`
==============  =======================================

Mixing ``Unsigned`` and ``Signed`` operands raises ``TypeError``; convert
explicitly with :meth:`Unsigned.to_signed` / :meth:`Signed.to_unsigned`.
Plain ``int`` operands are treated as constants of the other operand's width.
"""

from __future__ import annotations

from repro.types.bitvector import BitVector, _mask
from repro.types.logic import Bit


def add_width(wa: int, wb: int) -> int:
    """Result width of ``+`` and ``-``."""
    return max(wa, wb)


def mul_width(wa: int, wb: int) -> int:
    """Result width of ``*``."""
    return wa + wb


def bitwise_width(wa: int, wb: int) -> int:
    """Result width of ``&``, ``|`` and ``^``."""
    return max(wa, wb)


class _FixedWidthInt:
    """Shared machinery of :class:`Unsigned` and :class:`Signed`."""

    __slots__ = ("_width", "_raw")

    #: Set by subclasses: True if the type is two's-complement signed.
    signed = False

    def __init__(self, width: int, value: "int | _FixedWidthInt | BitVector | Bit" = 0,
                 *, _raw: bool = False) -> None:
        if width <= 0:
            raise ValueError(f"{type(self).__name__} width must be positive")
        self._width = width
        if isinstance(value, _FixedWidthInt):
            raw = value._raw
        elif isinstance(value, (BitVector, Bit)):
            raw = int(value)
        elif isinstance(value, int):
            # Numeric and raw initializers coincide after masking: a numeric
            # value wraps modularly, a raw pattern is already in range.  The
            # keyword documents intent at call sites.
            raw = value
        else:
            raise TypeError(
                f"cannot build {type(self).__name__} from {type(value).__name__}"
            )
        self._raw = raw & _mask(width)

    # ------------------------------------------------------------------
    # accessors
    # ------------------------------------------------------------------
    @property
    def width(self) -> int:
        """Number of bits."""
        return self._width

    @property
    def raw(self) -> int:
        """The underlying bit pattern as a non-negative integer."""
        return self._raw

    @property
    def value(self) -> int:
        """The numeric value (sign-interpreted for ``Signed``)."""
        if self.signed and self._raw >> (self._width - 1):
            return self._raw - (1 << self._width)
        return self._raw

    def __int__(self) -> int:
        return self.value

    def __index__(self) -> int:
        return self.value

    def __bool__(self) -> bool:
        return self._raw != 0

    def to_bits(self) -> BitVector:
        """The value as a raw :class:`BitVector` of the same width."""
        return BitVector(self._width, self._raw)

    def bit(self, index: int) -> Bit:
        """Bit *index* of the two's-complement representation (0 = LSB)."""
        if not 0 <= index < self._width:
            raise IndexError(
                f"bit {index} out of range for {type(self).__name__}({self._width})"
            )
        return Bit((self._raw >> index) & 1)

    def __getitem__(self, index: int) -> Bit:
        if isinstance(index, slice):
            raise TypeError("use .range(hi, lo) for inclusive part selects")
        if index < 0:
            index += self._width
        return self.bit(index)

    def range(self, hi: int, lo: int) -> BitVector:
        """Inclusive part-select ``[hi:lo]`` as a :class:`BitVector`."""
        return self.to_bits().range(hi, lo)

    # ------------------------------------------------------------------
    # coercion helpers
    # ------------------------------------------------------------------
    def _coerce(self, other: "int | _FixedWidthInt") -> "_FixedWidthInt":
        cls = type(self)
        if isinstance(other, _FixedWidthInt):
            if other.signed != self.signed:
                raise TypeError(
                    "cannot mix Unsigned and Signed operands; convert explicitly"
                )
            return other
        if isinstance(other, Bit):
            return cls(1, int(other))
        if isinstance(other, BitVector):
            return cls(other.width, other.value, _raw=True)
        if isinstance(other, int):
            if not self.signed and other < 0:
                raise ValueError(
                    f"negative constant {other} used with Unsigned operand"
                )
            return cls(self._width, other)
        raise TypeError(
            f"cannot combine {cls.__name__} with {type(other).__name__}"
        )

    def _make(self, width: int, numeric: int) -> "_FixedWidthInt":
        return type(self)(width, numeric)

    # ------------------------------------------------------------------
    # arithmetic
    # ------------------------------------------------------------------
    def __add__(self, other: "int | _FixedWidthInt") -> "_FixedWidthInt":
        o = self._coerce(other)
        return self._make(add_width(self._width, o._width), self.value + o.value)

    def __radd__(self, other: int) -> "_FixedWidthInt":
        return self._coerce(other).__add__(self)

    def __sub__(self, other: "int | _FixedWidthInt") -> "_FixedWidthInt":
        o = self._coerce(other)
        return self._make(add_width(self._width, o._width), self.value - o.value)

    def __rsub__(self, other: int) -> "_FixedWidthInt":
        return self._coerce(other).__sub__(self)

    def __mul__(self, other: "int | _FixedWidthInt") -> "_FixedWidthInt":
        o = self._coerce(other)
        return self._make(mul_width(self._width, o._width), self.value * o.value)

    def __rmul__(self, other: int) -> "_FixedWidthInt":
        return self._coerce(other).__mul__(self)

    def __floordiv__(self, other: "int | _FixedWidthInt") -> "_FixedWidthInt":
        """Integer division.

        Supported in simulation; the synthesizer only accepts division by
        powers of two (lowered to shifts) — see ``repro.synth.analyzer``.
        Division truncates toward zero, matching hardware dividers.
        """
        o = self._coerce(other)
        if o.value == 0:
            raise ZeroDivisionError("hardware integer division by zero")
        quotient = abs(self.value) // abs(o.value)
        if (self.value < 0) != (o.value < 0):
            quotient = -quotient
        return self._make(self._width, quotient)

    def __mod__(self, other: "int | _FixedWidthInt") -> "_FixedWidthInt":
        o = self._coerce(other)
        if o.value == 0:
            raise ZeroDivisionError("hardware integer modulo by zero")
        remainder = abs(self.value) % abs(o.value)
        if self.value < 0:
            remainder = -remainder
        return self._make(min(self._width, o._width), remainder)

    def __lshift__(self, amount: int) -> "_FixedWidthInt":
        if amount < 0:
            raise ValueError("shift amount must be non-negative")
        return type(self)(self._width, self._raw << amount, _raw=True)

    def __rshift__(self, amount: int) -> "_FixedWidthInt":
        """Width-preserving shift right (arithmetic for ``Signed``)."""
        if amount < 0:
            raise ValueError("shift amount must be non-negative")
        return self._make(self._width, self.value >> amount)

    def __neg__(self) -> "_FixedWidthInt":
        return self._make(self._width, -self.value)

    # ------------------------------------------------------------------
    # bitwise
    # ------------------------------------------------------------------
    def __and__(self, other: "int | _FixedWidthInt") -> "_FixedWidthInt":
        o = self._coerce(other)
        w = bitwise_width(self._width, o._width)
        return type(self)(w, self._raw & o._raw, _raw=True)

    __rand__ = __and__

    def __or__(self, other: "int | _FixedWidthInt") -> "_FixedWidthInt":
        o = self._coerce(other)
        w = bitwise_width(self._width, o._width)
        return type(self)(w, self._raw | o._raw, _raw=True)

    __ror__ = __or__

    def __xor__(self, other: "int | _FixedWidthInt") -> "_FixedWidthInt":
        o = self._coerce(other)
        w = bitwise_width(self._width, o._width)
        return type(self)(w, self._raw ^ o._raw, _raw=True)

    __rxor__ = __xor__

    def __invert__(self) -> "_FixedWidthInt":
        return type(self)(self._width, ~self._raw, _raw=True)

    # ------------------------------------------------------------------
    # comparisons (value comparisons; Bit results to match synthesis)
    # ------------------------------------------------------------------
    def _cmp_value(self, other: "int | _FixedWidthInt") -> int:
        return self._coerce(other).value

    def __eq__(self, other: object) -> bool:
        if isinstance(other, (_FixedWidthInt, int)):
            try:
                return self.value == self._cmp_value(other)
            except (TypeError, ValueError):
                return NotImplemented
        return NotImplemented

    def __hash__(self) -> int:
        return hash((type(self).__name__, self._width, self._raw))

    def __lt__(self, other: "int | _FixedWidthInt") -> bool:
        return self.value < self._cmp_value(other)

    def __le__(self, other: "int | _FixedWidthInt") -> bool:
        return self.value <= self._cmp_value(other)

    def __gt__(self, other: "int | _FixedWidthInt") -> bool:
        return self.value > self._cmp_value(other)

    def __ge__(self, other: "int | _FixedWidthInt") -> bool:
        return self.value >= self._cmp_value(other)

    # ------------------------------------------------------------------
    # conversions
    # ------------------------------------------------------------------
    def resized(self, width: int) -> "_FixedWidthInt":
        """Resize to *width* bits.

        ``Unsigned`` zero-extends, ``Signed`` sign-extends; truncation keeps
        the least-significant bits, as hardware assignment would.
        """
        return self._make(width, self.value)

    def __repr__(self) -> str:
        return f"{type(self).__name__}({self._width}, {self.value})"

    def __str__(self) -> str:
        return str(self.value)


class Unsigned(_FixedWidthInt):
    """A fixed-width unsigned integer (``sc_biguint<W>`` equivalent)."""

    __slots__ = ()
    signed = False

    def to_signed(self) -> "Signed":
        """Reinterpret the raw bits as two's-complement ``Signed``."""
        return Signed(self._width, self._raw, _raw=True)


class Signed(_FixedWidthInt):
    """A fixed-width two's-complement integer (``sc_bigint<W>`` equivalent)."""

    __slots__ = ()
    signed = True

    def to_unsigned(self) -> Unsigned:
        """Reinterpret the raw bits as ``Unsigned``."""
        return Unsigned(self._width, self._raw)
