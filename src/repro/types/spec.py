"""Type descriptors for declarations.

Hardware values (:class:`~repro.types.logic.Bit`,
:class:`~repro.types.bitvector.BitVector`, ...) carry their width on the
*instance*.  Declarations — ports, signals, class data members, RTL registers
— need to talk about a type before any value exists.  A :class:`TypeSpec`
names a value type plus its parameters, can produce default values, and can
validate assignments.  The synthesis type inference uses the same specs, so
simulation and generated hardware agree on every width.

Use the lowercase helpers in user code::

    from repro.types.spec import bit, unsigned, signed, bits, fixed

    data = Input(bit())
    count = Signal("count", unsigned(8))
"""

from __future__ import annotations

from typing import Any

from repro.types.bitvector import BitVector
from repro.types.fixed import FixedPoint
from repro.types.integer import Signed, Unsigned
from repro.types.logic import Bit


_EXPECTED_BY_KIND: dict = {}


class TypeSpec:
    """Immutable descriptor of a hardware value type.

    Parameters
    ----------
    kind:
        One of ``"bit"``, ``"bv"``, ``"unsigned"``, ``"signed"``, ``"fixed"``.
    width:
        Total storage width in bits.
    frac_bits:
        Fractional bits; only meaningful for ``kind == "fixed"``.
    """

    __slots__ = ("kind", "width", "frac_bits", "_expected")

    _KINDS = ("bit", "bv", "unsigned", "signed", "fixed")

    def __init__(self, kind: str, width: int, frac_bits: int = 0) -> None:
        if kind not in self._KINDS:
            raise ValueError(f"unknown type kind {kind!r}")
        if width <= 0:
            raise ValueError("type width must be positive")
        if kind == "bit" and width != 1:
            raise ValueError("bit type must have width 1")
        object.__setattr__(self, "kind", kind)
        object.__setattr__(self, "width", width)
        object.__setattr__(self, "frac_bits", frac_bits)
        object.__setattr__(self, "_expected", _EXPECTED_BY_KIND[kind])

    def __setattr__(self, name: str, value: Any) -> None:
        raise AttributeError("TypeSpec is immutable")

    # ------------------------------------------------------------------
    # values
    # ------------------------------------------------------------------
    def default(self) -> Any:
        """A zero value of this type."""
        return self.from_raw(0)

    def from_raw(self, raw: int) -> Any:
        """Build a value of this type from a raw bit pattern."""
        if self.kind == "bit":
            return Bit(raw & 1)
        if self.kind == "bv":
            return BitVector(self.width, raw)
        if self.kind == "unsigned":
            return Unsigned(self.width, raw)
        if self.kind == "signed":
            return Signed(self.width, raw, _raw=True)
        # Fixed point: interpret the pattern as the scaled two's-complement
        # integer and rebuild exactly via Fraction.
        from fractions import Fraction

        scaled = Signed(self.width, raw, _raw=True).value
        return FixedPoint(
            self.width - self.frac_bits,
            self.frac_bits,
            Fraction(scaled, 1 << self.frac_bits),
        )

    def to_raw(self, value: Any) -> int:
        """Raw bit pattern of *value*, validated against this spec."""
        self.check(value)
        return self.to_raw_unchecked(value)

    def to_raw_unchecked(self, value: Any) -> int:
        """Raw bit pattern without validation (kernel fast path)."""
        kind = self.kind
        if kind == "bit":
            return value._value
        if kind == "fixed":
            return value.stored.raw
        if kind in ("unsigned", "signed"):
            return value.raw
        return value.value  # BitVector

    def check(self, value: Any) -> None:
        """Raise ``TypeError``/``ValueError`` if *value* does not match."""
        expected = self._expected
        if not isinstance(value, expected):
            raise TypeError(
                f"expected {self.describe()}, got {type(value).__name__}"
            )
        if self.kind != "bit" and value.width != self.width:
            raise ValueError(
                f"expected {self.describe()}, got width {value.width}"
            )
        if self.kind == "fixed" and value.frac_bits != self.frac_bits:
            raise ValueError(
                f"expected {self.describe()}, got frac_bits {value.frac_bits}"
            )

    def accepts(self, value: Any) -> bool:
        """True if :meth:`check` would pass."""
        try:
            self.check(value)
        except (TypeError, ValueError):
            return False
        return True

    # ------------------------------------------------------------------
    # identity
    # ------------------------------------------------------------------
    def describe(self) -> str:
        """Human-readable name, e.g. ``unsigned(8)``."""
        if self.kind == "bit":
            return "bit()"
        if self.kind == "fixed":
            return f"fixed({self.width - self.frac_bits}, {self.frac_bits})"
        name = {"bv": "bits"}.get(self.kind, self.kind)
        return f"{name}({self.width})"

    def __eq__(self, other: object) -> bool:
        if isinstance(other, TypeSpec):
            return (self.kind, self.width, self.frac_bits) == (
                other.kind,
                other.width,
                other.frac_bits,
            )
        return NotImplemented

    def __hash__(self) -> int:
        return hash((self.kind, self.width, self.frac_bits))

    def __repr__(self) -> str:
        return f"TypeSpec({self.describe()})"


def bit() -> TypeSpec:
    """Spec for a single :class:`Bit`."""
    return TypeSpec("bit", 1)


def bits(width: int) -> TypeSpec:
    """Spec for a :class:`BitVector` of *width* bits."""
    return TypeSpec("bv", width)


def unsigned(width: int) -> TypeSpec:
    """Spec for an :class:`Unsigned` of *width* bits."""
    return TypeSpec("unsigned", width)


def signed(width: int) -> TypeSpec:
    """Spec for a :class:`Signed` of *width* bits."""
    return TypeSpec("signed", width)


def fixed(int_bits: int, frac_bits: int) -> TypeSpec:
    """Spec for a :class:`FixedPoint` with the given format."""
    return TypeSpec("fixed", int_bits + frac_bits, frac_bits)


def spec_of(value: Any) -> TypeSpec:
    """Infer the :class:`TypeSpec` of an existing hardware value."""
    if isinstance(value, Bit):
        return bit()
    if isinstance(value, BitVector):
        return bits(value.width)
    if isinstance(value, Unsigned):
        return unsigned(value.width)
    if isinstance(value, Signed):
        return signed(value.width)
    if isinstance(value, FixedPoint):
        return fixed(value.int_bits, value.frac_bits)
    raise TypeError(f"{type(value).__name__} is not a hardware value")


_EXPECTED_BY_KIND.update({
    "bit": Bit,
    "bv": BitVector,
    "unsigned": Unsigned,
    "signed": Signed,
    "fixed": FixedPoint,
})
