"""Hardware datatypes: bits, bit vectors, fixed-width integers, fixed point.

These are the Python equivalents of the SystemC datatypes used throughout the
paper's listings (``sc_bit``, ``sc_bv``, ``sc_biguint``, ``sc_bigint`` and the
prototypic fixed-point support of OSSS §6).
"""

from repro.types.bitvector import BitVector, concat
from repro.types.fixed import FixedPoint
from repro.types.integer import Signed, Unsigned, add_width, bitwise_width, mul_width
from repro.types.logic import HIGH, LOW, Bit

__all__ = [
    "Bit",
    "BitVector",
    "FixedPoint",
    "HIGH",
    "LOW",
    "Signed",
    "Unsigned",
    "add_width",
    "bitwise_width",
    "concat",
    "mul_width",
]
