"""Text tables in the shape of the paper's Results section (§12, Fig. 12).

Formatting helpers used by the benchmark harness: a two-flow comparison
table (area/frequency, experiments E1/E2), the per-module inventory
(Fig. 12) and generic aligned tables for the remaining experiments.
"""

from __future__ import annotations

from typing import Any, Mapping, Sequence


def format_table(rows: Sequence[Mapping[str, Any]],
                 columns: Sequence[str] | None = None) -> str:
    """Render dict rows as an aligned text table."""
    if not rows:
        return "(no rows)"
    if columns is None:
        columns = list(rows[0].keys())
    widths = {
        col: max(len(str(col)), *(len(str(r.get(col, ""))) for r in rows))
        for col in columns
    }
    header = "  ".join(str(col).ljust(widths[col]) for col in columns)
    rule = "  ".join("-" * widths[col] for col in columns)
    lines = [header, rule]
    for row in rows:
        lines.append("  ".join(
            str(row.get(col, "")).ljust(widths[col]) for col in columns
        ))
    return "\n".join(lines)


def flow_comparison(osss, vhdl) -> str:
    """E1/E2 table: the two flows side by side plus ratios."""
    rows = [osss.summary(), vhdl.summary()]
    ratio = {
        "flow": "osss / vhdl",
        "area_ge": round(osss.area / vhdl.area, 3),
        "cells": round(osss.cells / vhdl.cells, 3),
        "flops": round(len(osss.circuit.flops())
                       / max(1, len(vhdl.circuit.flops())), 3),
        "fmax_mhz": round(osss.timing.fmax_mhz / vhdl.timing.fmax_mhz, 3),
        "fmax_routed_mhz": round(osss.fmax_mhz / vhdl.fmax_mhz, 3),
        "critical_ns": round(
            osss.timing_routed.critical_path_ns
            / vhdl.timing_routed.critical_path_ns, 3
        ),
    }
    return format_table(rows + [ratio])


def module_inventory(result, depth: int = 2) -> str:
    """Fig. 12: the synthesized top-level modules with their areas."""
    report = result.area_report(depth)
    rows = []
    for prefix, area in report.by_module.items():
        rows.append({
            "module": prefix,
            "area_ge": round(area, 1),
            "share_%": round(100.0 * area / report.total, 1),
        })
    rows.append({"module": "TOTAL", "area_ge": round(report.total, 1),
                 "share_%": 100.0})
    return format_table(rows)


def paper_anchor(experiment: str, claim: str, measured: str) -> str:
    """One EXPERIMENTS.md-style record line."""
    return f"[{experiment}] paper: {claim}\n        measured: {measured}"
