"""Kernel ↔ RTL co-simulation shell.

Hosts an :class:`~repro.rtl.simulate.RtlSimulator` inside a kernel-level
:class:`~repro.hdl.module.Module`: one clocked thread samples the bound
input signals, steps the RTL one cycle, and drives the outputs back onto
signals.  This lets a synthesized (or hand-written) RTL design replace the
behavioral module inside an otherwise unchanged testbench — e.g. running
the gate-accurate ExpoCU against the Python camera model — which is how
the paper's team debugged *"the generated intermediate files on all
possible levels of synthesis"* (§12).
"""

from __future__ import annotations

from repro.hdl.module import Module, Port
from repro.hdl.signal import Signal
from repro.rtl.ir import RtlModule
from repro.rtl.simulate import RtlSimulator


class RtlCosimModule(Module):
    """Drop-in kernel module wrapping an RTL (or gate-level) simulator.

    Parameters
    ----------
    name:
        Instance name.
    rtl:
        The RTL module to wrap; its inputs/outputs become kernel ports.
        The RTL ``reset`` input is driven from the *reset* signal.
    clk, reset:
        Kernel clock and synchronous reset.
    engine:
        Optional pre-built simulator (pass a
        :class:`repro.netlist.sim.GateSimulator` for gate-level co-sim);
        defaults to a fresh :class:`RtlSimulator` on *rtl*.
    """

    def __init__(self, name: str, rtl: RtlModule, clk, reset,
                 engine=None) -> None:
        super().__init__(name)
        self.rtl = rtl
        self.engine = engine if engine is not None else RtlSimulator(rtl)
        self.reset_signal = reset
        self._reset_port = rtl.attributes.get("reset_port")
        for port_name, carrier in rtl.inputs.items():
            if port_name == self._reset_port:
                continue
            self.add_port(port_name, carrier.spec, "in")
        self._out_specs = {}
        for port_name, expr in rtl.outputs.items():
            self.add_port(port_name, expr.spec, "out")
            self._out_specs[port_name] = expr.spec
        self.cthread(self.tick, clock=clk)

    def tick(self):
        """Step the wrapped simulator once per clock edge."""
        while True:
            inputs = {}
            if self._reset_port is not None:
                inputs[self._reset_port] = int(self.reset_signal.read())
            for port_name, port in self.ports().items():
                if port.direction == "in":
                    value = port.read()
                    spec = port.spec
                    inputs[port_name] = spec.to_raw(value)
            self.engine.step(**inputs)
            outputs = self.engine.peek_outputs()
            for port_name, raw in outputs.items():
                port = self.port(port_name)
                port.write(self._out_specs[port_name].from_raw(raw))
            yield
