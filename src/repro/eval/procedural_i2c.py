"""The I²C master in *plain procedural SystemC* style (claim R8).

The paper estimates the I²C master at ~2 days in pure SystemC versus 1 day
with OSSS.  This is that middle style, written the way a plain-SystemC
author (no OSSS objects, no behavioral helpers) schedules a clocked thread:
one flat generator with hand-managed phase/bit/byte counters and explicitly
sequenced waits.  It is functionally interchangeable with
:class:`repro.expocu.i2c.I2cMaster` and synthesizes through the same flow —
only the authoring style differs, which is what the effort metrics compare.
"""

from __future__ import annotations

from repro.hdl import Input, Module, Output
from repro.osss import template
from repro.types import Bit, Unsigned
from repro.types.spec import bit, unsigned


@template("DIVIDER")
class ProceduralI2cMaster(Module):
    """Write-only I²C master, flat procedural coding style."""

    start = Input(bit())
    dev_addr = Input(unsigned(7))
    reg_addr = Input(unsigned(8))
    data = Input(unsigned(8))
    sda_in = Input(bit())
    scl = Output(bit())
    sda_out = Output(bit())
    sda_oe = Output(bit())
    busy = Output(bit())
    done = Output(bit())
    ack_error = Output(bit())

    def __init__(self, name, clk, rst):
        super().__init__(name)
        self.cthread(self.run, clock=clk, reset=rst)

    def run(self):
        self.scl.write(Bit(1))
        self.sda_out.write(Bit(1))
        self.sda_oe.write(Bit(1))
        self.busy.write(Bit(0))
        self.done.write(Bit(0))
        self.ack_error.write(Bit(0))
        yield
        while True:
            if not self.start.read():
                self.done.write(Bit(0))
                yield
                continue
            self.busy.write(Bit(1))
            self.done.write(Bit(0))
            self.ack_error.write(Bit(0))
            device = self.dev_addr.read()
            register = self.reg_addr.read()
            payload = self.data.read()
            # START condition, sequenced by explicit quarter waits.
            self.sda_oe.write(Bit(1))
            self.sda_out.write(Bit(1))
            self.scl.write(Bit(1))
            pause = Unsigned(16, 0)
            while pause < self.DIVIDER:
                pause = (pause + 1).resized(16)
                yield
            self.sda_out.write(Bit(0))
            pause = Unsigned(16, 0)
            while pause < self.DIVIDER:
                pause = (pause + 1).resized(16)
                yield
            self.scl.write(Bit(0))
            pause = Unsigned(16, 0)
            while pause < self.DIVIDER:
                pause = (pause + 1).resized(16)
                yield
            # Three bytes, fully inline: byte select, bit loop, ack slot.
            nack = Bit(0)
            byte_index = Unsigned(2, 0)
            while byte_index < 3:
                if byte_index == 0:
                    shift = (device.resized(8) << 1).resized(8)
                elif byte_index == 1:
                    shift = register
                else:
                    shift = payload
                bit_index = Unsigned(4, 0)
                while bit_index < 8:
                    self.sda_oe.write(Bit(1))
                    self.sda_out.write(shift.bit(7))
                    shift = (shift << 1).resized(8)
                    pause = Unsigned(16, 0)
                    while pause < self.DIVIDER:
                        pause = (pause + 1).resized(16)
                        yield
                    self.scl.write(Bit(1))
                    pause = Unsigned(16, 0)
                    while pause < self.DIVIDER:
                        pause = (pause + 1).resized(16)
                        yield
                    pause = Unsigned(16, 0)
                    while pause < self.DIVIDER:
                        pause = (pause + 1).resized(16)
                        yield
                    self.scl.write(Bit(0))
                    pause = Unsigned(16, 0)
                    while pause < self.DIVIDER:
                        pause = (pause + 1).resized(16)
                        yield
                    bit_index = (bit_index + 1).resized(4)
                # Acknowledge slot.
                self.sda_oe.write(Bit(0))
                pause = Unsigned(16, 0)
                while pause < self.DIVIDER:
                    pause = (pause + 1).resized(16)
                    yield
                self.scl.write(Bit(1))
                pause = Unsigned(16, 0)
                while pause < self.DIVIDER:
                    pause = (pause + 1).resized(16)
                    yield
                nack = nack | self.sda_in.read()
                pause = Unsigned(16, 0)
                while pause < self.DIVIDER:
                    pause = (pause + 1).resized(16)
                    yield
                self.scl.write(Bit(0))
                pause = Unsigned(16, 0)
                while pause < self.DIVIDER:
                    pause = (pause + 1).resized(16)
                    yield
                byte_index = (byte_index + 1).resized(2)
            if nack:
                self.ack_error.write(Bit(1))
            # STOP condition.
            self.sda_oe.write(Bit(1))
            self.sda_out.write(Bit(0))
            pause = Unsigned(16, 0)
            while pause < self.DIVIDER:
                pause = (pause + 1).resized(16)
                yield
            self.scl.write(Bit(1))
            pause = Unsigned(16, 0)
            while pause < self.DIVIDER:
                pause = (pause + 1).resized(16)
                yield
            self.sda_out.write(Bit(1))
            pause = Unsigned(16, 0)
            while pause < self.DIVIDER:
                pause = (pause + 1).resized(16)
                yield
            self.busy.write(Bit(0))
            self.done.write(Bit(1))
            yield
