"""Development-effort proxy metrics (paper §12, claim R8).

The paper reports wall-clock development effort (I²C master: one day in
OSSS, an estimated two days in plain SystemC, *"slightly longer"* in VHDL
RTL).  Wall-clock effort cannot be re-measured, so — as the DESIGN.md
experiment index states — we proxy it with *code-construct counts* of the
three styles actually present in this repository:

* **OSSS** — the behavioral generator-based source
  (:mod:`repro.expocu.i2c`);
* **procedural** — the generated intermediate / procedural style (what a
  plain-SystemC author writes: explicit per-cycle scheduling, no classes);
* **RTL** — the hand-written FSM (:mod:`repro.baseline.i2c_rtl`).

Counted constructs: logical source lines, decision points (if/while/mux),
explicitly managed state carriers (registers/locals the author must
schedule by hand), and explicit next-state assignments.  The paper's
*ordering* (OSSS < SystemC < VHDL) is the reproducible shape.
"""

from __future__ import annotations

import ast
import inspect
import textwrap
from typing import Any, Callable


class EffortMetrics:
    """Construct counts of one implementation style."""

    def __init__(self, style: str, sloc: int, decisions: int,
                 state_carriers: int, explicit_assignments: int) -> None:
        self.style = style
        self.sloc = sloc
        self.decisions = decisions
        self.state_carriers = state_carriers
        self.explicit_assignments = explicit_assignments

    @property
    def effort_score(self) -> float:
        """A single weighted score (higher = more to write and schedule)."""
        return (self.sloc
                + 3.0 * self.decisions
                + 2.0 * self.state_carriers
                + 1.5 * self.explicit_assignments)

    def as_dict(self) -> dict[str, Any]:
        return {
            "style": self.style,
            "sloc": self.sloc,
            "decisions": self.decisions,
            "state_carriers": self.state_carriers,
            "explicit_assignments": self.explicit_assignments,
            "score": round(self.effort_score, 1),
        }

    def __repr__(self) -> str:
        return f"EffortMetrics({self.style}, score={self.effort_score:.0f})"


def _source_of(obj: Any) -> str:
    return textwrap.dedent(inspect.getsource(obj))


def _sloc(source: str) -> int:
    count = 0
    in_doc = False
    for line in source.splitlines():
        stripped = line.strip()
        if not stripped or stripped.startswith("#"):
            continue
        if stripped.startswith(('"""', "'''")):
            if not (in_doc is False and stripped.count('"""') == 2):
                in_doc = not in_doc
            continue
        if in_doc:
            continue
        count += 1
    return count


def measure_source(style: str, obj: Any,
                   register_names: tuple[str, ...] = ("register",),
                   mux_names: tuple[str, ...] = ("mux", "Mux"),
                   next_names: tuple[str, ...] = ("next",)) -> EffortMetrics:
    """Analyze a class/function's source for the effort constructs."""
    source = _source_of(obj)
    tree = ast.parse(source)
    decisions = 0
    registers = 0
    explicit = 0
    for node in ast.walk(tree):
        if isinstance(node, (ast.If, ast.While, ast.IfExp)):
            decisions += 1
        elif isinstance(node, ast.Call):
            func = node.func
            name = None
            if isinstance(func, ast.Attribute):
                name = func.attr
            elif isinstance(func, ast.Name):
                name = func.id
            if name in mux_names:
                decisions += 1
            elif name in register_names:
                registers += 1
            elif name in next_names:
                explicit += 1
    # Locals that persist (assignments of hardware-typed values at function
    # scope) count as author-managed state in procedural/RTL styles only —
    # the behavioral style lets the compiler allocate them.
    return EffortMetrics(style, _sloc(source), decisions, registers,
                         explicit)


def i2c_effort_comparison() -> dict[str, EffortMetrics]:
    """The paper's I²C anecdote, as construct counts of the three styles."""
    from repro.baseline.i2c_rtl import i2c_rtl
    from repro.eval.procedural_i2c import ProceduralI2cMaster
    from repro.expocu.i2c import I2cMaster

    return {
        "osss": measure_source("osss", I2cMaster),
        "systemc_procedural": measure_source(
            "systemc_procedural", ProceduralI2cMaster
        ),
        "vhdl_rtl": measure_source("vhdl_rtl", i2c_rtl),
    }
