"""Measurement helpers: simulation speed, cycle counting (claims R7).

The paper's §10 lists *"much higher simulation speed than conventional RTL
simulators"* among the OSSS benefits.  :func:`simulation_rates` measures
cycles-per-second of the same design at the three levels our flow offers —
behavioral (kernel) simulation, RTL simulation, gate-level simulation —
over identical stimulus.
"""

from __future__ import annotations

import time
from typing import Callable, Mapping, Sequence


class RateSample:
    """Throughput of one simulation stage."""

    def __init__(self, stage: str, cycles: int, seconds: float) -> None:
        self.stage = stage
        self.cycles = cycles
        self.seconds = seconds

    @property
    def cycles_per_second(self) -> float:
        """Simulated clock cycles per wall-clock second."""
        if self.seconds <= 0:
            return float("inf")
        return self.cycles / self.seconds

    def __repr__(self) -> str:
        return (f"RateSample({self.stage}: "
                f"{self.cycles_per_second:,.0f} cycles/s)")


def measure_stage(stage, stimulus: Sequence[Mapping[str, int]],
                  repeat: int = 1) -> RateSample:
    """Drive *stage* (an equivalence-stage object) and time it."""
    start = time.perf_counter()
    cycles = 0
    for _ in range(repeat):
        for entry in stimulus:
            stage.step(entry)
            cycles += 1
    elapsed = time.perf_counter() - start
    return RateSample(stage.name, cycles, elapsed)


def simulation_rates(
    factory: Callable,
    stimulus: Sequence[Mapping[str, int]],
    observed: Sequence[str],
    repeat: int = 1,
) -> dict[str, RateSample]:
    """Cycles/s of behavioral vs RTL vs gate simulation of one design."""
    from repro.eval.equivalence import GateStage, KernelStage, RtlStage
    from repro.hdl.signal import Clock, Signal
    from repro.hdl.simtime import NS
    from repro.netlist.opt import optimize
    from repro.netlist.techmap import map_module
    from repro.synth.modulegen import synthesize
    from repro.types.logic import Bit
    from repro.types.spec import bit

    rtl = synthesize(factory(Clock("clk", 10 * NS),
                             Signal("rst", bit(), Bit(1))))
    circuit = map_module(rtl)
    optimize(circuit)
    kernel = KernelStage(factory, observed)
    kernel.sim.activate()
    rates = {"behavioral": measure_stage(kernel, stimulus, repeat)}
    rates["rtl"] = measure_stage(RtlStage(rtl, observed), stimulus, repeat)
    rates["gate"] = measure_stage(GateStage(circuit, observed), stimulus,
                                  repeat)
    return rates


def speedup_table(rates: Mapping[str, RateSample]) -> dict[str, float]:
    """Normalized speed (gate level = 1.0)."""
    base = rates["gate"].cycles_per_second
    return {
        stage: round(sample.cycles_per_second / base, 2)
        for stage, sample in rates.items()
    }
