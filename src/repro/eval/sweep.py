"""Parameter sweeps over template parameters (deliverable-d harness).

The OSSS selling point exercised here is that **templates make design-space
exploration one-liners**: a sweep re-specializes the same source with
different template arguments and pushes each specialization through the
full flow.  Used by ``bench_sweep_params.py`` and available for ad-hoc
exploration.
"""

from __future__ import annotations

from typing import Any, Callable, Iterable, Mapping, Sequence

from repro.eval.flows import FlowResult


class SweepPoint:
    """One synthesized design point."""

    def __init__(self, params: Mapping[str, Any],
                 result: FlowResult) -> None:
        self.params = dict(params)
        self.result = result

    def row(self) -> dict[str, Any]:
        """Flat record for tables."""
        record: dict[str, Any] = dict(self.params)
        record.update({
            "area_ge": round(self.result.area, 1),
            "cells": self.result.cells,
            "flops": len(self.result.circuit.flops()),
            "fmax_mhz": round(self.result.timing.fmax_mhz, 1),
        })
        return record

    def __repr__(self) -> str:
        return f"SweepPoint({self.params}, area={self.result.area:.0f})"


def sweep(
    factory: Callable[..., Any],
    points: Iterable[Mapping[str, Any]],
    flow: Callable[[Any], FlowResult] | None = None,
    store=None,
) -> list[SweepPoint]:
    """Synthesize ``factory(**params)`` for every parameter point.

    *factory* returns a fresh kernel-level module for the given parameters;
    *flow* defaults to :func:`repro.eval.flows.run_osss_flow`.  With a
    *store* (:class:`~repro.store.ArtifactStore`) and the default flow,
    every point runs memoized through the design library, so re-sweeping
    (or overlapping a sweep with ``repro build``) replays warm entries
    per specialization instead of re-synthesizing them.
    """
    if flow is None:
        from functools import partial

        from repro.eval.flows import run_osss_flow

        flow = partial(run_osss_flow, store=store)
    elif store is not None:
        raise ValueError("store= requires the default flow; pass a flow "
                         "that binds its own store instead")
    results = []
    for params in points:
        module = factory(**params)
        results.append(SweepPoint(params, flow(module)))
    return results


def grid(**axes: Sequence[Any]) -> list[dict[str, Any]]:
    """Cartesian product of named axes as parameter dictionaries."""
    names = list(axes)
    points: list[dict[str, Any]] = [{}]
    for name in names:
        points = [dict(p, **{name: value})
                  for p in points for value in axes[name]]
    return points


def monotonic(rows: Sequence[Mapping[str, Any]], x: str, y: str,
              strict: bool = False) -> bool:
    """True if *y* is (weakly) increasing along increasing *x*."""
    ordered = sorted(rows, key=lambda r: r[x])
    values = [r[y] for r in ordered]
    if strict:
        return all(a < b for a, b in zip(values, values[1:]))
    return all(a <= b for a, b in zip(values, values[1:]))
