"""Parameter sweeps over template parameters (deliverable-d harness).

The OSSS selling point exercised here is that **templates make design-space
exploration one-liners**: a sweep re-specializes the same source with
different template arguments and pushes each specialization through the
full flow.  Used by ``bench_sweep_params.py``, the design-space
exploration engine (:mod:`repro.dse`) and ad-hoc exploration.

A sweep is resilient by default: a specialization that fails in the flow
(:class:`~repro.synth.SynthesisError` and friends) is *recorded* as a
failed :class:`SweepPoint` and the sweep continues — one broken corner
of a parameter grid must not abort the other points.  Pass
``on_error="raise"`` to restore fail-fast behaviour.
"""

from __future__ import annotations

from typing import Any, Callable, Iterable, Mapping, Sequence

from repro.eval.flows import FlowResult


def _flow_errors() -> tuple[type[Exception], ...]:
    """The exception types a sweep records instead of propagating."""
    from repro.analyze import AnalysisError
    from repro.netlist import NetlistError
    from repro.synth import SynthesisError

    return (SynthesisError, NetlistError, AnalysisError)


class SweepPoint:
    """One synthesized design point — or one recorded failure."""

    def __init__(self, params: Mapping[str, Any],
                 result: FlowResult | None,
                 error: Exception | None = None) -> None:
        self.params = dict(params)
        self.result = result
        self.error = error

    @property
    def ok(self) -> bool:
        """True when the point's flow completed."""
        return self.error is None

    def row(self) -> dict[str, Any]:
        """Flat record for tables."""
        record: dict[str, Any] = dict(self.params)
        if self.result is None:
            record.update({
                "error": f"{type(self.error).__name__}: {self.error}",
            })
            return record
        record.update({
            "area_ge": round(self.result.area, 1),
            "cells": self.result.cells,
            "flops": len(self.result.circuit.flops()),
            "fmax_mhz": round(self.result.timing.fmax_mhz, 1),
        })
        return record

    def __repr__(self) -> str:
        if self.result is None:
            return f"SweepPoint({self.params}, error={self.error!r})"
        return f"SweepPoint({self.params}, area={self.result.area:.0f})"


class PointRunner:
    """Reentrant single-point runner: factory, flow and store bound once.

    The sweep's per-point body as a reusable object: ``run(params)``
    builds a fresh specialization, pushes it through the flow, and
    returns a :class:`SweepPoint` — recording flow failures instead of
    raising when ``on_error="record"`` (the default).  Stateless between
    calls apart from the store, so one runner may evaluate any number
    of points in any order (sweeps, design-space searches, future
    flow-service jobs) and every point memoizes through the same design
    library.
    """

    def __init__(self, factory: Callable[..., Any],
                 flow: Callable[[Any], FlowResult] | None = None,
                 store=None, on_error: str = "record") -> None:
        if on_error not in ("record", "raise"):
            raise ValueError(
                f"on_error must be 'record' or 'raise', got {on_error!r}"
            )
        if flow is None:
            from functools import partial

            from repro.eval.flows import run_osss_flow

            flow = partial(run_osss_flow, store=store)
        elif store is not None:
            raise ValueError("store= requires the default flow; pass a flow "
                             "that binds its own store instead")
        self.factory = factory
        self.flow = flow
        self.on_error = on_error

    def run(self, params: Mapping[str, Any]) -> SweepPoint:
        """Evaluate one parameter point."""
        try:
            module = self.factory(**params)
            return SweepPoint(params, self.flow(module))
        except _flow_errors() as exc:
            if self.on_error == "raise":
                raise
            return SweepPoint(params, None, error=exc)


def sweep(
    factory: Callable[..., Any],
    points: Iterable[Mapping[str, Any]],
    flow: Callable[[Any], FlowResult] | None = None,
    store=None,
    on_error: str = "record",
) -> list[SweepPoint]:
    """Synthesize ``factory(**params)`` for every parameter point.

    *factory* returns a fresh kernel-level module for the given parameters;
    *flow* defaults to :func:`repro.eval.flows.run_osss_flow`.  With a
    *store* (:class:`~repro.store.ArtifactStore`) and the default flow,
    every point runs memoized through the design library, so re-sweeping
    (or overlapping a sweep with ``repro build``) replays warm entries
    per specialization instead of re-synthesizing them.

    A point whose specialization fails in the flow is recorded as a
    failed :class:`SweepPoint` (``.ok`` false, ``.error`` set) and the
    sweep continues; ``on_error="raise"`` restores the old fail-fast
    behaviour.  An empty *points* iterable yields an empty sweep.
    """
    runner = PointRunner(factory, flow, store, on_error)
    return [runner.run(params) for params in points]


def grid(**axes: Sequence[Any]) -> list[dict[str, Any]]:
    """Cartesian product of named axes as parameter dictionaries.

    An axis with an empty value list makes the product empty; no axes
    at all yield the single empty point (a zero-dimensional space).
    """
    names = list(axes)
    points: list[dict[str, Any]] = [{}]
    for name in names:
        points = [dict(p, **{name: value})
                  for p in points for value in axes[name]]
    return points


def monotonic(rows: Sequence[Mapping[str, Any]], x: str, y: str,
              strict: bool = False) -> bool:
    """True if *y* is (weakly) increasing along increasing *x*."""
    ordered = sorted(rows, key=lambda r: r[x])
    values = [r[y] for r in ordered]
    if strict:
        return all(a < b for a, b in zip(values, values[1:]))
    return all(a <= b for a, b in zip(values, values[1:]))
