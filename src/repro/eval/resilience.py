"""Hardening-effectiveness evaluation (fault-injection extension).

The paper's automotive context makes robustness a first-class metric
next to area and frequency; this module turns the fault subsystem
(:mod:`repro.fault`) into a paper-style comparison table: the same
seeded campaign against the ExpoCU netlist, unhardened and with each
hardening recipe, so the masked/sdc/detected/hang shift is directly
readable.
"""

from __future__ import annotations

from typing import Any, Sequence

from repro.fault import expocu_campaign


def hardening_comparison(
    faults: int = 20,
    seed: int = 1,
    modes: Sequence[str] = ("none", "tmr", "parity", "tmr+parity"),
    side: int = 8,
    jobs: int = 1,
    backend: str = "event",
    collapse: bool = False,
    fault_timeout: float | None = None,
    max_retries: int = 1,
) -> list[dict[str, Any]]:
    """One row per hardening mode, same faults everywhere.

    The fault list is regenerated per mode from the same seed; targets
    are drawn from each variant's own netlist (hardened state is larger),
    so rows compare *strategies under equal pressure*, not fault-by-fault
    trajectories.  Rows render with :func:`repro.eval.report.format_table`.

    *jobs* and *backend* scale each campaign exactly like
    :func:`repro.fault.scenarios.expocu_campaign`: worker-process
    sharding of the fault list and the compiled gate evaluator.
    *collapse* enables static fault collapsing + quiescence pruning in
    each campaign — rows are unchanged (collapsing is
    classification-preserving), only faster to compute.
    *fault_timeout*/*max_retries* bound each replay in wall-clock
    seconds (retry, then quarantine) so one pathological variant cannot
    stall the whole comparison.
    """
    rows = []
    for mode in modes:
        result = expocu_campaign(flow="netlist", faults=faults, seed=seed,
                                 hardening=mode, side=side, jobs=jobs,
                                 backend=backend, collapse=collapse,
                                 fault_timeout=fault_timeout,
                                 max_retries=max_retries)
        row = result.summary_rows()[0]
        row["sdc+hang"] = row["sdc"] + row["hang"]
        rows.append(row)
    return rows
