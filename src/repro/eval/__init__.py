"""Evaluation harness: flows, equivalence, metrics, effort, reports."""

from repro.eval.cosim import RtlCosimModule
from repro.eval.effort import EffortMetrics, i2c_effort_comparison, measure_source
from repro.eval.equivalence import (
    EquivalenceReport,
    GateStage,
    KernelStage,
    Mismatch,
    RtlStage,
    check_all_stages,
    lockstep,
)
from repro.eval.flows import (
    FlowResult,
    netlist_prefix,
    run_netlist_analysis,
    run_osss_flow,
    run_rtl,
    run_vhdl_flow,
)
from repro.eval.metrics import RateSample, measure_stage, simulation_rates, speedup_table
from repro.eval.report import flow_comparison, format_table, module_inventory
from repro.eval.resilience import hardening_comparison
from repro.eval.sweep import PointRunner, SweepPoint, grid, monotonic, sweep

__all__ = [
    "EffortMetrics",
    "EquivalenceReport",
    "FlowResult",
    "GateStage",
    "KernelStage",
    "Mismatch",
    "RateSample",
    "RtlCosimModule",
    "RtlStage",
    "check_all_stages",
    "flow_comparison",
    "format_table",
    "hardening_comparison",
    "i2c_effort_comparison",
    "lockstep",
    "measure_source",
    "measure_stage",
    "module_inventory",
    "netlist_prefix",
    "run_netlist_analysis",
    "run_osss_flow",
    "run_rtl",
    "run_vhdl_flow",
    "simulation_rates",
    "PointRunner",
    "SweepPoint",
    "grid",
    "monotonic",
    "speedup_table",
    "sweep",
]
