"""End-to-end flow runners for the two design flows under comparison.

``run_osss_flow``   : OSSS module → behavioral synthesis → gates
                      (paper Fig. 6 left path).
``run_vhdl_flow``   : hand-written RTL → gates, with separately
                      synthesized IP linked at the netlist level
                      (paper Fig. 6 right path).

Both end in the same optimizer, STA and placement, so every reported
difference comes from the *description style*, which is exactly the
comparison of the paper's Results section.
"""

from __future__ import annotations

from typing import Any

from repro.analyze import (
    AnalysisError,
    Diagnostic,
    analyze_design,
    diagnostics_from_lint_report,
)
from repro.hdl.module import Module
from repro.netlist.area import AreaReport, total_area
from repro.netlist.circuit import Circuit
from repro.netlist.linker import link
from repro.netlist.opt import optimize
from repro.netlist.pnr import Placement, place
from repro.netlist.sta import TimingReport, analyze
from repro.netlist.techmap import map_module
from repro.obs.profiler import NULL_TRACER, Tracer
from repro.rtl.ir import RtlModule
from repro.rtl.lint import lint_module
from repro.synth.modulegen import synthesize


class FlowResult:
    """Everything one flow produced for one design."""

    def __init__(self, name: str, rtl: RtlModule, circuit: Circuit,
                 timing: TimingReport, placement: Placement,
                 timing_routed: TimingReport,
                 diagnostics: list[Diagnostic] | None = None) -> None:
        self.name = name
        self.rtl = rtl
        self.circuit = circuit
        self.timing = timing
        self.placement = placement
        self.timing_routed = timing_routed
        #: Analyzer findings plus RTL lint warnings gathered by the flow.
        self.diagnostics: list[Diagnostic] = list(diagnostics or [])

    @property
    def area(self) -> float:
        """Optimized area in gate equivalents."""
        return total_area(self.circuit)

    @property
    def cells(self) -> int:
        """Optimized cell count."""
        return len(self.circuit.cells)

    @property
    def fmax_mhz(self) -> float:
        """Post-placement maximum frequency."""
        return self.timing_routed.fmax_mhz

    def area_report(self, depth: int = 2) -> AreaReport:
        """Per-module area breakdown (Fig. 12)."""
        return AreaReport(self.circuit, depth)

    def summary(self) -> dict[str, Any]:
        """Flat record for tables."""
        return {
            "flow": self.name,
            "area_ge": round(self.area, 1),
            "cells": self.cells,
            "flops": len(self.circuit.flops()),
            "fmax_mhz": round(self.timing.fmax_mhz, 1),
            "fmax_routed_mhz": round(self.fmax_mhz, 1),
            "critical_ns": round(self.timing_routed.critical_path_ns, 3),
        }

    def __repr__(self) -> str:
        return (f"FlowResult({self.name!r}, area={self.area:.0f}GE, "
                f"fmax={self.fmax_mhz:.0f}MHz)")


def _finish(name: str, rtl: RtlModule, circuit: Circuit,
            diagnostics: list[Diagnostic] | None = None,
            tracer: Tracer = NULL_TRACER) -> FlowResult:
    with tracer.span("opt"):
        optimize(circuit)
    with tracer.span("sta"):
        timing = analyze(circuit)
    with tracer.span("pnr"):
        placement = place(circuit)
    with tracer.span("sta_routed"):
        timing_routed = analyze(circuit, placement.wire_delays())
    return FlowResult(name, rtl, circuit, timing, placement, timing_routed,
                      diagnostics)


def run_osss_flow(module: Module, name: str = "osss",
                  analyze_first: bool = True,
                  tracer: Tracer | None = None) -> FlowResult:
    """OSSS source → analyzer/synthesizer → behavioral FSMs → gates.

    The analyzer gate (paper Fig. 6) runs before synthesis: when it finds
    errors the flow stops with :class:`AnalysisError` carrying *all* of
    them; its warnings ride along on :attr:`FlowResult.diagnostics`.

    With a :class:`~repro.obs.profiler.Tracer`, every stage (analyze →
    synthesize → lint → techmap → opt → sta → pnr → sta_routed) is
    recorded as a span under one ``flow:<name>`` root.
    """
    tracer = tracer or NULL_TRACER
    with tracer.span(f"flow:{name}") as flow_span:
        diagnostics: list[Diagnostic] = []
        if analyze_first:
            with tracer.span("analyze"):
                diagnostics = analyze_design(module)
            errors = [d for d in diagnostics if d.severity == "error"]
            if errors:
                raise AnalysisError(diagnostics)
        with tracer.span("synthesize"):
            rtl = synthesize(module, observe_children=False)
        with tracer.span("lint"):
            diagnostics += diagnostics_from_lint_report(lint_module(rtl),
                                                        name)
        with tracer.span("techmap"):
            circuit = map_module(rtl)
        result = _finish(name, rtl, circuit, diagnostics, tracer)
        flow_span.annotate(cells=result.cells,
                           area_ge=round(result.area, 1))
    return result


def run_rtl(rtl: RtlModule, name: str = "rtl",
            ip_library: dict[str, Circuit] | None = None,
            tracer: Tracer | None = None) -> FlowResult:
    """RTL (hand-written or pre-synthesized) → gates, linking IP."""
    tracer = tracer or NULL_TRACER
    with tracer.span(f"flow:{name}") as flow_span:
        with tracer.span("lint"):
            diagnostics = diagnostics_from_lint_report(lint_module(rtl),
                                                       name)
        with tracer.span("techmap"):
            circuit = map_module(rtl)
        if circuit.blackboxes:
            with tracer.span("link"):
                if ip_library is None:
                    from repro.baseline.vhdl_ip import (
                        ip_library as default_ips,
                    )

                    ip_library = default_ips()
                link(circuit, ip_library)
        result = _finish(name, rtl, circuit, diagnostics, tracer)
        flow_span.annotate(cells=result.cells,
                           area_ge=round(result.area, 1))
    return result


def run_vhdl_flow(rtl: RtlModule, name: str = "vhdl",
                  tracer: Tracer | None = None) -> FlowResult:
    """Alias of :func:`run_rtl` with the default IP library."""
    return run_rtl(rtl, name, tracer=tracer)
