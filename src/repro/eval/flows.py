"""End-to-end flow runners for the two design flows under comparison.

``run_osss_flow``   : OSSS module → behavioral synthesis → gates
                      (paper Fig. 6 left path).
``run_vhdl_flow``   : hand-written RTL → gates, with separately
                      synthesized IP linked at the netlist level
                      (paper Fig. 6 right path).

Both end in the same optimizer, STA and placement, so every reported
difference comes from the *description style*, which is exactly the
comparison of the paper's Results section.

Both runners accept an :class:`~repro.store.ArtifactStore` (``store=``):
each stage is then memoized through the design library — its inputs are
fingerprinted, cached artifacts are replayed instead of recomputed, and
downstream stage keys chain on upstream artifact digests, so a warm
rebuild of an unchanged design skips every stage.  Cached or not, the
same spans open in the same order (with ``cache=hit/miss/off``
annotations) and the resulting :class:`FlowResult` is equivalent;
summaries are byte-identical across cold, warm and cache-disabled runs.
"""

from __future__ import annotations

from typing import Any

from repro.analyze import (
    AnalysisError,
    Diagnostic,
    NetlistAnalysis,
    analyze_circuit,
    analyze_design,
    diagnostics_from_lint_report,
)
from repro.exec.deadline import time_limit
from repro.hdl.module import Module
from repro.netlist.area import AreaReport, total_area
from repro.netlist.circuit import Circuit
from repro.netlist.linker import link
from repro.netlist.opt import optimize
from repro.netlist.pnr import Placement, place
from repro.netlist.sta import TimingReport, analyze
from repro.netlist.techmap import map_module
from repro.obs.profiler import NULL_TRACER, Tracer
from repro.rtl.ir import RtlModule
from repro.rtl.lint import lint_module
from repro.store import (
    ArtifactStore,
    StageRunner,
    deserialize_circuit,
    deserialize_diagnostics,
    deserialize_placement,
    deserialize_rtl,
    deserialize_testability,
    deserialize_timing,
    digest_doc,
    fingerprint_circuit,
    fingerprint_design,
    fingerprint_rtl,
    serialize_circuit,
    serialize_diagnostics,
    serialize_placement,
    serialize_rtl,
    serialize_testability,
    serialize_timing,
)
from repro.synth.modulegen import synthesize


class FlowResult:
    """Everything one flow produced for one design."""

    def __init__(self, name: str, rtl: RtlModule, circuit: Circuit,
                 timing: TimingReport, placement: Placement,
                 timing_routed: TimingReport,
                 diagnostics: list[Diagnostic] | None = None) -> None:
        self.name = name
        self.rtl = rtl
        self.circuit = circuit
        self.timing = timing
        self.placement = placement
        self.timing_routed = timing_routed
        #: Analyzer findings plus RTL lint warnings gathered by the flow.
        self.diagnostics: list[Diagnostic] = list(diagnostics or [])

    @property
    def area(self) -> float:
        """Optimized area in gate equivalents."""
        return total_area(self.circuit)

    @property
    def cells(self) -> int:
        """Optimized cell count."""
        return len(self.circuit.cells)

    @property
    def fmax_mhz(self) -> float:
        """Post-placement maximum frequency."""
        return self.timing_routed.fmax_mhz

    def area_report(self, depth: int = 2) -> AreaReport:
        """Per-module area breakdown (Fig. 12)."""
        return AreaReport(self.circuit, depth)

    def summary(self) -> dict[str, Any]:
        """Flat record for tables."""
        return {
            "flow": self.name,
            "area_ge": round(self.area, 1),
            "cells": self.cells,
            "flops": len(self.circuit.flops()),
            "fmax_mhz": round(self.timing.fmax_mhz, 1),
            "fmax_routed_mhz": round(self.fmax_mhz, 1),
            "critical_ns": round(self.timing_routed.critical_path_ns, 3),
        }

    def __repr__(self) -> str:
        return (f"FlowResult({self.name!r}, area={self.area:.0f}GE, "
                f"fmax={self.fmax_mhz:.0f}MHz)")


def _finish(name: str, rtl: RtlModule, pre_outcome,
            diagnostics: list[Diagnostic] | None,
            runner: StageRunner) -> FlowResult:
    """The shared back end: opt → sta → pnr → sta_routed, memoized.

    *pre_outcome* holds the pre-optimization circuit (techmap or link
    output), possibly still unloaded: on a fully warm run only its
    digest is touched and the large pre-opt netlist never leaves disk.
    """
    opt_outcome = runner.run(
        "opt", (pre_outcome.digest,),
        compute=lambda: _optimized(pre_outcome.value()),
        dump=serialize_circuit, load=deserialize_circuit,
    )
    circuit = opt_outcome.value()
    timing = runner.run(
        "sta", (opt_outcome.digest,),
        compute=lambda: analyze(circuit),
        dump=lambda t: serialize_timing(t, circuit),
        load=lambda doc: deserialize_timing(doc, circuit),
    ).value()
    pnr_outcome = runner.run(
        "pnr", (opt_outcome.digest,),
        compute=lambda: place(circuit),
        dump=serialize_placement,
        load=lambda doc: deserialize_placement(doc, circuit),
    )
    placement = pnr_outcome.value()
    timing_routed = runner.run(
        "sta_routed", (opt_outcome.digest, pnr_outcome.digest),
        compute=lambda: analyze(circuit, placement.wire_delays()),
        dump=lambda t: serialize_timing(t, circuit),
        load=lambda doc: deserialize_timing(doc, circuit),
    ).value()
    return FlowResult(name, rtl, circuit, timing, placement, timing_routed,
                      diagnostics)


def _optimized(circuit: Circuit) -> Circuit:
    optimize(circuit)
    return circuit


def run_osss_flow(module: Module, name: str = "osss",
                  analyze_first: bool = True,
                  tracer: Tracer | None = None,
                  store: ArtifactStore | None = None,
                  deadline_s: float | None = None,
                  guard=None) -> FlowResult:
    """OSSS source → analyzer/synthesizer → behavioral FSMs → gates.

    The analyzer gate (paper Fig. 6) runs before synthesis: when it finds
    errors the flow stops with :class:`AnalysisError` carrying *all* of
    them; its warnings ride along on :attr:`FlowResult.diagnostics`.

    With a :class:`~repro.obs.profiler.Tracer`, every stage (analyze →
    synthesize → lint → techmap → opt → sta → pnr → sta_routed) is
    recorded as a span under one ``flow:<name>`` root.

    With a *store*, stages are memoized through the design library: the
    live module hierarchy is fingerprinted, and any stage whose inputs
    (and implementing code) are unchanged replays its cached artifact.

    *deadline_s* bounds the whole flow in wall-clock seconds
    (:func:`repro.exec.time_limit`): a design that sends a stage into
    pathological runtime raises
    :class:`~repro.exec.DeadlineExceeded` instead of stalling batch
    evaluations and flow-service callers.

    *guard* is a per-stage cancellation hook (see
    :class:`~repro.store.StageRunner`): called with each stage name
    before the stage runs, it may raise to abort the flow at the next
    stage boundary — how ``repro serve`` cancels in-flight jobs.
    """
    runner = StageRunner(store, tracer or NULL_TRACER, guard=guard)
    tracer = runner.tracer
    with time_limit(deadline_s, label=f"flow:{name}"), \
            tracer.span(f"flow:{name}") as flow_span:
        design_fp = fingerprint_design(module) if store is not None else ""
        diagnostics: list[Diagnostic] = []
        if analyze_first:
            diagnostics = runner.run(
                "analyze", (design_fp,),
                compute=lambda: analyze_design(module),
                dump=serialize_diagnostics, load=deserialize_diagnostics,
            ).value()
            errors = [d for d in diagnostics if d.severity == "error"]
            if errors:
                raise AnalysisError(diagnostics)
        synth_outcome = runner.run(
            "synthesize", (design_fp,),
            compute=lambda: synthesize(module, observe_children=False),
            dump=serialize_rtl, load=deserialize_rtl,
        )
        rtl = synth_outcome.value()
        diagnostics = diagnostics + runner.run(
            "lint", (synth_outcome.digest, name),
            compute=lambda: diagnostics_from_lint_report(lint_module(rtl),
                                                         name),
            dump=serialize_diagnostics, load=deserialize_diagnostics,
        ).value()
        techmap_outcome = runner.run(
            "techmap", (synth_outcome.digest,),
            compute=lambda: map_module(rtl),
            dump=serialize_circuit, load=deserialize_circuit,
            lazy=True,
        )
        result = _finish(name, rtl, techmap_outcome, diagnostics, runner)
        flow_span.annotate(cells=result.cells,
                           area_ge=round(result.area, 1))
    return result


def netlist_prefix(module: Module, runner: StageRunner,
                   lazy_opt: bool = False):
    """The memoized synthesize → techmap → opt prefix, reentrant.

    Shared by :func:`run_netlist_analysis` and the design-space
    exploration evaluator (:mod:`repro.dse.evaluate`): the three stages
    run under the *same* names and keys as :func:`run_osss_flow`, so a
    prior ``repro build`` leaves them warm and any number of callers
    may re-enter them against one store.  Returns the ``(synthesize,
    techmap, opt)`` :class:`~repro.store.StageOutcome` triple; with
    ``lazy_opt`` a warm ``opt`` entry yields only its digest, and the
    optimized netlist never leaves disk unless ``.value()`` is called.
    """
    design_fp = (fingerprint_design(module)
                 if runner.store is not None else "")
    synth_outcome = runner.run(
        "synthesize", (design_fp,),
        compute=lambda: synthesize(module, observe_children=False),
        dump=serialize_rtl, load=deserialize_rtl,
    )
    techmap_outcome = runner.run(
        "techmap", (synth_outcome.digest,),
        compute=lambda: map_module(synth_outcome.value()),
        dump=serialize_circuit, load=deserialize_circuit,
        lazy=True,
    )
    opt_outcome = runner.run(
        "opt", (techmap_outcome.digest,),
        compute=lambda: _optimized(techmap_outcome.value()),
        dump=serialize_circuit, load=deserialize_circuit,
        lazy=lazy_opt,
    )
    return synth_outcome, techmap_outcome, opt_outcome


def run_netlist_analysis(module: Module, name: str = "osss",
                         tracer: Tracer | None = None,
                         store: ArtifactStore | None = None,
                         deadline_s: float | None = None,
                         guard=None) -> tuple[Circuit, NetlistAnalysis]:
    """OSSS source → optimized gates → structural testability analysis.

    The backbone of ``repro analyze``: the synthesize → techmap → opt
    prefix runs through the *same* memoized stages (same stage names,
    same keys) as :func:`run_osss_flow`, so a prior ``repro build``
    leaves them warm, and a new ``testability`` stage caches the
    SCOAP/collapse/lint analysis keyed on the optimized netlist's
    digest.  STA and placement are skipped — structural analysis does
    not need them.
    """
    runner = StageRunner(store, tracer or NULL_TRACER, guard=guard)
    tracer = runner.tracer
    with time_limit(deadline_s, label=f"analyze:{name}"), \
            tracer.span(f"analyze:{name}") as span:
        _, _, opt_outcome = netlist_prefix(module, runner)
        circuit = opt_outcome.value()
        analysis = runner.run(
            "testability", (opt_outcome.digest,),
            compute=lambda: analyze_circuit(circuit),
            dump=lambda a: serialize_testability(a, circuit),
            load=lambda doc: deserialize_testability(doc, circuit),
        ).value()
        span.annotate(nets=len(circuit.nets),
                      diagnostics=len(analysis.diagnostics))
    return circuit, analysis


def _uses_blackboxes(rtl: RtlModule) -> bool:
    """True if techmapping *rtl* will produce unresolved black boxes."""
    for instance in rtl.instances:
        if instance.module.attributes.get("blackbox_ip"):
            return True
        if _uses_blackboxes(instance.module):
            return True
    return False


def run_rtl(rtl: RtlModule, name: str = "rtl",
            ip_library: dict[str, Circuit] | None = None,
            tracer: Tracer | None = None,
            store: ArtifactStore | None = None,
            deadline_s: float | None = None,
            guard=None) -> FlowResult:
    """RTL (hand-written or pre-synthesized) → gates, linking IP."""
    runner = StageRunner(store, tracer or NULL_TRACER, guard=guard)
    tracer = runner.tracer
    with time_limit(deadline_s, label=f"flow:{name}"), \
            tracer.span(f"flow:{name}") as flow_span:
        rtl_fp = fingerprint_rtl(rtl) if store is not None else ""
        diagnostics = runner.run(
            "lint", (rtl_fp, name),
            compute=lambda: diagnostics_from_lint_report(lint_module(rtl),
                                                         name),
            dump=serialize_diagnostics, load=deserialize_diagnostics,
        ).value()
        techmap_outcome = runner.run(
            "techmap", (rtl_fp,),
            compute=lambda: map_module(rtl),
            dump=serialize_circuit, load=deserialize_circuit,
            lazy=True,
        )
        pre_outcome = techmap_outcome
        if _uses_blackboxes(rtl):
            resolved: dict[str, Circuit] = {}

            def ips() -> dict[str, Circuit]:
                # Resolved lazily so building the default IP library is
                # attributed to the link span (and skipped entirely when
                # the link stage is warm).
                if not resolved:
                    if ip_library is None:
                        from repro.baseline.vhdl_ip import (
                            ip_library as default_ips,
                        )

                        resolved.update(default_ips())
                    else:
                        resolved.update(ip_library)
                return resolved

            def link_parts() -> tuple[str, str]:
                library = ips()
                return (techmap_outcome.digest, digest_doc(
                    [[ip, fingerprint_circuit(library[ip])]
                     for ip in sorted(library)]
                ))

            pre_outcome = runner.run(
                "link", link_parts,
                compute=lambda: _linked(techmap_outcome, ips()),
                dump=serialize_circuit, load=deserialize_circuit,
                lazy=True,
            )
        result = _finish(name, rtl, pre_outcome, diagnostics, runner)
        flow_span.annotate(cells=result.cells,
                           area_ge=round(result.area, 1))
    return result


def _linked(techmap_outcome, ip_library: dict[str, Circuit]) -> Circuit:
    circuit = techmap_outcome.value()
    link(circuit, ip_library)
    return circuit


def run_vhdl_flow(rtl: RtlModule, name: str = "vhdl",
                  tracer: Tracer | None = None,
                  store: ArtifactStore | None = None,
                  deadline_s: float | None = None,
                  guard=None) -> FlowResult:
    """Alias of :func:`run_rtl` with the default IP library."""
    return run_rtl(rtl, name, tracer=tracer, store=store,
                   deadline_s=deadline_s, guard=guard)
