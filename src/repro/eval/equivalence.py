"""Multi-stage lockstep equivalence checking (paper §12, claim R6).

*"What we found out is that the behavior on every stage is bit and cycle
accurate and fully complies with its original description."*  This module
makes that claim mechanical: the same stimulus drives the OSSS kernel
simulation, the generated RTL and the optimized gate-level netlist in
lockstep, comparing every observed output every cycle.
"""

from __future__ import annotations

from typing import Any, Callable, Iterable, Mapping, Sequence

from repro.hdl.kernel import Simulator
from repro.hdl.module import Module
from repro.hdl.signal import Clock, Signal
from repro.hdl.simtime import NS
from repro.netlist.opt import optimize
from repro.netlist.sim import GateSimulator
from repro.netlist.techmap import map_module
from repro.obs.vcd import mismatch_window_vcd
from repro.rtl.ir import RtlModule
from repro.rtl.simulate import RtlSimulator
from repro.synth.modulegen import synthesize
from repro.types.logic import Bit
from repro.types.spec import bit


class Mismatch:
    """One divergence between two simulation stages."""

    def __init__(self, cycle: int, stage_a: str, stage_b: str,
                 outputs_a: dict, outputs_b: dict) -> None:
        self.cycle = cycle
        self.stage_a = stage_a
        self.stage_b = stage_b
        self.outputs_a = outputs_a
        self.outputs_b = outputs_b

    def __repr__(self) -> str:
        diffs = {
            key: (self.outputs_a.get(key), self.outputs_b.get(key))
            for key in set(self.outputs_a) | set(self.outputs_b)
            if self.outputs_a.get(key) != self.outputs_b.get(key)
        }
        return (f"Mismatch(cycle={self.cycle}, {self.stage_a} vs "
                f"{self.stage_b}: {diffs})")


class EquivalenceReport:
    """Outcome of a lockstep run."""

    def __init__(self, cycles: int, stages: Sequence[str],
                 mismatches: list[Mismatch]) -> None:
        self.cycles = cycles
        self.stages = list(stages)
        self.mismatches = mismatches
        #: Path of the side-by-side mismatch VCD, when one was written.
        self.vcd_path: str | None = None

    @property
    def equivalent(self) -> bool:
        """True when no stage ever diverged."""
        return not self.mismatches

    def __repr__(self) -> str:
        status = "OK" if self.equivalent else \
            f"{len(self.mismatches)} mismatch(es)"
        return (f"EquivalenceReport({' = '.join(self.stages)}, "
                f"{self.cycles} cycles: {status})")


class KernelStage:
    """Drives a fresh kernel-level module instance cycle by cycle."""

    name = "osss-sim"

    def __init__(self, factory: Callable[[Clock, Signal], Module],
                 observed: Sequence[str], reset_cycles: int = 2) -> None:
        self.clk = Clock("clk", 10 * NS)
        self.rst = Signal("rst", bit(), Bit(1))
        self.dut = factory(self.clk, self.rst)
        host = Module("eqtop")
        host.clk = self.clk
        host.rst = self.rst
        host.dut = self.dut
        self.sim = Simulator(host)
        self.observed = list(observed)
        for _ in range(reset_cycles):
            self.sim.run(10 * NS)
        self.rst.write(0)

    def step(self, inputs: Mapping[str, int]) -> dict[str, int]:
        self.sim.activate()
        for name, value in inputs.items():
            self.dut.port(name).drive(value)
        self.sim.run(10 * NS)
        result = {}
        for name in self.observed:
            port = self.dut.port(name)
            result[name] = port.spec.to_raw(port.read())
        return result


class RtlStage:
    """Drives an :class:`RtlSimulator` in lockstep."""

    name = "rtl"

    def __init__(self, rtl: RtlModule, observed: Sequence[str],
                 reset_cycles: int = 2) -> None:
        self.sim = RtlSimulator(rtl)
        self.observed = list(observed)
        for _ in range(reset_cycles):
            self.sim.step(reset=1)

    def step(self, inputs: Mapping[str, int]) -> dict[str, int]:
        self.sim.step(reset=0, **inputs)
        outputs = self.sim.peek_outputs()
        return {name: outputs[name] for name in self.observed}


class GateStage:
    """Drives a :class:`GateSimulator` in lockstep."""

    name = "netlist"

    def __init__(self, circuit, observed: Sequence[str],
                 reset_cycles: int = 2) -> None:
        self.sim = GateSimulator(circuit)
        self.observed = list(observed)
        for _ in range(reset_cycles):
            self.sim.step(reset=1)

    def step(self, inputs: Mapping[str, int]) -> dict[str, int]:
        self.sim.step(reset=0, **inputs)
        outputs = self.sim.peek_outputs()
        return {name: outputs[name] for name in self.observed}


def lockstep(stages: Sequence, stimulus: Iterable[Mapping[str, int]],
             max_mismatches: int = 5,
             vcd_on_mismatch: str | None = None,
             vcd_margin: int = 8) -> EquivalenceReport:
    """Run all *stages* over *stimulus*, comparing outputs each cycle.

    With *vcd_on_mismatch*, every stage's observed outputs are buffered
    per cycle; if any stage diverges, a side-by-side VCD (one scope per
    stage, timestamps in cycles) covering ``[first mismatch -
    vcd_margin, last mismatch + vcd_margin]`` is written to that path —
    the §12 debugging workflow ("inspect the intermediate on all
    levels") packaged as an artifact.
    """
    mismatches: list[Mismatch] = []
    samples: dict[str, list[tuple[int, dict[str, int]]]] = {
        stage.name: [] for stage in stages
    } if vcd_on_mismatch else {}
    cycles = 0

    def finish(cycles: int) -> EquivalenceReport:
        report = EquivalenceReport(cycles, [s.name for s in stages],
                                   mismatches)
        if vcd_on_mismatch and mismatches:
            writer, window = mismatch_window_vcd(
                samples,
                first_cycle=mismatches[0].cycle,
                last_cycle=mismatches[-1].cycle,
                margin=vcd_margin,
            )
            writer.write(vcd_on_mismatch, window)
            report.vcd_path = vcd_on_mismatch
        return report

    for cycle, entry in enumerate(stimulus):
        observations = [(stage.name, stage.step(entry)) for stage in stages]
        if vcd_on_mismatch:
            for stage_name, outputs in observations:
                samples[stage_name].append((cycle, outputs))
        reference_name, reference = observations[0]
        for other_name, outputs in observations[1:]:
            if outputs != reference:
                mismatches.append(Mismatch(cycle, reference_name,
                                           other_name, reference, outputs))
                if len(mismatches) >= max_mismatches:
                    return finish(cycle + 1)
        cycles = cycle + 1
    return finish(cycles)


def check_all_stages(
    factory: Callable[[Clock, Signal], Module],
    stimulus: Sequence[Mapping[str, int]],
    observed: Sequence[str],
    include_gates: bool = True,
    vcd_on_mismatch: str | None = None,
) -> EquivalenceReport:
    """The full R6 check: OSSS simulation = RTL = optimized netlist.

    *factory* builds a fresh DUT given (clock, reset); it is called twice —
    once for the kernel stage, once for synthesis — so state captured at
    synthesis time matches a fresh simulation.  *vcd_on_mismatch* dumps
    a three-stage side-by-side waveform around any divergence (see
    :func:`lockstep`).
    """
    kernel = KernelStage(factory, observed)
    rtl = synthesize(factory(Clock("clk", 10 * NS),
                             Signal("rst", bit(), Bit(1))))
    stages: list[Any] = [kernel, RtlStage(rtl, observed)]
    if include_gates:
        circuit = map_module(rtl)
        optimize(circuit)
        stages.append(GateStage(circuit, observed))
    # Reactivate the kernel stage's simulator (synthesis does not disturb
    # it, but constructing a second Simulator moved the active pointer).
    kernel.sim.activate()
    return lockstep(stages, stimulus, vcd_on_mismatch=vcd_on_mismatch)
