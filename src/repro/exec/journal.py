"""Crash-safe campaign journal (``repro-journal/v1``).

A campaign journal is an append-only JSONL file recording, in order:

1. a **header** line binding the journal to one exact campaign — the
   fingerprint digests the design, seed, stimulus, config and fault
   list, so a stale journal can never poison a different run (collapse
   mode is deliberately excluded: collapse is classification-preserving,
   so plain and collapsed runs of the same campaign share one journal);
2. a **meta** line with the golden-run metadata (written once, before
   any record, so even a journal truncated after one fault can rebuild
   the report header);
3. one **record** line per simulated unique fault, in whatever order
   results arrived.

Appends are flushed and ``fsync``'d one line at a time: after a crash —
including ``SIGKILL``, which gives no chance to clean up — the journal
is a valid prefix of the uninterrupted journal, possibly plus one torn
tail line.  :meth:`CampaignJournal.open` tolerates exactly that: it
loads the longest valid prefix and truncates the file back to it before
appending, so a resumed campaign continues from the last durable fault
and reproduces the byte-identical report an uninterrupted run would
have produced.

The journal is deliberately *not* content-addressed: it is mutable
in-progress state, not an artifact.  It lives next to the CAS (see
``ArtifactStore.journal_path``) so ``repro cache gc`` never collects it
and ``--resume`` can find it by campaign tag.
"""

from __future__ import annotations

import json
import os
from pathlib import Path
from typing import Any, Mapping

from repro.store.common import canonical_json

JOURNAL_SCHEMA = "repro-journal/v1"


class JournalError(RuntimeError):
    """The journal on disk cannot serve this campaign."""


def fault_key(doc: Mapping[str, Any]) -> str:
    """Stable identity of a fault dict, independent of dict key order."""
    return (f"{doc['kind']}|{doc['target']}|{doc['bit']}"
            f"@{doc['cycle']}")


class CampaignJournal:
    """Append-only journal for one fingerprinted campaign.

    ``open(resume=True)`` loads any durable prefix left by a previous
    run of the *same* campaign; ``resume=False`` always starts fresh
    (truncating whatever was there).  A journal written by a different
    campaign (fingerprint mismatch) or an unreadable header is treated
    as stale and replaced rather than trusted.
    """

    def __init__(self, path: str | Path, fingerprint: str) -> None:
        self.path = Path(path)
        self.fingerprint = fingerprint
        self.entries: dict[str, dict[str, Any]] = {}
        self.meta: dict[str, Any] | None = None
        self._fd: int | None = None

    # -- lifecycle ----------------------------------------------------

    def open(self, resume: bool = False) -> "CampaignJournal":
        self.path.parent.mkdir(parents=True, exist_ok=True)
        valid_bytes = self._load_prefix() if resume else 0
        if not resume:
            self.entries.clear()
            self.meta = None
        self._fd = os.open(self.path,
                           os.O_WRONLY | os.O_CREAT | os.O_APPEND, 0o644)
        os.ftruncate(self._fd, valid_bytes)
        if valid_bytes == 0:
            self._append({"schema": JOURNAL_SCHEMA,
                          "campaign": self.fingerprint})
        return self

    def close(self) -> None:
        if self._fd is not None:
            os.close(self._fd)
            self._fd = None

    def __enter__(self) -> "CampaignJournal":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    # -- appends ------------------------------------------------------

    def set_meta(self, meta: Mapping[str, Any]) -> None:
        """Record golden-run metadata (idempotent once written)."""
        if self.meta is not None:
            if dict(meta) != self.meta:
                raise JournalError(
                    "golden-run metadata changed between journal sessions "
                    "— the campaign is not deterministic"
                )
            return
        self.meta = dict(meta)
        self._append({"meta": self.meta})

    def append_record(self, doc: Mapping[str, Any]) -> None:
        """Durably append one simulated-fault record."""
        key = fault_key(doc["fault"])
        if key in self.entries:
            return
        self.entries[key] = dict(doc)
        self._append({"record": doc})

    def _append(self, line_doc: Mapping[str, Any]) -> None:
        if self._fd is None:
            raise JournalError("journal is not open")
        payload = canonical_json(line_doc).encode() + b"\n"
        os.write(self._fd, payload)
        os.fsync(self._fd)

    # -- recovery -----------------------------------------------------

    def _load_prefix(self) -> int:
        """Load the longest valid prefix; return its byte length.

        Returns 0 (start fresh) when the file is missing, its header is
        unreadable, or it belongs to a different campaign fingerprint.
        """
        try:
            raw = self.path.read_bytes()
        except OSError:
            return 0
        self.entries.clear()
        self.meta = None
        good = 0
        first = True
        for line in raw.splitlines(keepends=True):
            if not line.endswith(b"\n"):
                break  # torn tail: the final write never completed
            try:
                doc = json.loads(line)
            except ValueError:
                break  # torn tail — keep the prefix before it
            if first:
                if (doc.get("schema") != JOURNAL_SCHEMA
                        or doc.get("campaign") != self.fingerprint):
                    return 0  # stale or foreign journal: start fresh
                first = False
            elif "meta" in doc:
                self.meta = doc["meta"]
            elif "record" in doc:
                rec = doc["record"]
                self.entries[fault_key(rec["fault"])] = rec
            else:
                break  # unknown line kind — do not trust what follows
            good += len(line)
        return good
