"""Wall-clock deadlines for single tasks (``SIGALRM``-based).

The campaign engine budgets faults in *cycles* (``drain_budget``); this
module adds the orthogonal *wall-clock* budget: a fault whose replay
spins — a pathological hardening interaction, a simulator bug, an
adversarial netlist — is interrupted after a fixed number of seconds
instead of stalling the whole campaign.

Enforcement uses the POSIX interval timer (``signal.setitimer``), which
interrupts pure-Python work reliably because the signal handler runs
between bytecodes.  That mechanism only exists in a process's main
thread; :func:`time_limit` degrades to a no-op anywhere it cannot
enforce (non-POSIX platform, non-main thread), which is exactly the
graceful-degradation contract of the exec subsystem: supervised worker
processes run tasks on *their* main thread, so the common case is
enforced, and exotic embeddings lose the deadline, never correctness.

:class:`DeadlineExceeded` deliberately subclasses :class:`RuntimeError`
(not ``Exception``-escaping ``BaseException``): callers that legitimately
swallow task exceptions must explicitly re-raise it — the campaign's
classifier does (see ``fault/campaign.py``), so a timeout is never
misfiled as a *detected* fault.
"""

from __future__ import annotations

import signal
import threading
from contextlib import contextmanager
from typing import Iterator


class DeadlineExceeded(RuntimeError):
    """A task overran its wall-clock deadline (see :func:`time_limit`)."""


def can_enforce() -> bool:
    """True when :func:`time_limit` can actually interrupt work here."""
    return (
        hasattr(signal, "setitimer")
        and threading.current_thread() is threading.main_thread()
    )


@contextmanager
def time_limit(seconds: float | None, label: str = "") -> Iterator[None]:
    """Run the body under a wall-clock deadline of *seconds*.

    ``None`` (or a non-positive value) disables the deadline; when the
    platform cannot enforce (see :func:`can_enforce`) the body runs
    unbounded rather than failing.  On expiry the body is interrupted
    with :class:`DeadlineExceeded` naming *label*.

    The previous ``SIGALRM`` disposition and any outer itimer are
    restored on exit, so nesting inside a larger alarm-based budget
    truncates, never corrupts, the outer timer.
    """
    if seconds is None or seconds <= 0 or not can_enforce():
        yield
        return

    def _expired(signum, frame):  # pragma: no cover - trivially thin
        raise DeadlineExceeded(
            f"{label or 'task'} exceeded its {seconds}s deadline"
        )

    previous_handler = signal.signal(signal.SIGALRM, _expired)
    previous_timer, _ = signal.setitimer(signal.ITIMER_REAL, seconds)
    try:
        yield
    finally:
        signal.setitimer(signal.ITIMER_REAL, previous_timer)
        signal.signal(signal.SIGALRM, previous_handler)
