"""Supervised worker pool: crash detection, re-queue, bounded respawn.

``multiprocessing.Pool`` assumes workers are immortal: a worker killed
mid-task (OOM killer, segfault, operator ``kill -9``) either hangs
``pool.map`` forever or loses the task silently.  Campaign shards are
too expensive to lose and too deterministic to need loose semantics, so
:class:`SupervisedPool` trades generality for supervision:

* every worker owns a **private task pipe and result pipe** and holds
  at most **one task in flight** — when a worker dies the parent knows
  *exactly* which task died with it and re-queues that one task,
  nothing else.  Per-worker pipes (instead of one shared result queue)
  mean a worker killed mid-write corrupts only its own channel, which
  the parent reads to EOF and discards — there is no shared lock or
  feeder thread a dying worker can poison for its siblings;
* liveness is tracked from both sides: ``Process.is_alive``/exit codes
  catch crashes, message timestamps act as heartbeats, and a parent-side
  backstop ``SIGKILL``s workers stuck past twice the task deadline
  (covering hangs in C extensions that ``SIGALRM`` cannot interrupt);
* dead workers are **respawned** against a bounded budget with
  exponential backoff; when the budget runs out the pool degrades to
  in-process sequential execution with a one-line warning — the run
  completes either way;
* a task overrunning its wall-clock deadline (worker-side
  :func:`~repro.exec.deadline.time_limit`) is retried on a fresh worker
  up to *max_retries* times, then **quarantined** — reported as a
  failure, never silently dropped;
* teardown is deliberate: ``KeyboardInterrupt`` (or any error) tears
  workers down with terminate → join → kill → join, so no zombies
  outlive the pool.

Tasks must be independent and deterministic — the pool may execute a
task twice when a worker dies between completing it and the parent
reading the result, and it deduplicates by task index on the assumption
both executions agree.  That is exactly the campaign contract.

Chaos hook: setting ``REPRO_CHAOS_KILL`` to a probability makes every
worker ``os._exit(42)`` with that probability on each task receipt —
the supervision path is then exercised for real by the test suite and
the CI resilience-smoke job.

Two driving modes share the same supervision machinery:

* :meth:`SupervisedPool.run` — the original batch mode: a fixed task
  list in, results out, used by fault campaigns;
* the **stream mode** (:meth:`start_stream` / :meth:`submit_stream` /
  :meth:`pump` / :meth:`cancel_stream` / :meth:`stop_stream`) — tasks
  arrive one at a time over the pool's lifetime and completions are
  delivered through callbacks, which is what a long-lived job server
  (``repro serve``) needs.  Stream tasks may additionally emit
  progress **events**: a session exposing ``bind_emitter(emit)`` gets
  a callable that ships any JSON-able payload back to the parent's
  ``on_event`` callback while the task is still running.
"""

from __future__ import annotations

import multiprocessing
import multiprocessing.connection
import os
import pickle
import random
import signal
import sys
import time
from collections import deque
from dataclasses import dataclass, field
from typing import Any, Callable, Mapping, Sequence

from repro.exec.deadline import DeadlineExceeded, time_limit

#: Environment variable enabling the chaos-kill hook (a probability).
CHAOS_ENV = "REPRO_CHAOS_KILL"

#: Exit code of a chaos-killed worker (distinguishable in reap logs).
_CHAOS_EXIT = 42

_POLL_S = 0.02
_JOIN_GRACE_S = 2.0


class PoolError(RuntimeError):
    """The pool cannot make progress (broken factory, failed task)."""


class TaskPickleError(PoolError):
    """The session factory does not survive the start method's pickling."""


class MetaMismatchError(PoolError):
    """Two workers disagree on session metadata (non-deterministic setup)."""


def _fresh_stats(jobs: int) -> dict[str, int]:
    return {
        "jobs": jobs,
        "respawns": 0,
        "crashes": 0,
        "crash_requeues": 0,
        "timeouts": 0,
        "timeout_retries": 0,
        "quarantined": 0,
        "hung_kills": 0,
        "init_errors": 0,
        "fallback": 0,
        "inline_tasks": 0,
        "cancel_kills": 0,
    }


def _worker_main(worker_id: int, session_factory: Callable[[], Any],
                 task_conn, result_conn, task_timeout: float | None,
                 chaos_p: float) -> None:
    """Worker loop: build the session once, then run tasks until sentinel.

    The parent owns interrupt handling; workers ignore ``SIGINT`` so a
    Ctrl-C reaches only the supervisor, which tears them down in order.
    Every message leads with ``(kind, worker_id, ...)``; all traffic
    rides this worker's private pipes, so nothing this worker does —
    including dying mid-send — can stall another worker.
    """
    signal.signal(signal.SIGINT, signal.SIG_IGN)
    rng = random.Random(os.getpid())

    def send(msg: tuple) -> None:
        try:
            result_conn.send(msg)
        except (BrokenPipeError, OSError):  # pragma: no cover
            os._exit(1)  # parent is gone: die quietly, not noisily

    t0 = time.perf_counter()
    try:
        session = session_factory()
    except BaseException as exc:
        send(("init_error", worker_id, f"{type(exc).__name__}: {exc}"))
        return
    # Stream-mode progress feed: a session exposing ``bind_emitter``
    # gets a callable shipping JSON-able payloads to the parent's
    # ``on_event`` callback, tagged with the task index in flight.
    current_idx: list[Any] = [None]
    bind = getattr(session, "bind_emitter", None)
    if callable(bind):
        bind(lambda payload: send(("event", worker_id, current_idx[0],
                                   payload)))
    send(("ready", worker_id, getattr(session, "meta", None),
          time.perf_counter() - t0))
    tasks = 0
    busy_s = 0.0
    while True:
        try:
            item = task_conn.recv()
        except (EOFError, OSError):
            return  # parent is gone: nothing useful left to do
        if item is None:
            break
        idx, payload = item
        current_idx[0] = idx
        if chaos_p and rng.random() < chaos_p:
            os._exit(_CHAOS_EXIT)  # simulated hard crash: no cleanup at all
        start = time.perf_counter()
        try:
            with time_limit(task_timeout, label=f"task[{idx}]"):
                value = session.run(payload)
        except DeadlineExceeded as exc:
            send(("timeout", worker_id, idx, str(exc)))
        except BaseException as exc:
            send(("task_error", worker_id, idx,
                  f"{type(exc).__name__}: {exc}"))
        else:
            tasks += 1
            busy_s += time.perf_counter() - start
            send(("ok", worker_id, idx, value))
    stats = getattr(session, "stats", None)
    send(("bye", worker_id, {
        "tasks": tasks,
        "busy_s": busy_s,
        "sim_stats": stats() if callable(stats) else None,
    }))


@dataclass
class _Worker:
    """Parent-side view of one worker process."""

    id: int
    process: Any
    task_conn: Any
    result_conn: Any
    started: float
    ready: bool = False
    retiring: bool = False
    broken: bool = False
    eof: bool = False
    inflight: int | None = None
    dispatched_at: float = 0.0
    last_beat: float = 0.0
    golden_s: float | None = None
    tasks: int = 0
    summary: dict[str, Any] | None = None
    recorded: bool = False


@dataclass
class PoolOutcome:
    """Everything one :meth:`SupervisedPool.run` produced."""

    results: dict[int, Any]
    failures: dict[int, dict[str, str]]
    meta: Any
    stats: dict[str, int] = field(default_factory=dict)


class SupervisedPool:
    """Run independent tasks on supervised worker processes.

    Parameters
    ----------
    session_factory:
        Zero-argument callable building the per-worker session: an
        object with a ``run(task)`` method, an optional ``meta``
        attribute (checked for cross-worker consistency) and an
        optional ``stats()`` method (rolled into worker trace spans).
        Must be picklable under non-fork start methods.
    jobs:
        Worker process count; ``jobs <= 1`` runs everything in-process.
    task_timeout:
        Per-task wall-clock deadline in seconds (``None`` disables).
    max_retries:
        How many times a timed-out task is retried on a fresh worker
        before quarantine.
    max_respawns:
        Total respawn budget; default ``8 + 4 * jobs``.  When spent,
        remaining work degrades to in-process execution.
    start_method:
        Explicit multiprocessing start method; default fork-preferred.
    tracer:
        Optional :class:`repro.obs.Tracer`; each worker's lifetime is
        recorded as a ``worker[n]`` span under the caller's open span.
    """

    def __init__(self, session_factory: Callable[[], Any], jobs: int, *,
                 task_timeout: float | None = None, max_retries: int = 1,
                 max_respawns: int | None = None,
                 start_method: str | None = None,
                 backoff_s: float = 0.02, tracer=None) -> None:
        from repro.obs.profiler import NULL_TRACER

        self.session_factory = session_factory
        self.jobs = max(1, int(jobs))
        self.task_timeout = task_timeout
        self.max_retries = max(0, int(max_retries))
        self.max_respawns = (8 + 4 * self.jobs if max_respawns is None
                             else max(0, int(max_respawns)))
        self.start_method = start_method
        self.backoff_s = backoff_s
        self.tracer = tracer or NULL_TRACER
        self.chaos_p = float(os.environ.get(CHAOS_ENV) or 0.0)
        self.stats = _fresh_stats(self.jobs)
        self._workers: dict[int, _Worker] = {}
        self._next_id = 0
        self._respawns = 0
        self._meta: Any = None
        self._meta_seen = False
        self._ctx = None
        self._stream: dict[str, Any] | None = None
        self._on_event: Callable[[int, Any], None] | None = None

    # ------------------------------------------------------------------
    # public API
    # ------------------------------------------------------------------
    def run(self, tasks: Sequence[Any], *,
            on_result: Callable[[int, Any], None] | None = None,
            on_meta: Callable[[Any], None] | None = None) -> PoolOutcome:
        """Run every task; returns results/failures keyed by task index.

        *on_result* fires exactly once per task index as its result
        becomes durable in the parent (the campaign journals there);
        *on_meta* fires once with the first worker's session metadata
        and may raise to abort the run (e.g. resume-consistency checks).
        """
        self.stats = _fresh_stats(self.jobs)
        self._meta = None
        self._meta_seen = False
        self._respawns = 0
        results: dict[int, Any] = {}
        failures: dict[int, dict[str, str]] = {}
        retries: dict[int, int] = {}
        tasks = list(tasks)
        if not tasks:
            return PoolOutcome(results, failures, self._meta, self.stats)
        if self.jobs <= 1 or len(tasks) == 1:
            self._run_inline(tasks, range(len(tasks)), results, failures,
                             retries, on_result, on_meta)
            return PoolOutcome(results, failures, self._meta, self.stats)
        try:
            self._supervise(tasks, results, failures, retries,
                            on_result, on_meta)
        except BaseException:
            self._shutdown(force=True)
            raise
        self._shutdown(force=False)
        return PoolOutcome(results, failures, self._meta, self.stats)

    # ------------------------------------------------------------------
    # stream mode (long-lived servers)
    # ------------------------------------------------------------------
    def start_stream(self, *,
                     on_result: Callable[[int, Any], None],
                     on_failure: Callable[[int, Mapping[str, str]], None],
                     on_event: Callable[[int, Any], None] | None = None,
                     on_meta: Callable[[Any], None] | None = None) -> bool:
        """Spawn workers for open-ended task submission.

        Returns ``False`` when process workers are unavailable
        (``jobs <= 1``, no start method, unpicklable factory, spawn
        failure) — the caller then runs tasks itself.  On ``True``,
        feed tasks via :meth:`submit_stream`, drive delivery with
        :meth:`pump`, and finish with :meth:`stop_stream`.  Exactly one
        of *on_result* / *on_failure* fires per submitted index (unless
        the index is cancelled first); *on_event* relays worker-side
        progress payloads as ``(idx, payload)`` while tasks run.
        """
        self.stats = _fresh_stats(self.jobs)
        self._meta = None
        self._meta_seen = False
        self._respawns = 0
        if self.jobs <= 1:
            return False
        try:
            self._ctx = self._context()
        except ValueError:
            return False
        if self._ctx.get_start_method() != "fork":
            try:
                pickle.dumps(self.session_factory)
            except Exception:
                return False
        self._on_event = on_event
        self._stream = {
            "tasks": {},        # idx -> payload (pruned once resolved)
            "pending": deque(),
            "results": {},      # idx -> None tombstone after delivery
            "failures": {},
            "retries": {},
            "reported": set(),
            "on_result": on_result,
            "on_failure": on_failure,
            "on_meta": on_meta,
        }
        for _ in range(self.jobs):
            self._spawn()
        if not self._workers:
            self._stream = None
            self._on_event = None
            return False
        return True

    def submit_stream(self, idx: int, task: Any) -> None:
        """Queue one task under a caller-chosen unique index."""
        stream = self._stream
        if stream is None:
            raise PoolError("submit_stream outside an active stream")
        stream["tasks"][idx] = task
        stream["pending"].append(idx)

    def pump(self, block: bool = False) -> int:
        """Dispatch, collect and deliver; returns unresolved task count.

        Call in a loop (``block=True`` waits one poll interval for
        worker traffic).  All callbacks fire on the pumping thread.
        """
        stream = self._stream
        if stream is None:
            return 0
        results, failures = stream["results"], stream["failures"]
        pending, retries = stream["pending"], stream["retries"]
        unresolved = any(idx not in results and idx not in failures
                         for idx in pending)
        if unresolved and not self._workers:
            if self._spawn(respawn=True) is None:
                self._degrade_stream()
        self._dispatch(stream["tasks"], pending, results, failures)
        msg = self._poll(block=block)
        while msg is not None:
            self._handle(msg, results, failures, pending, retries,
                         self._deliver_result, stream["on_meta"])
            msg = self._poll(block=False)
        self._reap(pending, results, failures, retries,
                   self._deliver_result, stream["on_meta"])
        self._deliver_failures()
        return len(stream["tasks"])

    def cancel_stream(self, idx: int) -> bool:
        """Abandon one task: drop it if queued, kill its worker if not.

        Returns ``False`` when the index is unknown or already
        resolved.  A killed worker is replaced outside the respawn
        budget — cancellation is an orderly operation, not a crash.
        """
        stream = self._stream
        if stream is None:
            return False
        if idx not in stream["tasks"]:
            return False
        if idx in stream["results"] or idx in stream["failures"]:
            return False
        stream["failures"][idx] = {"error": "cancelled",
                                   "detail": "cancelled by caller"}
        stream["reported"].add(idx)
        stream["tasks"].pop(idx, None)
        for worker in list(self._workers.values()):
            if worker.inflight != idx:
                continue
            worker.process.kill()
            worker.process.join()
            self._record_worker(worker)
            self._close_conns(worker)
            del self._workers[worker.id]
            self.stats["cancel_kills"] += 1
            self._spawn()
            break
        return True

    def stop_stream(self) -> None:
        """Tear the stream's workers down (graceful, then forceful)."""
        if self._stream is None:
            return
        try:
            self._shutdown(force=False)
        finally:
            self._stream = None
            self._on_event = None

    def _deliver_result(self, idx: int, value: Any) -> None:
        stream = self._stream
        if idx in stream["reported"]:
            return
        stream["reported"].add(idx)
        stream["tasks"].pop(idx, None)
        stream["on_result"](idx, value)
        # Keep a tombstone so duplicate/late messages stay resolved,
        # but drop the payload — the stream may live for days.
        stream["results"][idx] = None

    def _deliver_failures(self) -> None:
        stream = self._stream
        for idx, info in list(stream["failures"].items()):
            if idx in stream["reported"]:
                continue
            stream["reported"].add(idx)
            stream["tasks"].pop(idx, None)
            stream["on_failure"](idx, info)

    def _degrade_stream(self) -> None:
        """Workers are gone for good: fail whatever is still queued."""
        stream = self._stream
        self.stats["fallback"] = 1
        sys.stderr.write(
            "repro: supervised pool stream degraded: respawn budget "
            "spent; failing queued tasks back to the caller\n"
        )
        for idx in stream["pending"]:
            if idx in stream["results"] or idx in stream["failures"]:
                continue
            stream["failures"][idx] = {
                "error": "degraded",
                "detail": "worker pool exhausted its respawn budget",
            }
        stream["pending"].clear()

    # ------------------------------------------------------------------
    # supervised execution
    # ------------------------------------------------------------------
    def _supervise(self, tasks, results, failures, retries,
                   on_result, on_meta) -> None:
        total = len(tasks)
        try:
            self._ctx = self._context()
        except ValueError as exc:
            self._degrade(f"no usable start method ({exc})")
            self._run_inline(tasks, range(total), results, failures,
                             retries, on_result, on_meta)
            return
        if self._ctx.get_start_method() != "fork":
            try:
                pickle.dumps(self.session_factory)
            except Exception as exc:
                raise TaskPickleError(
                    "session factory does not pickle under the "
                    f"{self._ctx.get_start_method()!r} start method: "
                    f"{type(exc).__name__}: {exc}"
                ) from exc
        for _ in range(min(self.jobs, total)):
            self._spawn()
        pending: deque[int] = deque(range(total))
        while len(results) + len(failures) < total:
            if not self._workers:
                if self._spawn(respawn=True) is None:
                    self._degrade(
                        "no workers left and the respawn budget is spent"
                    )
                    remaining = [i for i in range(total)
                                 if i not in results and i not in failures]
                    self._run_inline(tasks, remaining, results, failures,
                                     retries, on_result, on_meta)
                    return
            self._dispatch(tasks, pending, results, failures)
            msg = self._poll(block=True)
            while msg is not None:
                self._handle(msg, results, failures, pending, retries,
                             on_result, on_meta)
                msg = self._poll(block=False)
            self._reap(pending, results, failures, retries,
                       on_result, on_meta)

    def _context(self):
        if self.start_method:
            return multiprocessing.get_context(self.start_method)
        try:
            return multiprocessing.get_context("fork")
        except ValueError:  # pragma: no cover - non-POSIX platforms
            return multiprocessing.get_context("spawn")

    def _spawn(self, respawn: bool = False) -> _Worker | None:
        if respawn:
            if self._respawns >= self.max_respawns:
                return None
            self._respawns += 1
            self.stats["respawns"] += 1
            # Exponential backoff: a crashing environment (OOM, chaos
            # storms) gets breathing room instead of a fork bomb.
            time.sleep(min(1.0, self.backoff_s * 2 ** min(self._respawns, 6)))
        wid = self._next_id
        self._next_id += 1
        task_recv, task_send = self._ctx.Pipe(duplex=False)
        result_recv, result_send = self._ctx.Pipe(duplex=False)
        process = self._ctx.Process(
            target=_worker_main,
            args=(wid, self.session_factory, task_recv, result_send,
                  self.task_timeout, self.chaos_p),
            daemon=True,
        )
        try:
            process.start()
        except OSError:
            return None
        # Close the child's pipe ends in the parent so a dead child
        # shows up as EOF on result_recv instead of an eternal block.
        task_recv.close()
        result_send.close()
        worker = _Worker(wid, process, task_send, result_recv,
                         started=time.monotonic())
        self._workers[wid] = worker
        return worker

    def _dispatch(self, tasks, pending, results, failures) -> None:
        for worker in self._workers.values():
            if (not worker.ready or worker.retiring or worker.broken
                    or worker.inflight is not None
                    or not worker.process.is_alive()):
                continue
            idx = None
            while pending:
                candidate = pending.popleft()
                if candidate in results or candidate in failures:
                    continue  # resolved while re-queued
                idx = candidate
                break
            if idx is None:
                return
            worker.inflight = idx
            worker.dispatched_at = time.monotonic()
            try:
                worker.task_conn.send((idx, tasks[idx]))
            except (BrokenPipeError, OSError, ValueError):
                worker.inflight = None
                pending.appendleft(idx)

    def _poll(self, block: bool) -> tuple | None:
        """Read one message from whichever worker pipe is ready.

        A connection at EOF (its worker died) is flagged and skipped on
        later polls; :meth:`_reap` handles the corpse.  Per-worker pipes
        mean one worker's death can never stall another's channel.
        """
        conns = {worker.result_conn: worker
                 for worker in self._workers.values() if not worker.eof}
        if not conns:
            if block:
                time.sleep(_POLL_S)
            return None
        timeout = _POLL_S if block else 0
        for conn in multiprocessing.connection.wait(list(conns), timeout):
            try:
                return conn.recv()
            except (EOFError, OSError):
                conns[conn].eof = True
        return None

    def _handle(self, msg, results, failures, pending, retries,
                on_result, on_meta) -> None:
        kind, wid = msg[0], msg[1]
        worker = self._workers.get(wid)
        if worker is not None:
            worker.last_beat = time.monotonic()
        if kind == "ready":
            if worker is not None:
                worker.ready = True
                worker.golden_s = msg[3]
            self._check_meta(msg[2], on_meta)
        elif kind == "ok":
            idx, value = msg[2], msg[3]
            if worker is not None and worker.inflight == idx:
                worker.inflight = None
                worker.tasks += 1
            if idx in results or idx in failures:
                return  # duplicate: crashed worker's task already redone
            results[idx] = value
            if on_result is not None:
                on_result(idx, value)
        elif kind == "timeout":
            idx = msg[2]
            if worker is not None and worker.inflight == idx:
                worker.inflight = None
            self.stats["timeouts"] += 1
            self._after_timeout(idx, msg[3], results, failures, pending,
                                retries)
            if worker is not None:
                self._retire(worker)
        elif kind == "event":
            if self._on_event is not None and msg[2] is not None:
                self._on_event(msg[2], msg[3])
        elif kind == "task_error":
            if self._stream is not None:
                # A long-lived server must outlive one bad job: record
                # the failure against the task and keep the worker.
                idx = msg[2]
                if worker is not None and worker.inflight == idx:
                    worker.inflight = None
                if idx not in results and idx not in failures:
                    failures[idx] = {"error": "task_error",
                                     "detail": str(msg[3])}
                return
            raise PoolError(f"worker task {msg[2]} failed: {msg[3]}")
        elif kind == "init_error":
            # The factory raised in the child.  Don't respawn a doomed
            # worker; if every worker breaks this way the main loop
            # degrades to in-process, where the real traceback surfaces.
            self.stats["init_errors"] += 1
            if worker is not None:
                worker.broken = True
                worker.retiring = True
        elif kind == "bye":
            if worker is not None:
                worker.summary = msg[2]
                worker.inflight = None

    def _check_meta(self, meta, on_meta) -> None:
        if not self._meta_seen:
            self._meta = meta
            self._meta_seen = True
            if on_meta is not None:
                on_meta(meta)
        elif meta != self._meta:
            raise MetaMismatchError(
                f"workers disagree on session metadata ({meta!r} != "
                f"{self._meta!r}); the session factory is not "
                "deterministic across processes"
            )

    def _after_timeout(self, idx, detail, results, failures, pending,
                       retries) -> None:
        if idx in results or idx in failures:
            return
        attempts = retries.get(idx, 0)
        if attempts < self.max_retries:
            retries[idx] = attempts + 1
            self.stats["timeout_retries"] += 1
            pending.appendleft(idx)
        else:
            failures[idx] = {"error": "timed_out", "detail": str(detail)}
            self.stats["quarantined"] += 1

    def _retire(self, worker: _Worker) -> None:
        """Stop giving a worker tasks and replace it with a fresh one."""
        if worker.retiring:
            return
        worker.retiring = True
        try:
            worker.task_conn.send(None)
        except (BrokenPipeError, OSError, ValueError):  # pragma: no cover
            pass
        self._spawn(respawn=True)

    def _drain_conn(self, worker, results, failures, pending, retries,
                    on_result, on_meta) -> None:
        """Read out everything a (dead) worker managed to send."""
        while not worker.eof:
            try:
                if not worker.result_conn.poll(0):
                    return
                msg = worker.result_conn.recv()
            except (EOFError, OSError):
                worker.eof = True
                return
            self._handle(msg, results, failures, pending, retries,
                         on_result, on_meta)

    def _close_conns(self, worker: _Worker) -> None:
        for conn in (worker.task_conn, worker.result_conn):
            try:
                conn.close()
            except OSError:  # pragma: no cover - already closed
                pass

    def _reap(self, pending, results, failures, retries,
              on_result, on_meta) -> None:
        now = time.monotonic()
        for wid, worker in list(self._workers.items()):
            process = worker.process
            if not process.is_alive():
                process.join()
                # A worker may die (or exit) with results still in its
                # pipe; those are real, durable work — read them before
                # judging the corpse, or a crash just after an "ok"
                # send would re-run (harmless) or miscount the task.
                self._drain_conn(worker, results, failures, pending,
                                 retries, on_result, on_meta)
                self._record_worker(worker)
                self._close_conns(worker)
                del self._workers[wid]
                clean = (process.exitcode == 0 and worker.inflight is None
                         and (worker.retiring or worker.summary is not None))
                if clean or worker.broken:
                    continue
                self.stats["crashes"] += 1
                idx = worker.inflight
                if (idx is not None and idx not in results
                        and idx not in failures):
                    pending.appendleft(idx)
                    self.stats["crash_requeues"] += 1
                self._spawn(respawn=True)
            elif (self.task_timeout is not None
                    and worker.inflight is not None
                    and now - worker.dispatched_at
                    > self.task_timeout * 2 + _JOIN_GRACE_S):
                # Backstop for hangs SIGALRM can't interrupt (C loops).
                process.kill()
                process.join()
                self._record_worker(worker)
                self._close_conns(worker)
                del self._workers[wid]
                self.stats["hung_kills"] += 1
                self.stats["timeouts"] += 1
                self._after_timeout(
                    worker.inflight,
                    f"worker hung past {self.task_timeout * 2:.1f}s "
                    "backstop and was killed",
                    results, failures, pending, retries,
                )
                self._spawn(respawn=True)

    # ------------------------------------------------------------------
    # inline (degraded / jobs=1) execution
    # ------------------------------------------------------------------
    def _run_inline(self, tasks, indices, results, failures, retries,
                    on_result, on_meta) -> None:
        session = self.session_factory()
        self._check_meta(getattr(session, "meta", None), on_meta)
        for idx in indices:
            if idx in results or idx in failures:
                continue
            while True:
                try:
                    with time_limit(self.task_timeout,
                                    label=f"task[{idx}]"):
                        value = session.run(tasks[idx])
                except DeadlineExceeded as exc:
                    self.stats["timeouts"] += 1
                    attempts = retries.get(idx, 0)
                    if attempts < self.max_retries:
                        retries[idx] = attempts + 1
                        self.stats["timeout_retries"] += 1
                        continue
                    failures[idx] = {"error": "timed_out",
                                     "detail": str(exc)}
                    self.stats["quarantined"] += 1
                    break
                else:
                    self.stats["inline_tasks"] += 1
                    results[idx] = value
                    if on_result is not None:
                        on_result(idx, value)
                    break
        stats = getattr(session, "stats", None)
        if callable(stats):
            summary = stats()
            if summary is not None:
                self.tracer.record("inline", 0.0, sim_stats=summary)

    def _degrade(self, reason: str) -> None:
        self.stats["fallback"] = 1
        sys.stderr.write(
            f"repro: supervised pool degraded to in-process execution: "
            f"{reason}\n"
        )
        self._shutdown(force=True)

    # ------------------------------------------------------------------
    # teardown
    # ------------------------------------------------------------------
    def _record_worker(self, worker: _Worker) -> None:
        if worker.recorded:
            return
        worker.recorded = True
        summary = worker.summary or {}
        self.tracer.record(
            f"worker[{worker.id}]",
            time.monotonic() - worker.started,
            tasks=summary.get("tasks", worker.tasks),
            busy_s=round(summary.get("busy_s", 0.0), 6),
            golden_s=(round(worker.golden_s, 6)
                      if worker.golden_s is not None else None),
            exitcode=worker.process.exitcode,
            sim_stats=summary.get("sim_stats"),
        )

    def _shutdown(self, force: bool) -> None:
        """Tear every worker down; guarantee no process outlives us.

        Graceful path: sentinel each worker, drain their ``bye``
        summaries briefly, join.  Either path ends in terminate → join
        → kill → join for whatever is still alive, so an interrupted
        campaign (the KeyboardInterrupt regression) leaves no zombies.
        """
        workers = list(self._workers.values())
        if not force and workers:
            for worker in workers:
                try:
                    worker.task_conn.send(None)
                except (BrokenPipeError, OSError, ValueError):
                    pass
            deadline = time.monotonic() + _JOIN_GRACE_S
            while (time.monotonic() < deadline
                   and any(w.summary is None and w.process.is_alive()
                           for w in workers)):
                msg = self._poll(block=True)
                if msg and msg[0] == "bye":
                    for worker in workers:
                        if worker.id == msg[1]:
                            worker.summary = msg[2]
            for worker in workers:
                worker.process.join(max(0.0, deadline - time.monotonic()))
        self._workers.clear()
        for worker in workers:
            process = worker.process
            if process.is_alive():
                process.terminate()
                process.join(_JOIN_GRACE_S)
            if process.is_alive():  # pragma: no cover - stubborn child
                process.kill()
                process.join()
            self._record_worker(worker)
            self._close_conns(worker)
