"""Resilient execution primitives: supervision, deadlines, journaling.

This package is deliberately campaign-agnostic — it moves tasks through
worker processes and durable journals without knowing what a fault or a
report is.  ``repro.fault.campaign`` composes the three pieces:
:class:`SupervisedPool` for crash-tolerant parallel shards,
:func:`time_limit` for per-task wall-clock deadlines, and
:class:`CampaignJournal` for crash-safe checkpoint/resume.
"""

from repro.exec.deadline import DeadlineExceeded, can_enforce, time_limit
from repro.exec.journal import (
    JOURNAL_SCHEMA,
    CampaignJournal,
    JournalError,
    fault_key,
)
from repro.exec.pool import (
    CHAOS_ENV,
    MetaMismatchError,
    PoolError,
    PoolOutcome,
    SupervisedPool,
    TaskPickleError,
)

__all__ = [
    "CHAOS_ENV",
    "JOURNAL_SCHEMA",
    "CampaignJournal",
    "DeadlineExceeded",
    "JournalError",
    "MetaMismatchError",
    "PoolError",
    "PoolOutcome",
    "SupervisedPool",
    "TaskPickleError",
    "can_enforce",
    "fault_key",
    "time_limit",
]
