"""Structural RTL checks.

A light linter run by both flows before technology mapping: undriven
registers and combinational loops are hard errors; unused inputs and
unread registers are reported as warnings (a real flow would prune them;
ours reports so the area comparison stays honest).
"""

from __future__ import annotations

from repro.rtl.ir import Expr, Read, RtlModule
from repro.rtl.simulate import RtlSimulator


class LintReport:
    """Warnings found by :func:`lint_module` (errors raise instead)."""

    def __init__(self) -> None:
        self.unused_inputs: list[str] = []
        self.unread_registers: list[str] = []

    @property
    def clean(self) -> bool:
        """True when no warnings were recorded."""
        return not (self.unused_inputs or self.unread_registers)

    def __repr__(self) -> str:
        return (
            f"LintReport(unused_inputs={self.unused_inputs}, "
            f"unread_registers={self.unread_registers})"
        )


def _reads_in(module: RtlModule) -> set[int]:
    seen: set[int] = set()
    reads: set[int] = set()

    def visit(expr: Expr) -> None:
        if id(expr) in seen:
            return
        seen.add(id(expr))
        if isinstance(expr, Read):
            reads.add(expr.carrier.uid)
        for child in expr.children():
            visit(child)

    def walk(mod: RtlModule) -> None:
        for expr in mod.iter_exprs():
            visit(expr)
        for instance in mod.instances:
            walk(instance.module)

    walk(module)
    return reads


def lint_module(module: RtlModule) -> LintReport:
    """Validate *module*; raises on errors, returns warnings.

    Errors: undriven register (``validate``), combinational loop (detected
    by a zero-cycle evaluation of the whole tree).
    """
    module.validate()
    RtlSimulator(module).check_no_comb_loops()

    report = LintReport()
    reads = _reads_in(module)

    def walk(mod: RtlModule, prefix: str) -> None:
        for name, carrier in mod.inputs.items():
            if carrier.uid not in reads:
                report.unused_inputs.append(f"{prefix}{name}")
        for reg in mod.registers:
            if reg.uid not in reads:
                report.unread_registers.append(f"{prefix}{reg.name}")
        for instance in mod.instances:
            walk(instance.module, f"{prefix}{instance.name}.")

    walk(module, "")
    return report
