"""RTL substrate: IR, builder, cycle-accurate simulator and linter."""

from repro.rtl.build import RtlBuilder
from repro.rtl.ir import (
    BinOp,
    Carrier,
    Concat,
    Const,
    Expr,
    InputCarrier,
    Instance,
    Mux,
    Read,
    Register,
    Resize,
    RtlError,
    RtlModule,
    ShiftConst,
    ShiftDyn,
    Slice,
    UnaryOp,
    WireCarrier,
    mux,
)
from repro.rtl.lint import LintReport, lint_module
from repro.rtl.simulate import CombinationalLoopError, RtlSimulator
from repro.rtl.verilog import VerilogWriter, to_verilog

__all__ = [
    "BinOp",
    "Carrier",
    "CombinationalLoopError",
    "Concat",
    "Const",
    "Expr",
    "InputCarrier",
    "Instance",
    "LintReport",
    "Mux",
    "Read",
    "Register",
    "Resize",
    "RtlBuilder",
    "RtlError",
    "RtlModule",
    "RtlSimulator",
    "ShiftConst",
    "ShiftDyn",
    "Slice",
    "UnaryOp",
    "WireCarrier",
    "VerilogWriter",
    "lint_module",
    "mux",
    "to_verilog",
]
