"""Fluent RTL construction — the "VHDL flow" design entry.

:class:`RtlBuilder` is how the hand-written baseline (``repro.baseline``)
describes hardware the way the paper's reference designers wrote VHDL RTL:
explicit registers, explicit next-value logic, explicit FSM encodings.  It
is deliberately *lower level* than the OSSS path — that asymmetry is the
comparison the paper's Results section draws.

The builder adds exactly one convenience the raw IR lacks: a declared reset
input is automatically folded into every register's next-value expression
(``next = reset ? reset_value : user_next``), matching the synchronous
reset the behavioral synthesizer emits, so both flows share identical reset
semantics.
"""

from __future__ import annotations

from typing import Any

from repro.rtl.ir import (
    Const,
    Expr,
    InputCarrier,
    Instance,
    Mux,
    Read,
    Register,
    RtlError,
    RtlModule,
)
from repro.types.spec import TypeSpec, bit


class RtlBuilder:
    """Imperative construction helper for :class:`RtlModule`.

    Parameters
    ----------
    name:
        Module name.
    reset_port:
        Name of the synchronous reset input to declare, or None for a
        module without reset.
    """

    def __init__(self, name: str, reset_port: str | None = "reset") -> None:
        self.module = RtlModule(name)
        self._reset: InputCarrier | None = None
        self._pending_next: dict[int, tuple[Register, Expr]] = {}
        if reset_port is not None:
            self._reset = self.module.add_input(reset_port, bit())
            self.module.attributes["reset_port"] = reset_port

    # ------------------------------------------------------------------
    # declarations
    # ------------------------------------------------------------------
    def input(self, name: str, spec: TypeSpec) -> Read:
        """Declare an input port; returns a read expression."""
        return Read(self.module.add_input(name, spec))

    def output(self, name: str, expr: Expr) -> None:
        """Declare an output port driven by *expr*."""
        self.module.add_output(name, expr)

    def register(self, name: str, spec: TypeSpec, reset: int = 0) -> Register:
        """Declare a register with a reset pattern."""
        return self.module.add_register(name, spec, reset)

    def wire(self, name: str, expr: Expr) -> Read:
        """Name an intermediate expression; returns a read of the wire."""
        return Read(self.module.add_wire(name, expr))

    def instance(self, name: str, module: RtlModule,
                 **connections: Expr) -> Instance:
        """Instantiate a child module, connecting inputs by keyword.

        The child's reset port (if any) is wired to this module's reset
        automatically unless explicitly connected.
        """
        inst = self.module.add_instance(name, module)
        child_reset = module.attributes.get("reset_port")
        if (
            child_reset
            and child_reset not in connections
            and self._reset is not None
        ):
            inst.connect(child_reset, Read(self._reset))
        for port_name, expr in connections.items():
            inst.connect(port_name, expr)
        return inst

    # ------------------------------------------------------------------
    # next-value logic
    # ------------------------------------------------------------------
    def next(self, register: Register, expr: Expr) -> None:
        """Assign *register*'s next value (once per register)."""
        if register.uid in self._pending_next:
            raise RtlError(
                f"register {register.name!r} already has a next value; "
                "combine conditions into one expression"
            )
        if expr.spec.width != register.spec.width:
            raise RtlError(
                f"register {register.name!r}: next width {expr.spec.width} "
                f"!= {register.spec.width}"
            )
        self._pending_next[register.uid] = (register, expr)

    def hold(self, register: Register) -> Read:
        """Shorthand for the register's current value in next-value logic."""
        return Read(register)

    # ------------------------------------------------------------------
    # completion
    # ------------------------------------------------------------------
    def build(self) -> RtlModule:
        """Finalize: fold reset muxes, default undriven registers to hold."""
        for reg in self.module.registers:
            pending = self._pending_next.get(reg.uid)
            user_next = pending[1] if pending else Read(reg)
            if self._reset is not None:
                user_next = Mux(
                    Read(self._reset),
                    Const(reg.spec, reg.reset_raw),
                    user_next,
                )
            reg.next = user_next
        self.module.validate()
        return self.module
