"""Behavioral Verilog emission from the RTL IR (paper Fig. 6, ``*.v``).

The ODETTE flow hands standard HDL to downstream tools; this module renders
an :class:`~repro.rtl.ir.RtlModule` tree as synthesizable Verilog-2001 —
one ``module`` per RTL module, registers in a single clocked ``always``
block with synchronous semantics matching the cycle-accurate simulator
(reset is already folded into each register's next expression, so no
``posedge rst`` appears).

The emitter is deterministic, so tests can golden-check structure, and the
output is plain enough for any external synthesis tool to consume.
"""

from __future__ import annotations

from repro.rtl.ir import (
    BinOp,
    Concat,
    Const,
    Expr,
    Mux,
    Read,
    Register,
    Resize,
    RtlModule,
    ShiftConst,
    ShiftDyn,
    Slice,
    UnaryOp,
)

_BINOP_SYMBOL = {
    "add": "+", "sub": "-", "mul": "*",
    "and": "&", "or": "|", "xor": "^",
    "eq": "==", "ne": "!=", "lt": "<", "le": "<=", "gt": ">", "ge": ">=",
}

_SIGNED_COMPARE = {"lt", "le", "gt", "ge"}


def _identifier(name: str) -> str:
    """Make a legal Verilog identifier out of an IR name."""
    safe = "".join(ch if ch.isalnum() or ch == "_" else "_" for ch in name)
    if not safe or safe[0].isdigit():
        safe = "s_" + safe
    return safe


class _Namer:
    """Unique, stable identifiers for carriers and temporaries."""

    def __init__(self) -> None:
        self._names: dict[int, str] = {}
        self._used: set[str] = set()

    def name_for(self, uid: int, hint: str) -> str:
        if uid in self._names:
            return self._names[uid]
        base = _identifier(hint)
        candidate = base
        counter = 0
        while candidate in self._used:
            counter += 1
            candidate = f"{base}_{counter}"
        self._used.add(candidate)
        self._names[uid] = candidate
        return candidate


class VerilogWriter:
    """Renders one RtlModule (plus its descendants) as Verilog text."""

    def __init__(self, module: RtlModule) -> None:
        module.validate()
        self.module = module

    # ------------------------------------------------------------------
    def emit(self) -> str:
        """The full Verilog source: this module and every child module."""
        chunks: list[str] = []
        emitted: set[int] = set()

        def walk(mod: RtlModule) -> None:
            for instance in mod.instances:
                walk(instance.module)
            if id(mod) not in emitted:
                emitted.add(id(mod))
                chunks.append(_emit_one(mod))

        walk(self.module)
        return "\n\n".join(chunks) + "\n"


def _signed_wrap(text: str, expr: Expr) -> str:
    if expr.spec.kind in ("signed", "fixed"):
        return f"$signed({text})"
    return text


def _emit_one(mod: RtlModule) -> str:
    namer = _Namer()
    lines: list[str] = []
    ports: list[str] = ["input wire clk"]
    for name, carrier in mod.inputs.items():
        ident = namer.name_for(carrier.uid, name)
        width = f"[{carrier.width - 1}:0] " if carrier.width > 1 else ""
        ports.append(f"input wire {width}{ident}")
    out_names = {}
    for name, expr in mod.outputs.items():
        ident = _identifier(name)
        out_names[name] = ident
        width = f"[{expr.width - 1}:0] " if expr.width > 1 else ""
        ports.append(f"output wire {width}{ident}")

    body: list[str] = []
    temp_count = [0]
    rendered: dict[int, str] = {}

    def fresh_wire(width: int, text: str) -> str:
        temp_count[0] += 1
        name = f"t{temp_count[0]}"
        decl = f"[{width - 1}:0] " if width > 1 else ""
        body.append(f"  wire {decl}{name} = {text};")
        return name

    def render(expr: Expr) -> str:
        key = id(expr)
        if key in rendered:
            return rendered[key]
        text = _render(expr)
        # Hoist non-trivial shared or compound expressions into wires so
        # output stays readable and sharing is visible.
        if not isinstance(expr, (Const, Read)):
            text = fresh_wire(expr.width, text)
        rendered[key] = text
        return text

    def _render(expr: Expr) -> str:
        if isinstance(expr, Const):
            return f"{expr.width}'d{expr.raw}"
        if isinstance(expr, Read):
            return namer.name_for(expr.carrier.uid, expr.carrier.name)
        if isinstance(expr, BinOp):
            a, b = render(expr.a), render(expr.b)
            if expr.op in _SIGNED_COMPARE and \
                    expr.a.spec.kind in ("signed", "fixed"):
                a, b = f"$signed({a})", f"$signed({b})"
            return f"({a} {_BINOP_SYMBOL[expr.op]} {b})"
        if isinstance(expr, UnaryOp):
            a = render(expr.a)
            table = {"invert": f"(~{a})", "not": f"(!{a})",
                     "neg": f"(-{a})", "reduce_or": f"(|{a})",
                     "reduce_and": f"(&{a})", "reduce_xor": f"(^{a})"}
            return table[expr.op]
        if isinstance(expr, Mux):
            return (f"({render(expr.cond)} ? {render(expr.if_true)} : "
                    f"{render(expr.if_false)})")
        if isinstance(expr, Slice):
            inner = render(expr.a)
            if expr.hi == expr.lo:
                return f"{inner}[{expr.hi}]"
            return f"{inner}[{expr.hi}:{expr.lo}]"
        if isinstance(expr, Concat):
            parts = ", ".join(render(p) for p in expr.parts)
            return f"{{{parts}}}"
        if isinstance(expr, ShiftConst):
            op = "<<" if expr.left else ">>"
            inner = render(expr.a)
            if not expr.left and expr.spec.kind in ("signed", "fixed"):
                return f"($signed({inner}) >>> {expr.amount})"
            return f"({inner} {op} {expr.amount})"
        if isinstance(expr, ShiftDyn):
            op = "<<" if expr.left else ">>"
            inner = render(expr.a)
            amount = render(expr.amount)
            if not expr.left and expr.spec.kind in ("signed", "fixed"):
                return f"($signed({inner}) >>> {amount})"
            return f"({inner} {op} {amount})"
        if isinstance(expr, Resize):
            inner = render(expr.a)
            source = expr.a
            if expr.width == source.width:
                return inner
            if expr.width < source.width:
                return f"{inner}[{expr.width - 1}:0]"
            pad = expr.width - source.width
            if source.spec.kind in ("signed", "fixed"):
                sign_bit = (f"{inner}[{source.width - 1}]"
                            if source.width > 1 else inner)
                return f"{{{{{pad}{{{sign_bit}}}}}, {inner}}}"
            return f"{{{pad}'d0, {inner}}}"
        raise ValueError(f"cannot emit {expr!r}")

    # Registers (declared before use).
    reg_decls: list[str] = []
    for reg in mod.registers:
        ident = namer.name_for(reg.uid, reg.name)
        width = f"[{reg.width - 1}:0] " if reg.width > 1 else ""
        reg_decls.append(
            f"  reg {width}{ident} = {reg.width}'d{reg.reset_raw};"
        )

    # Instances.
    instance_lines: list[str] = []
    for instance in mod.instances:
        pin_map = [".clk(clk)"]
        for port_name, expr in instance.connections.items():
            pin_map.append(f".{_identifier(port_name)}({render(expr)})")
        for port_name, carrier in instance.output_carriers.items():
            ident = namer.name_for(carrier.uid,
                                   f"{instance.name}_{port_name}")
            width = (f"[{carrier.width - 1}:0] "
                     if carrier.width > 1 else "")
            body.append(f"  wire {width}{ident};")
            pin_map.append(f".{_identifier(port_name)}({ident})")
        instance_lines.append(
            f"  {_identifier(instance.module.name)} "
            f"{_identifier(instance.name)} (\n    "
            + ",\n    ".join(pin_map) + "\n  );"
        )

    # Register updates.
    always_lines: list[str] = ["  always @(posedge clk) begin"]
    for reg in mod.registers:
        ident = namer.name_for(reg.uid, reg.name)
        always_lines.append(f"    {ident} <= {render(reg.next)};")
    always_lines.append("  end")

    # Outputs.
    assigns = [
        f"  assign {out_names[name]} = {render(expr)};"
        for name, expr in mod.outputs.items()
    ]

    header = (f"module {_identifier(mod.name)} (\n  "
              + ",\n  ".join(ports) + "\n);")
    parts = [header]
    if reg_decls:
        parts.append("\n".join(reg_decls))
    if body:
        parts.append("\n".join(body))
    if instance_lines:
        parts.append("\n".join(instance_lines))
    if mod.registers:
        parts.append("\n".join(always_lines))
    if assigns:
        parts.append("\n".join(assigns))
    parts.append("endmodule")
    return "\n\n".join(parts)


def to_verilog(module: RtlModule) -> str:
    """Render *module* (and children) as Verilog-2001 source."""
    return VerilogWriter(module).emit()
