"""Cycle-accurate RTL simulation.

The simulator evaluates an :class:`~repro.rtl.ir.RtlModule` hierarchy one
clock cycle at a time: every register next-value and output expression is
computed from the *current* register contents and the cycle's inputs, then
all registers commit simultaneously.  This is exactly the observable
semantics of the kernel-level simulation of the same design, which is what
the paper's bit/cycle-accuracy statement (§12) rests on — and what the
equivalence harness in :mod:`repro.eval.equivalence` checks mechanically.

Hierarchies are evaluated in place (no flattening copy): each carrier in
the tree is unique, so a single memo table per cycle suffices.  The same
``RtlModule`` object may not appear twice in one tree — producers emit a
fresh module per instantiation.
"""

from __future__ import annotations

from typing import Any, Iterable, Mapping

from repro.rtl.ir import (
    Carrier,
    InputCarrier,
    InstanceOutputCarrier,
    Instance,
    Read,
    Register,
    RtlError,
    RtlModule,
    WireCarrier,
)


class CombinationalLoopError(RtlError):
    """Raised when expression evaluation re-enters the same carrier."""


class RtlSimulator:
    """Cycle-based simulator for an RTL module tree.

    Parameters
    ----------
    module:
        The top :class:`RtlModule`; it is validated on construction.
    """

    def __init__(self, module: RtlModule) -> None:
        module.validate()
        self.module = module
        self._check_unique_modules(module)
        self.state: dict[int, int] = {}
        self._registers: list[tuple[Register, RtlModule]] = []
        self._input_parent: dict[int, tuple[Instance, RtlModule]] = {}
        self._collect(module, None)
        self.cycle = 0
        #: Hooks called (no arguments) after every committed step; the
        #: cycle-based counterpart of the kernel's ``cycle_hooks``, used
        #: by :class:`repro.obs.vcd.RtlTrace`.
        self.step_hooks: list = []
        self._steps = 0
        self._register_commits = 0
        self._register_changes = 0
        self._carrier_evals = 0
        self.reset_state()
        self._inputs: dict[str, int] = {
            name: 0 for name in module.inputs
        }

    # ------------------------------------------------------------------
    # construction helpers
    # ------------------------------------------------------------------
    @staticmethod
    def _check_unique_modules(module: RtlModule) -> None:
        seen: set[int] = set()

        def visit(mod: RtlModule) -> None:
            if id(mod) in seen:
                raise RtlError(
                    f"module object {mod.name!r} instantiated twice; "
                    "emit a fresh RtlModule per instance"
                )
            seen.add(id(mod))
            for instance in mod.instances:
                visit(instance.module)

        visit(module)

    def _collect(self, module: RtlModule, parent: Instance | None) -> None:
        for reg in module.registers:
            self._registers.append((reg, module))
        for instance in module.instances:
            for name, carrier in instance.module.inputs.items():
                self._input_parent[carrier.uid] = (instance, module)
            self._collect(instance.module, instance)

    # ------------------------------------------------------------------
    # state control
    # ------------------------------------------------------------------
    def reset_state(self) -> None:
        """Load every register with its reset pattern (power-on state)."""
        self.state = {reg.uid: reg.reset_raw for reg, _ in self._registers}
        self.cycle = 0

    def drive(self, **inputs: int) -> None:
        """Set top-level input values (held until changed)."""
        for name, value in inputs.items():
            if name not in self.module.inputs:
                raise RtlError(f"{self.module.name} has no input {name!r}")
            width = self.module.inputs[name].spec.width
            self._inputs[name] = int(value) & ((1 << width) - 1)

    # ------------------------------------------------------------------
    # evaluation
    # ------------------------------------------------------------------
    def _make_valuation(self):
        memo: dict[int, int] = {}
        in_progress: set[int] = set()

        def valuation(carrier: Carrier) -> int:
            uid = carrier.uid
            if uid in memo:
                return memo[uid]
            if isinstance(carrier, Register):
                return self.state[uid]
            if uid in in_progress:
                raise CombinationalLoopError(
                    f"combinational loop through {carrier.name!r}"
                )
            in_progress.add(uid)
            if isinstance(carrier, InputCarrier):
                parent = self._input_parent.get(uid)
                if parent is None:
                    value = self._inputs[carrier.name]
                else:
                    instance, _ = parent
                    value = instance.connections[carrier.name].evaluate(valuation)
            elif isinstance(carrier, WireCarrier):
                value = carrier.expr.evaluate(valuation)
            elif isinstance(carrier, InstanceOutputCarrier):
                value = carrier.instance.module.outputs[
                    carrier.port_name
                ].evaluate(valuation)
            else:  # pragma: no cover - no other carrier kinds exist
                raise RtlError(f"cannot evaluate carrier {carrier!r}")
            in_progress.discard(uid)
            memo[uid] = value
            self._carrier_evals += 1
            return value

        return valuation

    def peek_outputs(self) -> dict[str, int]:
        """Evaluate top-level outputs for the current cycle (no commit)."""
        valuation = self._make_valuation()
        return {
            name: expr.evaluate(valuation)
            for name, expr in self.module.outputs.items()
        }

    def check_no_comb_loops(self) -> None:
        """Evaluate every expression cone once to prove it is acyclic.

        Visits all top-level outputs and every register's next-value
        expression; a combinational cycle anywhere in the hierarchy trips
        the in-progress detector and raises
        :class:`CombinationalLoopError`.  State is not modified.
        """
        valuation = self._make_valuation()
        for expr in self.module.outputs.values():
            expr.evaluate(valuation)
        for reg, _ in self._registers:
            reg.next.evaluate(valuation)

    def step(self, **inputs: int) -> dict[str, int]:
        """Advance one clock cycle.

        Applies *inputs*, samples the outputs (combinational view of the
        cycle), computes every register's next value and commits them all
        simultaneously.  Returns the sampled outputs.
        """
        if inputs:
            self.drive(**inputs)
        valuation = self._make_valuation()
        outputs = {
            name: expr.evaluate(valuation)
            for name, expr in self.module.outputs.items()
        }
        updates = [
            (reg, reg.next.evaluate(valuation))
            for reg, _ in self._registers
        ]
        state = self.state
        changed = 0
        for reg, value in updates:
            if state[reg.uid] != value:
                state[reg.uid] = value
                changed += 1
        self._register_commits += len(updates)
        self._register_changes += changed
        self._steps += 1
        self.cycle += 1
        for hook in self.step_hooks:
            hook()
        return outputs

    def run(self, stimulus: Iterable[Mapping[str, int]],
            max_cycles: int | None = None) -> list[dict[str, int]]:
        """Step once per stimulus entry; returns the output of each cycle.

        With *max_cycles*, raise :class:`RtlError` once that many cycles
        have been stepped — a guard against pathological (e.g. endless)
        stimulus generators.
        """
        outputs: list[dict[str, int]] = []
        for entry in stimulus:
            if max_cycles is not None and len(outputs) >= max_cycles:
                raise RtlError(
                    f"run() exceeded its cycle budget of {max_cycles} "
                    f"cycles on {self.module.name!r}; the stimulus "
                    "generator did not terminate in time"
                )
            outputs.append(self.step(**dict(entry)))
        return outputs

    # ------------------------------------------------------------------
    # observability
    # ------------------------------------------------------------------
    def stats(self) -> dict[str, int | str]:
        """Uniform work counters (see DESIGN.md §8).

        ``steps``             committed clock cycles;
        ``register_commits``  register next-values computed and stored
                              (``registers × steps``);
        ``register_changes``  commits that actually changed the state;
        ``carrier_evals``     unique carrier evaluations (memo fills)
                              across all valuations.
        """
        return {
            "backend": "rtl",
            "steps": self._steps,
            "register_commits": self._register_commits,
            "register_changes": self._register_changes,
            "carrier_evals": self._carrier_evals,
        }

    def reset_stats(self) -> None:
        """Zero the work counters (simulation state is untouched)."""
        self._steps = 0
        self._register_commits = 0
        self._register_changes = 0
        self._carrier_evals = 0

    def register_value(self, register: Register) -> int:
        """Current committed contents of *register* (tests/debug)."""
        return self.state[register.uid]

    def registers(self) -> list[Register]:
        """Every register in the tree, in deterministic collection order.

        Used by the fault-injection layer to enumerate SEU targets; the
        order is stable for a given module tree (pre-order traversal).
        """
        return [reg for reg, _ in self._registers]

    def poke_register(self, register: Register, raw: int) -> None:
        """Overwrite a register's committed contents (fault injection).

        The raw pattern is masked to the register width; the change is
        observable from the next evaluation on, exactly as if the bits
        had been upset between two clock edges.
        """
        if register.uid not in self.state:
            raise RtlError(f"{register!r} is not part of this simulation")
        self.state[register.uid] = int(raw) & ((1 << register.spec.width) - 1)

    def find_register(self, name: str) -> Register:
        """Look up a register anywhere in the tree by (suffix) name."""
        matches = [reg for reg, _ in self._registers if reg.name == name
                   or reg.name.endswith(f".{name}")]
        if not matches:
            raise KeyError(f"no register named {name!r}")
        if len(matches) > 1:
            raise KeyError(f"register name {name!r} is ambiguous")
        return matches[0]

    def __repr__(self) -> str:
        return f"RtlSimulator({self.module.name!r}, cycle={self.cycle})"
