"""Register-transfer-level intermediate representation.

One expression language is shared by three producers/consumers:

* the OSSS behavioral synthesizer (``repro.synth``) emits it,
* the hand-written "VHDL flow" baseline (``repro.baseline``) builds it
  directly through :mod:`repro.rtl.build`,
* the cycle-accurate RTL simulator (:mod:`repro.rtl.simulate`) and the
  technology mapper (:mod:`repro.netlist.techmap`) consume it.

An :class:`RtlModule` is a single synchronous clock domain: typed inputs and
outputs, registers with next-value expressions (synchronous reset is already
folded into the next-value mux by the producer), named combinational wires,
and child instances.  Expression nodes are immutable and carry their
:class:`~repro.types.spec.TypeSpec`; every operator's result width follows
the exact rules of :mod:`repro.types.integer`, which is what keeps RTL
bit-accurate with OSSS-level simulation (DESIGN.md claim R6).
"""

from __future__ import annotations

import itertools
from typing import Any, Callable, Iterable, Iterator

from repro.types.integer import add_width, bitwise_width, mul_width
from repro.types.spec import TypeSpec, bit, bits, signed, unsigned


class RtlError(ValueError):
    """Raised for ill-formed RTL (width mismatches, multiple drivers...)."""


def _mask(width: int) -> int:
    return (1 << width) - 1


def _as_signed(raw: int, width: int) -> int:
    if raw >> (width - 1):
        return raw - (1 << width)
    return raw


def _numeric(raw: int, spec: TypeSpec) -> int:
    """Interpret a raw pattern numerically (sign-aware)."""
    if spec.kind == "signed" or spec.kind == "fixed":
        return _as_signed(raw, spec.width)
    return raw


# ----------------------------------------------------------------------
# expressions
# ----------------------------------------------------------------------
class Expr:
    """Base class of immutable, typed combinational expressions."""

    __slots__ = ("spec",)

    def __init__(self, spec: TypeSpec) -> None:
        object.__setattr__(self, "spec", spec)

    def __setattr__(self, name: str, value: Any) -> None:
        raise AttributeError("RTL expressions are immutable")

    @property
    def width(self) -> int:
        """Result width in bits."""
        return self.spec.width

    def children(self) -> tuple["Expr", ...]:
        """Direct sub-expressions."""
        return ()

    def evaluate(self, valuation: Callable[["Carrier"], int]) -> int:
        """Raw result under *valuation* (carrier → raw int)."""
        raise NotImplementedError

    # ------------------------------------------------------------------
    # operator sugar (used heavily by the hand-written baseline designs)
    # ------------------------------------------------------------------
    def _coerce(self, other: "Expr | int") -> "Expr":
        if isinstance(other, Expr):
            return other
        if isinstance(other, int):
            if self.spec.kind == "bit":
                return Const(bit(), other & 1)
            if other < 0 and self.spec.kind != "signed":
                raise RtlError(f"negative constant {other} with {self.spec.describe()}")
            return Const(self.spec, other & _mask(self.spec.width))
        raise RtlError(f"cannot use {type(other).__name__} in an RTL expression")

    def __add__(self, other: "Expr | int") -> "Expr":
        return BinOp("add", self, self._coerce(other))

    def __radd__(self, other: int) -> "Expr":
        return BinOp("add", self._coerce(other), self)

    def __sub__(self, other: "Expr | int") -> "Expr":
        return BinOp("sub", self, self._coerce(other))

    def __rsub__(self, other: int) -> "Expr":
        return BinOp("sub", self._coerce(other), self)

    def __mul__(self, other: "Expr | int") -> "Expr":
        return BinOp("mul", self, self._coerce(other))

    def __rmul__(self, other: int) -> "Expr":
        return BinOp("mul", self._coerce(other), self)

    def __and__(self, other: "Expr | int") -> "Expr":
        return BinOp("and", self, self._coerce(other))

    __rand__ = __and__

    def __or__(self, other: "Expr | int") -> "Expr":
        return BinOp("or", self, self._coerce(other))

    __ror__ = __or__

    def __xor__(self, other: "Expr | int") -> "Expr":
        return BinOp("xor", self, self._coerce(other))

    __rxor__ = __xor__

    def __invert__(self) -> "Expr":
        return UnaryOp("invert", self)

    def __lshift__(self, amount: int) -> "Expr":
        return ShiftConst(self, amount, left=True)

    def __rshift__(self, amount: int) -> "Expr":
        return ShiftConst(self, amount, left=False)

    def eq(self, other: "Expr | int") -> "Expr":
        """Equality comparison (1-bit result)."""
        return BinOp("eq", self, self._coerce(other))

    def ne(self, other: "Expr | int") -> "Expr":
        """Inequality comparison (1-bit result)."""
        return BinOp("ne", self, self._coerce(other))

    def lt(self, other: "Expr | int") -> "Expr":
        """Less-than (sign-aware, 1-bit result)."""
        return BinOp("lt", self, self._coerce(other))

    def le(self, other: "Expr | int") -> "Expr":
        """Less-or-equal (1-bit result)."""
        return BinOp("le", self, self._coerce(other))

    def gt(self, other: "Expr | int") -> "Expr":
        """Greater-than (1-bit result)."""
        return BinOp("gt", self, self._coerce(other))

    def ge(self, other: "Expr | int") -> "Expr":
        """Greater-or-equal (1-bit result)."""
        return BinOp("ge", self, self._coerce(other))

    def bit(self, index: int) -> "Expr":
        """Single-bit select."""
        return Slice(self, index, index, as_bit=True)

    def range(self, hi: int, lo: int) -> "Expr":
        """Inclusive part-select (BitVector result)."""
        return Slice(self, hi, lo)

    def resized(self, width: int) -> "Expr":
        """Zero/sign-extend or truncate, keeping the kind."""
        kind = self.spec.kind
        if kind == "bit":
            kind = "unsigned"
        return Resize(self, TypeSpec(kind, width))

    def as_unsigned(self) -> "Expr":
        """Reinterpret the raw bits as unsigned."""
        return Resize(self, unsigned(self.width))

    def as_signed(self) -> "Expr":
        """Reinterpret the raw bits as signed."""
        return Resize(self, signed(self.width))

    def as_bits(self) -> "Expr":
        """Reinterpret the raw bits as a plain BitVector."""
        if self.spec.kind == "bv":
            return self
        return Resize(self, bits(self.width))

    def reduce_or(self) -> "Expr":
        """OR-reduction to one bit."""
        return UnaryOp("reduce_or", self)

    def reduce_and(self) -> "Expr":
        """AND-reduction to one bit."""
        return UnaryOp("reduce_and", self)

    def reduce_xor(self) -> "Expr":
        """XOR-reduction (parity) to one bit."""
        return UnaryOp("reduce_xor", self)

    def logical_not(self) -> "Expr":
        """1-bit logical negation (operand must be 1 bit)."""
        if self.width != 1:
            raise RtlError("logical_not needs a 1-bit operand; use reduce_or")
        return UnaryOp("not", self)

    def __bool__(self) -> bool:
        raise RtlError(
            "RTL expressions have no truth value; use mux()/eq() to build "
            "hardware conditions"
        )


class Const(Expr):
    """A literal of a given spec."""

    __slots__ = ("raw",)

    def __init__(self, spec: TypeSpec, raw: int) -> None:
        super().__init__(spec)
        object.__setattr__(self, "raw", raw & _mask(spec.width))

    def evaluate(self, valuation: Callable[["Carrier"], int]) -> int:
        return self.raw

    def __repr__(self) -> str:
        return f"Const({self.spec.describe()}, {self.raw})"


class Carrier:
    """Named storage an expression can read: register, input or wire."""

    __slots__ = ("name", "spec", "uid")
    _ids = itertools.count()

    def __init__(self, name: str, spec: TypeSpec) -> None:
        self.name = name
        self.spec = spec
        self.uid = next(Carrier._ids)

    @property
    def width(self) -> int:
        """Storage width in bits."""
        return self.spec.width

    def read(self) -> "Read":
        """An expression reading this carrier."""
        return Read(self)

    def __repr__(self) -> str:
        return f"{type(self).__name__}({self.name!r}, {self.spec.describe()})"


class Register(Carrier):
    """Clocked storage; ``next`` is assigned by the module builder."""

    __slots__ = ("next", "reset_raw")

    def __init__(self, name: str, spec: TypeSpec, reset_raw: int = 0) -> None:
        super().__init__(name, spec)
        self.next: Expr | None = None
        self.reset_raw = reset_raw & _mask(spec.width)


class InputCarrier(Carrier):
    """A module input port."""

    __slots__ = ()


class WireCarrier(Carrier):
    """A named combinational node with a driving expression."""

    __slots__ = ("expr",)

    def __init__(self, name: str, spec: TypeSpec, expr: Expr) -> None:
        super().__init__(name, spec)
        if expr.spec.width != spec.width:
            raise RtlError(
                f"wire {name}: expression width {expr.spec.width} != "
                f"declared {spec.width}"
            )
        self.expr = expr


class InstanceOutputCarrier(Carrier):
    """An output pin of a child instance, readable in the parent."""

    __slots__ = ("instance", "port_name")

    def __init__(self, instance: "Instance", port_name: str,
                 spec: TypeSpec) -> None:
        super().__init__(f"{instance.name}.{port_name}", spec)
        self.instance = instance
        self.port_name = port_name


class Read(Expr):
    """Read the current value of a carrier."""

    __slots__ = ("carrier",)

    def __init__(self, carrier: Carrier) -> None:
        super().__init__(carrier.spec)
        object.__setattr__(self, "carrier", carrier)

    def evaluate(self, valuation: Callable[[Carrier], int]) -> int:
        return valuation(self.carrier)

    def __repr__(self) -> str:
        return f"Read({self.carrier.name})"


_UNARY_RESULT: dict[str, Callable[[TypeSpec], TypeSpec]] = {
    "invert": lambda s: s,
    "neg": lambda s: s,
    "not": lambda s: bit(),
    "reduce_or": lambda s: bit(),
    "reduce_and": lambda s: bit(),
    "reduce_xor": lambda s: bit(),
}


class UnaryOp(Expr):
    """Unary operator node."""

    __slots__ = ("op", "a")

    def __init__(self, op: str, a: Expr) -> None:
        result = _UNARY_RESULT.get(op)
        if result is None:
            raise RtlError(f"unknown unary op {op!r}")
        if op == "not" and a.width != 1:
            raise RtlError("'not' needs a 1-bit operand")
        super().__init__(result(a.spec))
        object.__setattr__(self, "op", op)
        object.__setattr__(self, "a", a)

    def children(self) -> tuple[Expr, ...]:
        return (self.a,)

    def evaluate(self, valuation: Callable[[Carrier], int]) -> int:
        raw = self.a.evaluate(valuation)
        width = self.a.width
        if self.op == "invert":
            return ~raw & _mask(width)
        if self.op == "neg":
            return -_numeric(raw, self.a.spec) & _mask(width)
        if self.op == "not":
            return raw ^ 1
        if self.op == "reduce_or":
            return int(raw != 0)
        if self.op == "reduce_and":
            return int(raw == _mask(width))
        return bin(raw).count("1") & 1  # reduce_xor

    def __repr__(self) -> str:
        return f"UnaryOp({self.op}, {self.a!r})"


_ARITH = ("add", "sub", "mul")
_BITWISE = ("and", "or", "xor")
_COMPARE = ("eq", "ne", "lt", "le", "gt", "ge")


class BinOp(Expr):
    """Binary operator node with deterministic result widths."""

    __slots__ = ("op", "a", "b")

    def __init__(self, op: str, a: Expr, b: Expr) -> None:
        spec = self._result_spec(op, a, b)
        super().__init__(spec)
        object.__setattr__(self, "op", op)
        object.__setattr__(self, "a", a)
        object.__setattr__(self, "b", b)

    @staticmethod
    def _kind(spec: TypeSpec) -> str:
        # Bits participate in arithmetic as 1-bit unsigned values.
        return {"bit": "unsigned", "bv": "unsigned", "fixed": "signed"}.get(
            spec.kind, spec.kind
        )

    @classmethod
    def _result_spec(cls, op: str, a: Expr, b: Expr) -> TypeSpec:
        ka, kb = cls._kind(a.spec), cls._kind(b.spec)
        if op in _ARITH or op in _COMPARE:
            if ka != kb:
                raise RtlError(
                    f"{op}: cannot mix {a.spec.describe()} and "
                    f"{b.spec.describe()}; convert explicitly"
                )
        if op in _COMPARE:
            return bit()
        if op in _ARITH:
            width_fn = mul_width if op == "mul" else add_width
            return TypeSpec(ka, width_fn(a.width, b.width))
        if op in _BITWISE:
            if a.spec.kind == "bit" and b.spec.kind == "bit":
                return bit()
            kind = a.spec.kind if a.spec.kind == b.spec.kind else "bv"
            if kind == "bit":
                kind = "bv"
            return TypeSpec(kind, bitwise_width(a.width, b.width))
        raise RtlError(f"unknown binary op {op!r}")

    def children(self) -> tuple[Expr, ...]:
        return (self.a, self.b)

    def evaluate(self, valuation: Callable[[Carrier], int]) -> int:
        ra = self.a.evaluate(valuation)
        rb = self.b.evaluate(valuation)
        op = self.op
        if op in _BITWISE:
            table = {"and": ra & rb, "or": ra | rb, "xor": ra ^ rb}
            return table[op] & _mask(self.width)
        va = _numeric(ra, self.a.spec)
        vb = _numeric(rb, self.b.spec)
        if op == "add":
            return (va + vb) & _mask(self.width)
        if op == "sub":
            return (va - vb) & _mask(self.width)
        if op == "mul":
            return (va * vb) & _mask(self.width)
        result = {
            "eq": va == vb,
            "ne": va != vb,
            "lt": va < vb,
            "le": va <= vb,
            "gt": va > vb,
            "ge": va >= vb,
        }[op]
        return int(result)

    def __repr__(self) -> str:
        return f"BinOp({self.op}, {self.a!r}, {self.b!r})"


class Mux(Expr):
    """Two-way multiplexer: ``cond ? if_true : if_false``."""

    __slots__ = ("cond", "if_true", "if_false")

    def __init__(self, cond: Expr, if_true: Expr, if_false: Expr) -> None:
        if cond.width != 1:
            raise RtlError("mux condition must be 1 bit")
        if if_true.width != if_false.width:
            raise RtlError(
                f"mux arm widths differ: {if_true.width} vs {if_false.width}"
            )
        super().__init__(if_true.spec)
        object.__setattr__(self, "cond", cond)
        object.__setattr__(self, "if_true", if_true)
        object.__setattr__(self, "if_false", if_false)

    def children(self) -> tuple[Expr, ...]:
        return (self.cond, self.if_true, self.if_false)

    def evaluate(self, valuation: Callable[[Carrier], int]) -> int:
        if self.cond.evaluate(valuation):
            return self.if_true.evaluate(valuation)
        return self.if_false.evaluate(valuation)

    def __repr__(self) -> str:
        return f"Mux({self.cond!r}, {self.if_true!r}, {self.if_false!r})"


def mux(cond: Expr, if_true: "Expr | int", if_false: "Expr | int") -> Expr:
    """Convenience mux builder coercing int arms to the other arm's spec."""
    if isinstance(if_true, int) and isinstance(if_false, int):
        raise RtlError("mux needs at least one Expr arm to fix the width")
    if isinstance(if_true, int):
        if_true = if_false._coerce(if_true)
    if isinstance(if_false, int):
        if_false = if_true._coerce(if_false)
    return Mux(cond, if_true, if_false)


class Slice(Expr):
    """Inclusive part-select ``[hi:lo]``; 1-bit selects may yield a Bit."""

    __slots__ = ("a", "hi", "lo")

    def __init__(self, a: Expr, hi: int, lo: int, as_bit: bool = False) -> None:
        if hi < lo or lo < 0 or hi >= a.width:
            raise RtlError(f"slice [{hi}:{lo}] out of range for width {a.width}")
        width = hi - lo + 1
        spec = bit() if (as_bit and width == 1) else bits(width)
        super().__init__(spec)
        object.__setattr__(self, "a", a)
        object.__setattr__(self, "hi", hi)
        object.__setattr__(self, "lo", lo)

    def children(self) -> tuple[Expr, ...]:
        return (self.a,)

    def evaluate(self, valuation: Callable[[Carrier], int]) -> int:
        return (self.a.evaluate(valuation) >> self.lo) & _mask(self.width)

    def __repr__(self) -> str:
        return f"Slice({self.a!r}, {self.hi}, {self.lo})"


class Concat(Expr):
    """Concatenation, MSB-first parts."""

    __slots__ = ("parts",)

    def __init__(self, parts: Iterable[Expr]) -> None:
        parts = tuple(parts)
        if not parts:
            raise RtlError("concat needs at least one part")
        super().__init__(bits(sum(p.width for p in parts)))
        object.__setattr__(self, "parts", parts)

    def children(self) -> tuple[Expr, ...]:
        return self.parts

    def evaluate(self, valuation: Callable[[Carrier], int]) -> int:
        raw = 0
        for part in self.parts:
            raw = (raw << part.width) | part.evaluate(valuation)
        return raw

    def __repr__(self) -> str:
        return f"Concat({list(self.parts)!r})"


class ShiftConst(Expr):
    """Width-preserving shift by a constant amount (pure wiring)."""

    __slots__ = ("a", "amount", "left")

    def __init__(self, a: Expr, amount: int, left: bool) -> None:
        if amount < 0:
            raise RtlError("shift amount must be non-negative")
        super().__init__(a.spec)
        object.__setattr__(self, "a", a)
        object.__setattr__(self, "amount", amount)
        object.__setattr__(self, "left", left)

    def children(self) -> tuple[Expr, ...]:
        return (self.a,)

    def evaluate(self, valuation: Callable[[Carrier], int]) -> int:
        raw = self.a.evaluate(valuation)
        if self.left:
            return (raw << self.amount) & _mask(self.width)
        if self.spec.kind == "signed":
            return (_numeric(raw, self.spec) >> self.amount) & _mask(self.width)
        return raw >> self.amount

    def __repr__(self) -> str:
        direction = "<<" if self.left else ">>"
        return f"ShiftConst({self.a!r} {direction} {self.amount})"


class ShiftDyn(Expr):
    """Width-preserving shift by a dynamic (expression) amount."""

    __slots__ = ("a", "amount", "left")

    def __init__(self, a: Expr, amount: Expr, left: bool) -> None:
        super().__init__(a.spec)
        object.__setattr__(self, "a", a)
        object.__setattr__(self, "amount", amount)
        object.__setattr__(self, "left", left)

    def children(self) -> tuple[Expr, ...]:
        return (self.a, self.amount)

    def evaluate(self, valuation: Callable[[Carrier], int]) -> int:
        raw = self.a.evaluate(valuation)
        amount = self.amount.evaluate(valuation)
        if amount >= self.width:
            if not self.left and self.spec.kind == "signed":
                neg = raw >> (self.width - 1)
                return _mask(self.width) if neg else 0
            return 0
        if self.left:
            return (raw << amount) & _mask(self.width)
        if self.spec.kind == "signed":
            return (_numeric(raw, self.spec) >> amount) & _mask(self.width)
        return raw >> amount

    def __repr__(self) -> str:
        direction = "<<" if self.left else ">>"
        return f"ShiftDyn({self.a!r} {direction} {self.amount!r})"


class Resize(Expr):
    """Zero/sign extension, truncation, or plain reinterpretation."""

    __slots__ = ("a",)

    def __init__(self, a: Expr, spec: TypeSpec) -> None:
        super().__init__(spec)
        object.__setattr__(self, "a", a)

    def children(self) -> tuple[Expr, ...]:
        return (self.a,)

    def evaluate(self, valuation: Callable[[Carrier], int]) -> int:
        raw = self.a.evaluate(valuation)
        value = _numeric(raw, self.a.spec)
        return value & _mask(self.width)

    def __repr__(self) -> str:
        return f"Resize({self.a!r} -> {self.spec.describe()})"


# ----------------------------------------------------------------------
# modules
# ----------------------------------------------------------------------
class Instance:
    """A child module instantiation inside an :class:`RtlModule`."""

    __slots__ = ("name", "module", "connections", "output_carriers")

    def __init__(self, name: str, module: "RtlModule") -> None:
        self.name = name
        self.module = module
        self.connections: dict[str, Expr] = {}
        self.output_carriers: dict[str, InstanceOutputCarrier] = {}
        for port_name, expr in module.outputs.items():
            self.output_carriers[port_name] = InstanceOutputCarrier(
                self, port_name, expr.spec
            )

    def connect(self, port_name: str, expr: Expr) -> None:
        """Drive child input *port_name* with *expr* from the parent."""
        if port_name not in self.module.inputs:
            raise RtlError(
                f"{self.module.name} has no input {port_name!r}"
            )
        expected = self.module.inputs[port_name].spec
        if expected.width != expr.spec.width:
            raise RtlError(
                f"{self.name}.{port_name}: width {expr.spec.width} != "
                f"{expected.width}"
            )
        self.connections[port_name] = expr

    def output(self, port_name: str) -> Read:
        """Read child output *port_name* in the parent."""
        if port_name not in self.output_carriers:
            raise RtlError(f"{self.module.name} has no output {port_name!r}")
        return Read(self.output_carriers[port_name])

    def __repr__(self) -> str:
        return f"Instance({self.name!r} : {self.module.name})"


class RtlModule:
    """A synchronous RTL module (single implicit clock + reset domain)."""

    def __init__(self, name: str) -> None:
        self.name = name
        self.inputs: dict[str, InputCarrier] = {}
        self.outputs: dict[str, Expr] = {}
        self.registers: list[Register] = []
        self.wires: list[WireCarrier] = []
        self.instances: list[Instance] = []
        #: Free-form notes from the producer (synthesis reports read these).
        self.attributes: dict[str, Any] = {}

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------
    def add_input(self, name: str, spec: TypeSpec) -> InputCarrier:
        """Declare an input port."""
        if name in self.inputs or name in self.outputs:
            raise RtlError(f"duplicate port {name!r} on {self.name}")
        carrier = InputCarrier(name, spec)
        self.inputs[name] = carrier
        return carrier

    def add_output(self, name: str, expr: Expr) -> None:
        """Declare an output port driven by *expr*."""
        if name in self.inputs or name in self.outputs:
            raise RtlError(f"duplicate port {name!r} on {self.name}")
        self.outputs[name] = expr

    def add_register(self, name: str, spec: TypeSpec,
                     reset_raw: int = 0) -> Register:
        """Declare a register (assign ``.next`` before simulation)."""
        reg = Register(name, spec, reset_raw)
        self.registers.append(reg)
        return reg

    def add_wire(self, name: str, expr: Expr) -> WireCarrier:
        """Name an intermediate combinational expression."""
        wire = WireCarrier(name, expr.spec, expr)
        self.wires.append(wire)
        return wire

    def add_instance(self, name: str, module: "RtlModule") -> Instance:
        """Instantiate a child module."""
        instance = Instance(name, module)
        self.instances.append(instance)
        return instance

    # ------------------------------------------------------------------
    # validation / traversal
    # ------------------------------------------------------------------
    def validate(self) -> None:
        """Check structural completeness (driven registers/instances)."""
        for reg in self.registers:
            if reg.next is None:
                raise RtlError(f"register {self.name}.{reg.name} has no next")
            if reg.next.spec.width != reg.spec.width:
                raise RtlError(
                    f"register {self.name}.{reg.name}: next width "
                    f"{reg.next.spec.width} != {reg.spec.width}"
                )
        for instance in self.instances:
            for port_name in instance.module.inputs:
                if port_name not in instance.connections:
                    raise RtlError(
                        f"{self.name}.{instance.name}: input {port_name!r} "
                        "unconnected"
                    )
            instance.module.validate()

    def iter_exprs(self) -> Iterator[Expr]:
        """All root expressions of this module (not descendants)."""
        for expr in self.outputs.values():
            yield expr
        for reg in self.registers:
            if reg.next is not None:
                yield reg.next
        for wire in self.wires:
            yield wire.expr
        for instance in self.instances:
            yield from instance.connections.values()

    def stats(self) -> dict[str, int]:
        """Node-count statistics (used by synthesis reports and tests)."""
        seen: set[int] = set()
        counts = {"nodes": 0, "muxes": 0, "registers": len(self.registers),
                  "register_bits": sum(r.width for r in self.registers)}

        def visit(expr: Expr) -> None:
            if id(expr) in seen:
                return
            seen.add(id(expr))
            counts["nodes"] += 1
            if isinstance(expr, Mux):
                counts["muxes"] += 1
            for child in expr.children():
                visit(child)

        for expr in self.iter_exprs():
            visit(expr)
        return counts

    def __repr__(self) -> str:
        return (
            f"RtlModule({self.name!r}, in={list(self.inputs)}, "
            f"out={list(self.outputs)}, regs={len(self.registers)}, "
            f"instances={len(self.instances)})"
        )
