"""Multi-objective decision support: Pareto fronts and MCDM ranking.

The DSE engine reduces every evaluated design point to an *objective
vector* (area, frequency, SDC rate, campaign cost).  Two decision aids
are computed over the evaluated set, in the DAVOS ``MCDM.py`` mold:

* the **exact Pareto front** — every point not dominated by another
  evaluated point.  Domination uses the standard definition: *a*
  dominates *b* iff *a* is at least as good in every objective and
  strictly better in at least one.  Duplicate objective vectors do not
  dominate each other, so equivalent trade-offs all stay on the front
  (property-tested against a brute-force oracle in
  ``tests/dse/test_pareto_property.py``);
* a **weighted-sum MCDM ranking** — objectives are min-max normalized
  over the evaluated set (sense-adjusted so 0 is best), scaled by the
  objective weights and summed; lower scores rank first.  Ties break on
  the evaluation index so the ranking is total and deterministic.

Everything here is pure data-in/data-out over lists — no set iteration,
no hashing of floats — so results are identical across processes and
``PYTHONHASHSEED`` values.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping, Sequence


class DseError(ValueError):
    """Raised for ill-formed spaces, objectives or search configurations."""


@dataclass(frozen=True)
class Objective:
    """One axis of the objective space.

    ``name`` keys into each point's objective mapping; ``sense`` is
    ``"min"`` or ``"max"``; ``weight`` scales the objective's normalized
    contribution in the MCDM score.
    """

    name: str
    sense: str = "min"
    weight: float = 1.0

    def __post_init__(self) -> None:
        if self.sense not in ("min", "max"):
            raise DseError(
                f"objective {self.name!r} sense must be 'min' or 'max', "
                f"got {self.sense!r}"
            )
        if not self.weight >= 0:
            raise DseError(
                f"objective {self.name!r} weight must be >= 0, "
                f"got {self.weight!r}"
            )

    def as_dict(self) -> dict:
        return {"name": self.name, "sense": self.sense,
                "weight": self.weight}


#: The engine's default objective vector: gate area and fault-campaign
#: cost down, frequency up, silent data corruption down.
DEFAULT_OBJECTIVES = (
    Objective("area_ge", "min"),
    Objective("fmax_mhz", "max"),
    Objective("sdc_rate", "min"),
    Objective("sim_cycles", "min"),
)


def _values(vector: Mapping[str, float],
            objectives: Sequence[Objective]) -> list[float]:
    """Extract the vector's values in objective order, sense-normalized
    so that smaller is always better."""
    values = []
    for objective in objectives:
        try:
            value = vector[objective.name]
        except KeyError:
            raise DseError(
                f"objective vector is missing {objective.name!r}: "
                f"{sorted(vector)}"
            ) from None
        values.append(-value if objective.sense == "max" else value)
    return values


def dominates(a: Mapping[str, float], b: Mapping[str, float],
              objectives: Sequence[Objective] = DEFAULT_OBJECTIVES) -> bool:
    """True iff *a* Pareto-dominates *b* under *objectives*."""
    va = _values(a, objectives)
    vb = _values(b, objectives)
    return all(x <= y for x, y in zip(va, vb)) and va != vb


def pareto_front(vectors: Sequence[Mapping[str, float]],
                 objectives: Sequence[Objective] = DEFAULT_OBJECTIVES,
                 ) -> list[int]:
    """Indices of the non-dominated *vectors*, in input order.

    Exact simple-cull non-domination: each candidate is compared against
    the running front and the remaining candidates.  Sorting by the
    sense-normalized tuple first lets each point be checked only against
    points that could dominate it (a point never dominates one sorted
    before it), so typical fronts cost far less than the worst-case
    O(n²) while remaining exact for every input, duplicates included.
    """
    if not objectives:
        raise DseError("pareto_front needs at least one objective")
    normalized = [_values(v, objectives) for v in vectors]
    order = sorted(range(len(normalized)), key=lambda i: normalized[i])
    front: list[int] = []
    kept: list[list[float]] = []
    for i in order:
        candidate = normalized[i]
        dominated = any(
            all(x <= y for x, y in zip(winner, candidate))
            and winner != candidate
            for winner in kept
        )
        if not dominated:
            front.append(i)
            kept.append(candidate)
    front.sort()
    return front


def mcdm_ranking(vectors: Sequence[Mapping[str, float]],
                 objectives: Sequence[Objective] = DEFAULT_OBJECTIVES,
                 ) -> list[tuple[int, float]]:
    """Weighted-sum ranking ``[(index, score), ...]``, best first.

    Each objective is min-max normalized over the evaluated set (after
    sense adjustment, 0 is the best observed value, 1 the worst; a
    constant objective contributes 0 for everyone), multiplied by its
    weight and summed.  Scores are rounded to 9 decimals so reports are
    byte-stable, and ties rank by input index.
    """
    if not vectors:
        return []
    if not objectives:
        raise DseError("mcdm_ranking needs at least one objective")
    columns = [[_values(v, objectives)[k] for v in vectors]
               for k in range(len(objectives))]
    spans = []
    for column in columns:
        lo, hi = min(column), max(column)
        spans.append((lo, hi - lo))
    scores = []
    for i in range(len(vectors)):
        score = 0.0
        for k, objective in enumerate(objectives):
            lo, span = spans[k]
            if span > 0:
                score += objective.weight * (columns[k][i] - lo) / span
        scores.append((i, round(score, 9)))
    scores.sort(key=lambda pair: (pair[1], pair[0]))
    return scores
