"""Search strategies over a design space: factorial and evolutionary.

Both strategies drive one :class:`~repro.dse.evaluate.PointEvaluator`
and return a :class:`SearchOutcome` — the evaluated points in first-visit
order plus strategy metadata for the report.  Because the evaluator
memoizes per point id (in process) and per stage (in the store), the two
strategies compose: an evolutionary run after a factorial enumeration
re-evaluates nothing.

The evolutionary loop is the DAVOS ``Evolutionary_DSE.py`` shape reduced
to its deterministic core: generational, with Pareto-rank tournament
selection, uniform crossover and per-gene mutation over axis-index
genomes, and elitism carrying the current front.  All randomness flows
from one seeded ``random.Random``; populations are lists (never sets),
so a fixed seed reproduces the identical search in any process.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Any

from repro.dse.evaluate import PointEvaluator, PointResult
from repro.dse.pareto import DseError, mcdm_ranking, pareto_front
from repro.dse.space import fractional_factorial


class SearchOutcome:
    """What one strategy explored: points in first-visit order + metadata."""

    def __init__(self, strategy: str, results: list[PointResult],
                 meta: dict[str, Any]) -> None:
        self.strategy = strategy
        self.results = results
        self.meta = meta

    def __repr__(self) -> str:
        ok = sum(1 for r in self.results if r.ok)
        return (f"SearchOutcome({self.strategy!r}, {ok} ok / "
                f"{len(self.results)} points)")


def factorial_search(evaluator: PointEvaluator,
                     fraction: int = 1) -> SearchOutcome:
    """Enumerate the (possibly fractional) factorial design."""
    assignments = fractional_factorial(evaluator.space, fraction)
    results = [evaluator.evaluate(assignment) for assignment in assignments]
    return SearchOutcome("factorial", results,
                         {"fraction": fraction, "points": len(results)})


@dataclass
class EvolutionaryConfig:
    """Knobs of the evolutionary loop (defaults suit small spaces)."""

    population: int = 8
    generations: int = 6
    seed: int = 1
    tournament: int = 2
    crossover_rate: float = 0.9
    mutation_rate: float = 0.25
    elitism: int = 2

    def __post_init__(self) -> None:
        if self.population < 2:
            raise DseError("evolutionary search needs a population >= 2")
        if self.generations < 1:
            raise DseError("evolutionary search needs >= 1 generation")
        if self.tournament < 1:
            raise DseError("tournament size must be >= 1")

    def as_dict(self) -> dict[str, Any]:
        return {
            "population": self.population,
            "generations": self.generations,
            "seed": self.seed,
            "tournament": self.tournament,
            "crossover_rate": self.crossover_rate,
            "mutation_rate": self.mutation_rate,
            "elitism": self.elitism,
        }


def _fitness(evaluator: PointEvaluator,
             results: list[PointResult]) -> dict[str, tuple]:
    """Per-point fitness keys, lower is better: (pareto rank, MCDM score).

    Rank is the non-dominated sorting level over the *ok* points seen so
    far; failed points rank behind everything.  The point id breaks the
    final tie so comparisons are total.
    """
    ok = [r for r in results if r.ok]
    fitness: dict[str, tuple] = {
        r.point_id: (len(ok) + 1, 0.0, r.point_id)
        for r in results if not r.ok
    }
    vectors = [r.objectives for r in ok]
    scores = dict(mcdm_ranking(vectors, evaluator.objectives))
    remaining = list(range(len(ok)))
    rank = 0
    while remaining:
        front = pareto_front([vectors[i] for i in remaining],
                             evaluator.objectives)
        level = [remaining[k] for k in front]
        for i in level:
            fitness[ok[i].point_id] = (rank, scores[i], ok[i].point_id)
        remaining = [i for i in remaining if i not in set(level)]
        rank += 1
    return fitness


def evolutionary_search(evaluator: PointEvaluator,
                        config: EvolutionaryConfig | None = None,
                        ) -> SearchOutcome:
    """Seeded generational search over axis-index genomes.

    Every generation is recorded as a ``generation[g]`` tracer span
    annotated with how many points were newly evaluated and the size of
    the running Pareto front; per-generation summaries also ride in the
    outcome's metadata for the report.
    """
    space = evaluator.space
    config = config or EvolutionaryConfig()
    if not space.axes or space.size() == 0:
        return SearchOutcome("evolutionary", [],
                             {**config.as_dict(), "history": []})
    rng = random.Random(config.seed)
    sizes = [len(axis.values) for axis in space.axes]

    def random_genome() -> tuple[int, ...]:
        return tuple(rng.randrange(size) for size in sizes)

    def mutate(genome: tuple[int, ...]) -> tuple[int, ...]:
        out = list(genome)
        for k, size in enumerate(sizes):
            if size > 1 and rng.random() < config.mutation_rate:
                shift = rng.randrange(1, size)
                out[k] = (out[k] + shift) % size
        return tuple(out)

    def crossover(a: tuple[int, ...],
                  b: tuple[int, ...]) -> tuple[int, ...]:
        if rng.random() >= config.crossover_rate:
            return a
        return tuple(x if rng.random() < 0.5 else y for x, y in zip(a, b))

    seen_order: list[PointResult] = []
    seen_ids: set[str] = set()

    def evaluate_all(genomes: list[tuple[int, ...]]) -> int:
        new = 0
        for genome in genomes:
            result = evaluator.evaluate(space.assignment(genome))
            if result.point_id not in seen_ids:
                seen_ids.add(result.point_id)
                seen_order.append(result)
                new += 1
        return new

    population = [random_genome() for _ in range(config.population)]
    history: list[dict[str, Any]] = []
    for generation in range(config.generations):
        with evaluator.tracer.span(f"generation[{generation}]") as span:
            new = evaluate_all(population)
            fitness = _fitness(evaluator, seen_order)
            ok = [r for r in seen_order if r.ok]
            front = pareto_front([r.objectives for r in ok],
                                 evaluator.objectives)
            span.annotate(evaluated=len(population), new=new,
                          front=len(front))
            history.append({
                "generation": generation,
                "evaluated": len(seen_order),
                "new": new,
                "front": len(front),
            })
            if generation == config.generations - 1:
                break

            def select() -> tuple[int, ...]:
                picks = [population[rng.randrange(len(population))]
                         for _ in range(config.tournament)]
                return min(
                    picks,
                    key=lambda g: fitness[
                        space.point_id(space.assignment(g))],
                )

            elites = [space.indices(ok[i].assignment)
                      for i in front[:config.elitism]]
            offspring = list(elites)
            while len(offspring) < config.population:
                child = mutate(crossover(select(), select()))
                offspring.append(child)
            population = offspring
    return SearchOutcome("evolutionary", seen_order,
                         {**config.as_dict(), "history": history})
