"""Declarative design spaces: named axes over template specializations.

A :class:`DesignSpace` is the OSSS selling point made enumerable: the
*factory* re-specializes the same source per parameter assignment
(template axes), while special-role axes select post-synthesis
treatments the evaluator applies — today the ``hardening`` pass
(``none`` / ``tmr`` / ``parity`` / ``tmr+parity``).  Scheduler choice
rides as an ordinary template axis (``ExpoCU``'s ``SCHEDULER``
parameter), exactly the paper's "designer can use a standard scheduler
or implement an own one" knob.

Assignments are plain ``{axis: value}`` dicts; their canonical identity
(:meth:`DesignSpace.point_id`) and every enumeration here iterate axes
in declaration order and values in listed order — never sets — so a
space enumerates identically in every process.
"""

from __future__ import annotations

from typing import Any, Callable, Iterable, Mapping, Sequence

from repro.dse.pareto import DseError

#: Axis roles the evaluator understands.
AXIS_ROLES = ("param", "hardening")


class Axis:
    """One named dimension: a value list plus its role.

    ``role="param"`` values feed the space's factory as keyword
    arguments; ``role="hardening"`` values name the netlist hardening
    pass applied before the fault campaign.
    """

    def __init__(self, name: str, values: Sequence[Any],
                 role: str = "param") -> None:
        if role not in AXIS_ROLES:
            raise DseError(f"axis {name!r}: unknown role {role!r} "
                           f"(expected one of {AXIS_ROLES})")
        values = list(values)
        if len(set(map(repr, values))) != len(values):
            raise DseError(f"axis {name!r} has duplicate values: {values}")
        self.name = name
        self.values = values
        self.role = role

    def as_dict(self) -> dict[str, Any]:
        return {"name": self.name, "values": list(self.values),
                "role": self.role}

    def __repr__(self) -> str:
        return f"Axis({self.name!r}, {self.values!r}, role={self.role!r})"


class DesignSpace:
    """A factory plus the axes the search strategies explore.

    Parameters
    ----------
    name:
        Space label carried into reports.
    factory:
        ``factory(**params)`` returns a fresh top-level module for one
        assignment's ``param``-role values.
    axes:
        The dimensions, in declaration order.  At most one axis may
        have the ``hardening`` role.
    """

    def __init__(self, name: str, factory: Callable[..., Any],
                 axes: Sequence[Axis]) -> None:
        names = [axis.name for axis in axes]
        if len(set(names)) != len(names):
            raise DseError(f"duplicate axis names in {names}")
        hardening = [axis for axis in axes if axis.role == "hardening"]
        if len(hardening) > 1:
            raise DseError("a design space takes at most one hardening axis")
        self.name = name
        self.factory = factory
        self.axes = list(axes)

    def size(self) -> int:
        """Number of points in the full factorial enumeration."""
        total = 1
        for axis in self.axes:
            total *= len(axis.values)
        return total

    def validate(self, assignment: Mapping[str, Any]) -> dict[str, Any]:
        """Check one assignment; returns it re-keyed in axis order."""
        extra = set(assignment) - {axis.name for axis in self.axes}
        if extra:
            raise DseError(f"assignment has unknown axes {sorted(extra)}")
        ordered: dict[str, Any] = {}
        for axis in self.axes:
            if axis.name not in assignment:
                raise DseError(f"assignment is missing axis {axis.name!r}")
            value = assignment[axis.name]
            if value not in axis.values:
                raise DseError(
                    f"axis {axis.name!r} has no value {value!r} "
                    f"(choices: {axis.values})"
                )
            ordered[axis.name] = value
        return ordered

    def params(self, assignment: Mapping[str, Any]) -> dict[str, Any]:
        """The factory keyword arguments of one assignment."""
        return {axis.name: assignment[axis.name]
                for axis in self.axes if axis.role == "param"}

    def hardening(self, assignment: Mapping[str, Any]) -> str:
        """The assignment's hardening pass (``"none"`` without the axis)."""
        for axis in self.axes:
            if axis.role == "hardening":
                return assignment[axis.name]
        return "none"

    def point_id(self, assignment: Mapping[str, Any]) -> str:
        """Canonical point identity: ``axis=value`` in axis order."""
        return ",".join(f"{axis.name}={assignment[axis.name]}"
                        for axis in self.axes)

    def indices(self, assignment: Mapping[str, Any]) -> tuple[int, ...]:
        """The assignment as a genome: one value index per axis."""
        return tuple(axis.values.index(assignment[axis.name])
                     for axis in self.axes)

    def assignment(self, indices: Sequence[int]) -> dict[str, Any]:
        """Decode a genome back into an assignment."""
        if len(indices) != len(self.axes):
            raise DseError(
                f"genome length {len(indices)} != {len(self.axes)} axes"
            )
        return {axis.name: axis.values[k]
                for axis, k in zip(self.axes, indices)}

    def as_dict(self) -> dict[str, Any]:
        return {"name": self.name,
                "axes": [axis.as_dict() for axis in self.axes]}

    def __repr__(self) -> str:
        dims = "x".join(str(len(axis.values)) for axis in self.axes)
        return f"DesignSpace({self.name!r}, {dims}={self.size()} points)"


def full_factorial(space: DesignSpace) -> list[dict[str, Any]]:
    """Every assignment of the space, in axis-major declaration order.

    An axis with an empty value list makes the space empty — the
    enumeration is ``[]``, not an error, so sweeps and searches degrade
    to a zero-point report.
    """
    points: list[dict[str, Any]] = [{}]
    for axis in space.axes:
        points = [dict(point, **{axis.name: value})
                  for point in points for value in axis.values]
    return points


def fractional_factorial(space: DesignSpace,
                         fraction: int) -> list[dict[str, Any]]:
    """A deterministic 1/*fraction* subset of the full factorial.

    Classical generalized fractional design: keep the assignments whose
    level indices sum to 0 modulo *fraction*.  Every axis level still
    appears (for ``fraction`` at most the largest axis), interactions
    are confounded in the usual way, and the subset is a pure function
    of the space — no RNG.
    """
    if fraction < 1:
        raise DseError(f"fraction must be >= 1, got {fraction}")
    if fraction == 1:
        return full_factorial(space)
    return [
        assignment for assignment in full_factorial(space)
        if sum(space.indices(assignment)) % fraction == 0
    ]


def neighbors(space: DesignSpace,
              assignment: Mapping[str, Any]) -> Iterable[dict[str, Any]]:
    """All assignments differing from *assignment* in exactly one axis."""
    base = space.validate(assignment)
    for axis in space.axes:
        for value in axis.values:
            if value != base[axis.name]:
                yield dict(base, **{axis.name: value})
