"""Per-point evaluation: memoized flow prefix + hardening + fault campaign.

One design point costs three memoized stages beyond what ``repro build``
already caches:

``synthesize`` → ``techmap`` → ``opt``
    The exact stages (same names, same keys) of the build flow, entered
    through :func:`repro.eval.flows.netlist_prefix` — a space whose
    specializations were ever built replays them warm.
``harden``
    The netlist hardening pass, keyed on the optimized netlist's digest
    plus the hardening mode.  ``none`` skips the stage entirely and
    aliases the ``opt`` artifact.
``dse_point``
    STA + area + the seeded fault campaign, reduced to a small metrics /
    campaign / objectives document (``repro-dse-point/v1``) keyed on the
    hardened netlist's digest and the campaign spec fingerprint.  On a
    warm run only digests are touched: no netlist leaves the store and
    nothing is re-simulated.

The cached point document carries no point identity — two assignments
that specialize to identical hardware share one entry; the assignment
labels attach here, on :class:`PointResult`.

The campaign backend is deliberately **excluded** from the spec
fingerprint: the event-driven, compiled and bit-parallel backends
produce byte-identical campaign reports (asserted by the fault-backend
tests), so their objective vectors are interchangeable cache-wise.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Any, Mapping, Sequence

from repro.analyze import AnalysisError
from repro.eval.flows import netlist_prefix
from repro.fault.campaign import (
    CampaignConfig,
    CampaignError,
    generate_fault_list,
    run_campaign,
)
from repro.fault.harden import harden_circuit
from repro.fault.inject import FaultableGateSimulator, GateFaultInjector
from repro.netlist import NetlistError
from repro.netlist.area import total_area
from repro.netlist.circuit import Circuit
from repro.netlist.sta import analyze as analyze_timing
from repro.obs.profiler import NULL_TRACER, Tracer
from repro.store import (
    ArtifactStore,
    StageRunner,
    deserialize_circuit,
    deserialize_dse_point,
    digest_doc,
    serialize_circuit,
    serialize_dse_point,
)
from repro.synth import SynthesisError

from repro.dse.pareto import DEFAULT_OBJECTIVES, Objective
from repro.dse.space import DesignSpace

#: Failures recorded per point instead of aborting the exploration.
POINT_ERRORS = (SynthesisError, NetlistError, AnalysisError, CampaignError)


@dataclass
class CampaignSpec:
    """The fault campaign every point runs, as data.

    ``stimulus`` is the input-frame sequence; ``config`` the campaign
    configuration (its ``detect_signals`` are filtered per point against
    the hardened netlist's actual outputs, so one spec serves hardened
    and unhardened variants alike); ``n_faults`` seeded injections drawn
    over the stimulus with ``seed``.  ``backend`` picks the gate
    simulator backend — excluded from the cache fingerprint because all
    backends produce byte-identical campaign reports.
    """

    stimulus: Sequence[Mapping[str, int]]
    config: CampaignConfig = field(default_factory=CampaignConfig)
    n_faults: int = 32
    seed: int = 2004
    backend: str = "bitparallel"

    def fingerprint(self) -> str:
        """Canonical digest of everything that shapes the point document."""
        config = self.config
        return digest_doc([
            "repro-dse-spec/v1",
            [sorted(frame.items()) for frame in self.stimulus],
            [config.reset_name, config.reset_cycles,
             sorted(config.observed) if config.observed is not None else None,
             sorted(config.detect_signals),
             config.done_signal, config.done_value, config.drain_budget,
             sorted(config.idle_input.items())],
            self.n_faults, self.seed,
        ])


class PointResult:
    """One evaluated (or failed) design point, with its identity."""

    def __init__(self, assignment: dict[str, Any], point_id: str,
                 doc: dict | None = None,
                 error: Exception | None = None) -> None:
        self.assignment = assignment
        self.point_id = point_id
        self.doc = doc
        self.error = error

    @property
    def ok(self) -> bool:
        return self.error is None

    @property
    def objectives(self) -> dict[str, float]:
        """The point's objective vector (raises when the point failed)."""
        if self.doc is None:
            raise self.error  # pragma: no cover - guarded by callers
        return self.doc["objectives"]

    def __repr__(self) -> str:
        if self.doc is None:
            return f"PointResult({self.point_id!r}, error={self.error!r})"
        return f"PointResult({self.point_id!r}, {self.objectives})"


class PointEvaluator:
    """Evaluates design-space assignments through the memoized stack.

    Reentrant and order-independent: every evaluation starts from the
    space's factory and flows through store-keyed stages, so factorial
    enumeration, evolutionary search and repeated CLI runs all share one
    cache.  Evaluated points are additionally memoized **in process** by
    ``point_id`` — the evolutionary loop re-visits genomes freely.
    """

    def __init__(self, space: DesignSpace, campaign: CampaignSpec,
                 objectives: Sequence[Objective] = DEFAULT_OBJECTIVES,
                 store: ArtifactStore | None = None,
                 tracer: Tracer | None = None,
                 guard=None) -> None:
        self.space = space
        self.campaign = campaign
        self.objectives = tuple(objectives)
        self.runner = StageRunner(store, tracer or NULL_TRACER, guard=guard)
        self.tracer = self.runner.tracer
        self._spec_fp = campaign.fingerprint()
        self._seen: dict[str, PointResult] = {}

    @property
    def store(self) -> ArtifactStore | None:
        return self.runner.store

    def evaluate(self, assignment: Mapping[str, Any]) -> PointResult:
        """Evaluate one assignment (in-process memoized by point id)."""
        ordered = self.space.validate(assignment)
        point_id = self.space.point_id(ordered)
        cached = self._seen.get(point_id)
        if cached is not None:
            return cached
        with self.tracer.span(f"dse:{point_id}") as span:
            try:
                result = PointResult(ordered, point_id,
                                     doc=self._evaluate(ordered))
                span.annotate(**{
                    name: result.objectives[name]
                    for name in ("area_ge", "sdc_rate")
                    if name in result.objectives
                })
            except POINT_ERRORS as exc:
                result = PointResult(ordered, point_id, error=exc)
                span.annotate(error=f"{type(exc).__name__}: {exc}")
        self._seen[point_id] = result
        return result

    def _evaluate(self, ordered: dict[str, Any]) -> dict:
        hardening = self.space.hardening(ordered)
        module = self.space.factory(**self.space.params(ordered))
        _, _, opt_outcome = netlist_prefix(module, self.runner,
                                           lazy_opt=True)
        if hardening == "none":
            hardened_outcome = opt_outcome
        else:
            hardened_outcome = self.runner.run(
                "harden", (opt_outcome.digest, hardening),
                compute=lambda: harden_circuit(opt_outcome.value(),
                                               hardening),
                dump=serialize_circuit, load=deserialize_circuit,
                lazy=True,
            )
        return self.runner.run(
            "dse_point", (hardened_outcome.digest, self._spec_fp),
            compute=lambda: self._measure(hardened_outcome.value(),
                                          hardening),
            dump=lambda doc: doc, load=deserialize_dse_point,
        ).value()

    def _measure(self, circuit: Circuit, hardening: str) -> dict:
        """STA + area + fault campaign on one hardened netlist."""
        spec = self.campaign
        timing = analyze_timing(circuit)
        metrics = {
            "area_ge": round(total_area(circuit), 3),
            "cells": len(circuit.cells),
            "flops": len(circuit.flops()),
            "fmax_mhz": round(timing.fmax_mhz, 3),
        }
        config = spec.config
        present = [name for name in config.detect_signals
                   if name in circuit.output_buses]
        if list(config.detect_signals) != present:
            config = replace(config, detect_signals=tuple(present))
        simulator = FaultableGateSimulator(circuit, backend=spec.backend)
        injector = GateFaultInjector(simulator)
        faults = generate_fault_list(injector, spec.n_faults,
                                     len(spec.stimulus), spec.seed)
        campaign = run_campaign(
            injector, spec.stimulus, faults, config,
            design=self.space.name, hardening=hardening, seed=spec.seed,
        )
        extracted = campaign.objectives(config.drain_budget)
        objectives = {
            "area_ge": metrics["area_ge"],
            "fmax_mhz": metrics["fmax_mhz"],
            "sdc_rate": extracted["sdc_rate"],
            "detected_rate": extracted["detected_rate"],
            "sim_cycles": extracted["sim_cycles"],
        }
        campaign_doc = {
            "faults": len(campaign.records),
            "outcomes": campaign.outcomes,
            "golden_selfcheck": campaign.golden_selfcheck,
            "golden_done": campaign.golden_done,
            "detect_signals": list(config.detect_signals),
        }
        return serialize_dse_point(metrics, campaign_doc, objectives)
