"""The canonical ``repro-dse/v1`` exploration report.

:func:`build_report` reduces a :class:`~repro.dse.search.SearchOutcome`
to one JSON document: every evaluated point (sorted by canonical point
id, so factorial and evolutionary runs over the same points produce the
same sections), recorded failures, the exact Pareto front, and the
weighted-sum MCDM ranking.  :func:`explore` is the one-call entry the
CLI, benchmarks and tests share: space + campaign spec + strategy in,
:class:`DseResult` out.

Byte-stability: the document is built from lists and insertion-ordered
dicts only, floats are rounded at the evaluator, and
:meth:`DseResult.to_json` emits ``json.dumps(doc, indent=2)`` — so the
same exploration yields the identical file across processes, hash seeds
and (via the store) cold/warm runs.
"""

from __future__ import annotations

import json
from typing import Any, Sequence

from repro.eval.report import format_table
from repro.obs.profiler import Tracer
from repro.store import ArtifactStore, serialize_dse_report

from repro.dse.evaluate import CampaignSpec, PointEvaluator
from repro.dse.pareto import (
    DEFAULT_OBJECTIVES,
    DseError,
    Objective,
    mcdm_ranking,
    pareto_front,
)
from repro.dse.search import (
    EvolutionaryConfig,
    SearchOutcome,
    evolutionary_search,
    factorial_search,
)
from repro.dse.space import DesignSpace


class DseResult:
    """One exploration's report document plus presentation helpers."""

    def __init__(self, doc: dict[str, Any]) -> None:
        self.doc = doc

    @property
    def points(self) -> list[dict[str, Any]]:
        return self.doc["points"]

    @property
    def pareto_ids(self) -> list[str]:
        return self.doc["pareto"]

    def to_json(self) -> str:
        return json.dumps(self.doc, indent=2) + "\n"

    def summary(self) -> str:
        """Aligned text table: objectives per point, front starred."""
        doc = self.doc
        objectives = [o["name"] for o in doc["objectives"]]
        front = set(doc["pareto"])
        scores = {entry["id"]: entry["score"] for entry in doc["ranking"]}
        rows = []
        for point in doc["points"]:
            row: dict[str, Any] = {"point": point["id"]}
            for name in objectives:
                row[name] = point["objectives"][name]
            row["mcdm"] = scores[point["id"]]
            row["front"] = "*" if point["id"] in front else ""
            rows.append(row)
        lines = [
            f"space {doc['space']['name']}: "
            f"{len(doc['points'])} evaluated, "
            f"{len(doc['failures'])} failed, "
            f"{len(doc['pareto'])} on the Pareto front "
            f"({doc['strategy']['name']} strategy)",
            "",
            format_table(rows,
                         ["point", *objectives, "mcdm", "front"]),
        ]
        if doc["failures"]:
            lines.append("")
            lines.append(format_table(
                [{"point": f["id"], "error": f["error"]}
                 for f in doc["failures"]],
                ["point", "error"],
            ))
        return "\n".join(lines) + "\n"

    def __repr__(self) -> str:
        return (f"DseResult({self.doc['space']['name']!r}, "
                f"{len(self.doc['points'])} points, "
                f"front={len(self.doc['pareto'])})")


def build_report(space: DesignSpace, outcome: SearchOutcome,
                 objectives: Sequence[Objective] = DEFAULT_OBJECTIVES,
                 ) -> DseResult:
    """Reduce one search outcome to the canonical report document."""
    evaluated = sorted((r for r in outcome.results if r.ok),
                       key=lambda r: r.point_id)
    failed = sorted((r for r in outcome.results if not r.ok),
                    key=lambda r: r.point_id)
    vectors = [r.objectives for r in evaluated]
    front = pareto_front(vectors, objectives)
    ranking = mcdm_ranking(vectors, objectives)
    doc = {
        "schema": "repro-dse/v1",
        "space": space.as_dict(),
        "strategy": {"name": outcome.strategy, **outcome.meta},
        "objectives": [o.as_dict() for o in objectives],
        "points": [
            {
                "id": r.point_id,
                "assignment": dict(r.assignment),
                "metrics": r.doc["metrics"],
                "campaign": r.doc["campaign"],
                "objectives": r.doc["objectives"],
            }
            for r in evaluated
        ],
        "failures": [
            {
                "id": r.point_id,
                "assignment": dict(r.assignment),
                "error": f"{type(r.error).__name__}: {r.error}",
            }
            for r in failed
        ],
        "pareto": [evaluated[i].point_id for i in front],
        "ranking": [
            {"id": evaluated[i].point_id, "score": score}
            for i, score in ranking
        ],
    }
    return DseResult(serialize_dse_report(doc))


def explore(space: DesignSpace, campaign: CampaignSpec,
            strategy: str = "factorial",
            objectives: Sequence[Objective] = DEFAULT_OBJECTIVES,
            fraction: int = 1,
            evolution: EvolutionaryConfig | None = None,
            store: ArtifactStore | None = None,
            tracer: Tracer | None = None,
            guard=None) -> DseResult:
    """Run one exploration end to end and return its report.

    *guard* is the per-stage cancellation hook threaded through every
    point's :class:`~repro.store.StageRunner` (see ``repro serve``).
    """
    evaluator = PointEvaluator(space, campaign, objectives,
                               store=store, tracer=tracer, guard=guard)
    if strategy == "factorial":
        outcome = factorial_search(evaluator, fraction)
    elif strategy == "evolutionary":
        outcome = evolutionary_search(evaluator, evolution)
    else:
        raise DseError(f"unknown search strategy {strategy!r} "
                       f"(expected 'factorial' or 'evolutionary')")
    return build_report(space, outcome, objectives)
