"""Design-space exploration over the OSSS flow (ROADMAP item 1).

The payoff of the object-oriented methodology: because every design
variant is just another template specialization (plus a scheduler policy
and an optional hardening pass), a *design space* is declarative data —
axes over a factory — and exploring it is a matter of driving the
memoized flow stack point by point:

:mod:`repro.dse.space`
    :class:`DesignSpace` / :class:`Axis`, factorial enumerations.
:mod:`repro.dse.evaluate`
    :class:`PointEvaluator` — synthesize → techmap → opt → harden →
    STA/area/fault-campaign, every step memoized through the design
    library so re-exploration replays warm.
:mod:`repro.dse.search`
    Full/fractional factorial and the seeded evolutionary loop.
:mod:`repro.dse.pareto`
    Exact Pareto front + weighted-sum MCDM ranking.
:mod:`repro.dse.report`
    The canonical ``repro-dse/v1`` report (:func:`explore` end-to-end).
:mod:`repro.dse.scenarios`
    The bundled ExpoCU spaces behind ``repro dse``.
"""

from repro.dse.evaluate import (
    POINT_ERRORS,
    CampaignSpec,
    PointEvaluator,
    PointResult,
)
from repro.dse.pareto import (
    DEFAULT_OBJECTIVES,
    DseError,
    Objective,
    dominates,
    mcdm_ranking,
    pareto_front,
)
from repro.dse.report import DseResult, build_report, explore
from repro.dse.scenarios import expocu_campaign_spec, expocu_space
from repro.dse.search import (
    EvolutionaryConfig,
    SearchOutcome,
    evolutionary_search,
    factorial_search,
)
from repro.dse.space import (
    Axis,
    DesignSpace,
    fractional_factorial,
    full_factorial,
    neighbors,
)

__all__ = [
    "Axis",
    "CampaignSpec",
    "DEFAULT_OBJECTIVES",
    "DesignSpace",
    "DseError",
    "DseResult",
    "EvolutionaryConfig",
    "Objective",
    "POINT_ERRORS",
    "PointEvaluator",
    "PointResult",
    "SearchOutcome",
    "build_report",
    "dominates",
    "evolutionary_search",
    "expocu_campaign_spec",
    "expocu_space",
    "explore",
    "factorial_search",
    "fractional_factorial",
    "full_factorial",
    "mcdm_ranking",
    "neighbors",
    "pareto_front",
]
