"""The bundled exploration scenario: ExpoCU design spaces.

What ``repro dse`` explores out of the box: the paper's exposure
control unit swept over its template specializations (I²C clock
divider, histogram counter width), the shared-multiplier arbitration
policy (the ``SCHEDULER`` template parameter) and the netlist hardening
pass.  Two sizes are bundled:

``tiny``
    divider × hardening — 4 points; the CI smoke / benchmark space.
``full``
    divider × count-bits × scheduler × hardening — 24 points; the
    acceptance space whose Pareto front is oracle-checked in
    ``tests/dse/test_expocu_acceptance.py``.

Both use a small (``side``×``side``) frame geometry: the architecture
under exploration is identical to the demo's, while keeping a cold
24-point factorial in CI territory.
"""

from __future__ import annotations

from repro.fault.scenarios import expocu_config, expocu_stimulus
from repro.hdl import NS, Clock, Signal
from repro.types import Bit
from repro.types.spec import bit

from repro.dse.evaluate import CampaignSpec
from repro.dse.pareto import DseError
from repro.dse.space import Axis, DesignSpace


def _expocu_factory(side: int):
    def build(i2c_divider: int = 2, count_bits: int = 8,
              scheduler: str = "round_robin"):
        from repro.expocu import ExpoCU

        spec = ExpoCU[side, side, 128, i2c_divider, count_bits, scheduler]
        return spec("expocu", Clock("clk", 10 * NS),
                    Signal("rst", bit(), Bit(1)))

    return build


def expocu_space(size: str = "tiny", side: int = 4) -> DesignSpace:
    """The bundled ExpoCU design space (``"tiny"`` or ``"full"``)."""
    if size == "tiny":
        axes = [
            Axis("i2c_divider", [2, 4]),
            Axis("hardening", ["none", "parity"], role="hardening"),
        ]
    elif size == "full":
        axes = [
            Axis("i2c_divider", [2, 4]),
            Axis("count_bits", [8, 12]),
            Axis("scheduler", ["round_robin", "fcfs"]),
            Axis("hardening", ["none", "tmr", "parity"], role="hardening"),
        ]
    else:
        raise DseError(f"unknown space size {size!r} "
                       f"(expected 'tiny' or 'full')")
    return DesignSpace(f"expocu-{size}", _expocu_factory(side), axes)


def expocu_campaign_spec(side: int = 4, faults: int = 24, seed: int = 2004,
                         backend: str = "bitparallel") -> CampaignSpec:
    """The campaign every ExpoCU point runs: one frame, seeded faults.

    The configuration always lists ``parity_err`` as a detect signal —
    the evaluator filters it out on points whose hardening does not add
    the parity guard, so one spec (and one cache fingerprint family)
    serves the whole hardening axis.
    """
    return CampaignSpec(
        stimulus=expocu_stimulus(seed, frames=1, side=side),
        config=expocu_config("parity"),
        n_faults=faults,
        seed=seed,
        backend=backend,
    )
