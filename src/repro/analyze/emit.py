"""Diagnostic emitters: text, JSON and SARIF 2.1.0.

The JSON and SARIF renderers are deterministic (sorted keys, stable
ordering from :meth:`Diagnostic.sort_key`) so their output can be golden-
file tested and diffed across CI runs.
"""

from __future__ import annotations

import json
from typing import Iterable

from repro.analyze.diagnostics import Diagnostic, RULES

#: SARIF tool metadata (fixed so emitter output is reproducible).
TOOL_NAME = "repro-lint"
TOOL_VERSION = "1.0.0"
SARIF_VERSION = "2.1.0"
SARIF_SCHEMA = ("https://raw.githubusercontent.com/oasis-tcs/sarif-spec/"
                "master/Schemata/sarif-schema-2.1.0.json")


def render_text(diagnostics: Iterable[Diagnostic]) -> str:
    """Human-readable listing plus a summary line."""
    diagnostics = list(diagnostics)
    lines = [diag.render() for diag in diagnostics]
    errors = sum(1 for d in diagnostics if d.severity == "error")
    warnings = len(diagnostics) - errors
    if lines:
        lines.append("")
    lines.append(f"{errors} error(s), {warnings} warning(s)")
    return "\n".join(lines)


def render_json(diagnostics: Iterable[Diagnostic]) -> str:
    """Stable JSON document of all findings."""
    diagnostics = list(diagnostics)
    document = {
        "version": 1,
        "tool": {"name": TOOL_NAME, "version": TOOL_VERSION},
        "diagnostics": [diag.as_dict() for diag in diagnostics],
        "summary": {
            "errors": sum(
                1 for d in diagnostics if d.severity == "error"
            ),
            "warnings": sum(
                1 for d in diagnostics if d.severity == "warning"
            ),
        },
    }
    return json.dumps(document, indent=2, sort_keys=True) + "\n"


def _sarif_result(diag: Diagnostic) -> dict:
    result = {
        "ruleId": diag.code,
        "level": diag.severity,
        "message": {"text": diag.message},
    }
    if diag.where:
        result["message"]["text"] = f"{diag.message} [{diag.where}]"
    if diag.file:
        location: dict = {
            "physicalLocation": {
                "artifactLocation": {"uri": diag.file},
            }
        }
        if diag.line is not None:
            location["physicalLocation"]["region"] = {
                "startLine": diag.line
            }
        result["locations"] = [location]
    return result


def render_sarif(diagnostics: Iterable[Diagnostic]) -> str:
    """SARIF 2.1.0 document (one run, rules limited to those used)."""
    diagnostics = list(diagnostics)
    used_codes = sorted({diag.code for diag in diagnostics})
    rules = [
        {
            "id": code,
            "shortDescription": {"text": RULES[code].title},
            "defaultConfiguration": {"level": RULES[code].severity},
        }
        for code in used_codes
    ]
    document = {
        "$schema": SARIF_SCHEMA,
        "version": SARIF_VERSION,
        "runs": [
            {
                "tool": {
                    "driver": {
                        "name": TOOL_NAME,
                        "version": TOOL_VERSION,
                        "informationUri":
                            "https://github.com/oasis-tcs/sarif-spec",
                        "rules": rules,
                    }
                },
                "results": [
                    _sarif_result(diag) for diag in diagnostics
                ],
            }
        ],
    }
    return json.dumps(document, indent=2, sort_keys=True) + "\n"


RENDERERS = {
    "text": render_text,
    "json": render_json,
    "sarif": render_sarif,
}
