"""The standalone OSSS Analyzer (paper Fig. 6).

The ODETTE flow puts an *Analyzer* in front of the Synthesizer: it parses
the OSSS design and rejects anything outside the synthesizable subset
before synthesis starts.  :func:`analyze_design` is that stage as a
fail-slow static analysis — it walks every process body, behavioral
helper and hardware-class method of a design at the AST level, without
synthesizing, and returns **all** findings as :class:`Diagnostic` records
(stable codes, severities, source locations, per-line suppressions)
instead of raising on the first problem the way
:class:`repro.synth.common.SynthesisError` does.

Passes
------
* subset checking (:mod:`repro.analyze.subset`, ``OSS1xx``/``OSS2xx``);
* shared-object hazards (:mod:`repro.analyze.shared_check`, ``OSS3xx``);
* design lints (:mod:`repro.analyze.design_lints`, ``RTL4xx`` warnings).

A separate gate-level family lives in :mod:`repro.analyze.netlist`
(``OSS5xx``): structural fault collapsing, SCOAP testability scoring and
observability lints over mapped :class:`~repro.netlist.circuit.Circuit`
netlists — the static half of the fault-campaign engine and the
``repro analyze`` command.

Emit the results with :mod:`repro.analyze.emit` (text, JSON, SARIF) or
gate a flow on them via :class:`AnalysisError` — that is what
``repro lint`` and the pre-synthesis gate in :mod:`repro.eval.flows` do.
"""

from __future__ import annotations

from repro.analyze.design_lints import (
    check_unused,
    check_widths,
    diagnostics_from_lint_report,
)
from repro.analyze.diagnostics import (
    Diagnostic,
    DiagnosticCollector,
    RULES,
    Rule,
    Suppressions,
)
from repro.analyze.emit import render_json, render_sarif, render_text
from repro.analyze.netlist import (
    CollapseAnalysis,
    NetlistAnalysis,
    TestabilityReport,
    analyze_circuit,
    collapse_faults,
    netlist_lints,
    scoap_analysis,
)
from repro.analyze.shared_check import check_shared_objects
from repro.analyze.subset import check_design_subset
from repro.hdl.module import Module

__all__ = [
    "AnalysisError",
    "CollapseAnalysis",
    "Diagnostic",
    "DiagnosticCollector",
    "NetlistAnalysis",
    "RULES",
    "Rule",
    "Suppressions",
    "TestabilityReport",
    "analyze_circuit",
    "analyze_design",
    "check_design_subset",
    "check_shared_objects",
    "check_unused",
    "check_widths",
    "collapse_faults",
    "diagnostics_from_lint_report",
    "netlist_lints",
    "render_json",
    "render_sarif",
    "render_text",
    "scoap_analysis",
]


class AnalysisError(Exception):
    """Raised by flow gates when the analyzer reports errors.

    Carries the full diagnostic list so callers can render every finding,
    not just the first.
    """

    def __init__(self, diagnostics: list[Diagnostic]) -> None:
        self.diagnostics = list(diagnostics)
        errors = [d for d in self.diagnostics if d.severity == "error"]
        summary = f"analysis found {len(errors)} error(s)"
        details = "\n".join(d.render() for d in self.diagnostics)
        super().__init__(f"{summary}\n{details}" if details else summary)


def analyze_design(top: Module, *,
                   design_lints: bool = True) -> list[Diagnostic]:
    """Run every analyzer pass over the elaborated design *top*.

    Returns the deduplicated, suppression-filtered findings in source
    order.  ``design_lints=False`` restricts the run to the hard subset
    and shared-object rules (no ``RTL4xx`` warnings).
    """
    collector = DiagnosticCollector()
    port_usage = check_design_subset(collector, top)
    check_shared_objects(collector, top, port_usage)
    if design_lints:
        check_widths(collector, top)
        check_unused(collector, top)
    return collector.diagnostics()
