"""Fail-slow synthesizable-subset checking (paper Fig. 6 Analyzer).

Walks every process body (clocked threads, combinational methods and the
behavioral helpers they ``yield from``) plus the methods of every hardware
class used by the design, purely at the AST level, and records **all**
subset violations as diagnostics — unlike the synthesis interpreter in
:mod:`repro.synth.interp`, which raises :class:`SynthesisError` on the
first one.  The rules are the ones documented in
:mod:`repro.synth.common`; the codes come from
:mod:`repro.analyze.diagnostics`.

Checks that need full symbolic evaluation (exact widths on every path,
undefinedness across dynamic branches) stay in the synthesizer; this pass
is intentionally syntactic so it can run on designs the synthesizer would
give up on after one error.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.analyze.diagnostics import DiagnosticCollector
from repro.analyze.source import (
    FunctionSource,
    load_function,
    register_suppressions,
)
from repro.hdl.module import Module
from repro.hdl.process import CMethod, CThread
from repro.osss.hwclass import HwClass
from repro.osss.shared import ClientPort, SharedObject
from repro.synth.common import contains_yield, is_power_of_two

#: Hardware-class attributes that are infrastructure, not user methods.
_NON_USER_METHODS = frozenset(
    ("layout", "full_layout", "member_specs", "construct", "copy",
     "hw_members", "specialize")
)

#: Statement types with no synthesizable meaning in any context.
_BANNED_STMTS = (
    ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef, ast.With,
    ast.AsyncWith, ast.AsyncFor, ast.Try, ast.Raise, ast.Import,
    ast.ImportFrom, ast.Global, ast.Nonlocal, ast.Delete,
)

#: Expression types outside the subset (flagged by the generic scan).
_BANNED_EXPRS = (
    ast.Lambda, ast.ListComp, ast.SetComp, ast.DictComp, ast.GeneratorExp,
    ast.Await, ast.Starred, ast.JoinedStr, ast.NamedExpr,
)


def _match_port_call(call: ast.Call) -> str | None:
    """``self.<attr>.call(...)`` → the port attribute name, else None."""
    func = call.func
    if (isinstance(func, ast.Attribute) and func.attr == "call"
            and isinstance(func.value, ast.Attribute)
            and isinstance(func.value.value, ast.Name)
            and func.value.value.id == "self"):
        return func.value.attr
    return None


def _match_self_call(call: ast.Call) -> str | None:
    """``self.<name>(...)`` → the method name, else None."""
    func = call.func
    if (isinstance(func, ast.Attribute)
            and isinstance(func.value, ast.Name)
            and func.value.id == "self"):
        return func.attr
    return None


def _is_dynamic(node: ast.AST, tainted: set[str]) -> bool:
    """Heuristic: does *node* depend on a run-time hardware value?"""
    for child in ast.walk(node):
        if isinstance(child, ast.Call):
            func = child.func
            if isinstance(func, ast.Attribute) and func.attr == "read":
                return True
        if isinstance(child, ast.Name) and child.id in tainted:
            return True
        if isinstance(child, (ast.Yield, ast.YieldFrom)):
            return True
    return False


class FunctionCheck:
    """Result of checking one function body."""

    __slots__ = ("helper_calls", "port_calls")

    def __init__(self) -> None:
        #: ``yield from self.<helper>(...)`` sites: (name, node).
        self.helper_calls: list[tuple[str, ast.AST]] = []
        #: ``yield from self.<port>.call(...)`` sites: (attr, node).
        self.port_calls: list[tuple[str, ast.AST]] = []


class _FunctionChecker:
    """Checks one function body in a given context *kind*.

    ``kind`` is one of ``"thread"`` (clocked process), ``"cmethod"``
    (combinational method), ``"helper"`` (behavioral generator helper)
    or ``"hwmethod"`` (hardware-class method).
    """

    def __init__(self, collector: DiagnosticCollector, source: FunctionSource,
                 where: str, kind: str) -> None:
        self.collector = collector
        self.file = source.file
        self.where = where
        self.kind = kind
        self.tainted: set[str] = set()
        self.result = FunctionCheck()
        #: Yield nodes consumed by a recognized statement form.
        self._claimed: set[int] = set()

    # ------------------------------------------------------------------
    def emit(self, code: str, message: str, node: ast.AST) -> None:
        self.collector.emit(code, message, where=self.where, file=self.file,
                            node=node)

    def check(self, funcdef: ast.FunctionDef) -> FunctionCheck:
        self._block(funcdef.body)
        self._scan_expressions(funcdef)
        return self.result

    # ------------------------------------------------------------------
    # statements
    # ------------------------------------------------------------------
    def _block(self, body: list[ast.stmt]) -> None:
        terminated = False
        for stmt in body:
            if terminated:
                self.emit("RTL402", "statement is unreachable", stmt)
                terminated = False  # report once per block
            self._statement(stmt)
            if isinstance(stmt, (ast.Return, ast.Break, ast.Continue,
                                 ast.Raise)):
                terminated = True
            elif isinstance(stmt, ast.While) and self._is_while_true(stmt) \
                    and not self._has_break(stmt):
                terminated = True

    @staticmethod
    def _is_while_true(stmt: ast.While) -> bool:
        test = stmt.test
        return isinstance(test, ast.Constant) and bool(test.value) is True

    @staticmethod
    def _has_break(stmt: ast.While) -> bool:
        return any(isinstance(node, ast.Break) for node in ast.walk(stmt))

    def _statement(self, stmt: ast.stmt) -> None:
        if isinstance(stmt, _BANNED_STMTS):
            self.emit("OSS101",
                      f"{type(stmt).__name__} is outside the synthesizable "
                      "subset", stmt)
            return
        if isinstance(stmt, (ast.Pass, ast.Assert, ast.Break, ast.Continue)):
            return
        if isinstance(stmt, ast.Return):
            self._return(stmt)
            return
        if isinstance(stmt, ast.Expr):
            self._expr_statement(stmt)
            return
        if isinstance(stmt, ast.Assign):
            self._assign(stmt)
            return
        if isinstance(stmt, ast.AnnAssign):
            if stmt.value is None:
                self.emit("OSS101", "declarations need an initializer", stmt)
            elif isinstance(stmt.target, ast.Name):
                self._note_taint((stmt.target.id,), stmt.value)
            return
        if isinstance(stmt, ast.AugAssign):
            if isinstance(stmt.target, ast.Name):
                self._note_taint((stmt.target.id,), stmt.value)
            return
        if isinstance(stmt, ast.If):
            self._block(stmt.body)
            self._block(stmt.orelse)
            return
        if isinstance(stmt, ast.While):
            self._while(stmt)
            return
        if isinstance(stmt, ast.For):
            self._for(stmt)
            return
        self.emit("OSS101",
                  f"{type(stmt).__name__} is outside the synthesizable "
                  "subset", stmt)

    def _return(self, stmt: ast.Return) -> None:
        if stmt.value is None:
            return
        if self.kind == "thread":
            self.emit("OSS109", "processes cannot return values", stmt)
        elif self.kind == "cmethod":
            self.emit("OSS206", "combinational methods cannot return "
                      "values", stmt)

    def _expr_statement(self, stmt: ast.Expr) -> None:
        value = stmt.value
        if isinstance(value, ast.Constant):
            return  # docstring
        if isinstance(value, ast.Yield):
            self._claimed.add(id(value))
            if self.kind in ("cmethod", "hwmethod"):
                self.emit("OSS202", "wait() inside a class method or "
                          "combinational method is not synthesizable", stmt)
            if value.value is not None:
                self.emit("OSS108", "yield must carry no value (it is "
                          "wait())", stmt)
            return
        if isinstance(value, ast.YieldFrom):
            self._yield_from(stmt, value, target=None)
            return
        # Plain expression statement (usually a write or object call).

    def _assign(self, stmt: ast.Assign) -> None:
        if len(stmt.targets) != 1:
            self.emit("OSS101", "chained assignment is not synthesizable",
                      stmt)
            return
        target = stmt.targets[0]
        if isinstance(target, (ast.Tuple, ast.List, ast.Starred,
                               ast.Subscript)):
            self.emit("OSS101", "unsupported assignment target", stmt)
            return
        if isinstance(stmt.value, ast.YieldFrom):
            if not isinstance(target, ast.Name):
                self.emit("OSS108", "yield-from result must bind a simple "
                          "name", stmt)
                return
            self.tainted.add(target.id)
            self._yield_from(stmt, stmt.value, target=target.id)
            return
        if isinstance(target, ast.Name):
            self._note_taint((target.id,), stmt.value)

    def _note_taint(self, names: tuple[str, ...], value: ast.AST) -> None:
        if _is_dynamic(value, self.tainted):
            self.tainted.update(names)

    def _yield_from(self, stmt: ast.stmt, node: ast.YieldFrom,
                    target: str | None) -> None:
        self._claimed.add(id(node))
        call = node.value
        if not (isinstance(call, ast.Call)
                and isinstance(call.func, ast.Attribute)):
            self.emit("OSS108", "yield from is only synthesizable as "
                      "port.call(...) or self.helper(...)", stmt)
            return
        port_attr = _match_port_call(call)
        if port_attr is not None:
            if self.kind in ("cmethod", "hwmethod"):
                self.emit("OSS302", "shared-object call inside a "
                          "combinational context deadlocks (the caller "
                          "cannot wait for the arbiter)", stmt)
            if not (call.args and isinstance(call.args[0], ast.Constant)
                    and isinstance(call.args[0].value, str)):
                self.emit("OSS108", "the method name in port.call() must "
                          "be a string literal", stmt)
            self.result.port_calls.append((port_attr, stmt))
            return
        helper = _match_self_call(call)
        if helper is not None:
            if self.kind in ("cmethod", "hwmethod"):
                self.emit("OSS202", "wait() inside a class method or "
                          "combinational method is not synthesizable", stmt)
            self.result.helper_calls.append((helper, stmt))
            return
        self.emit("OSS108", "yield from is only synthesizable as "
                  "port.call(...) or self.helper(...)", stmt)

    def _while(self, stmt: ast.While) -> None:
        if not contains_yield(stmt) and _is_dynamic(stmt.test, self.tainted):
            self.emit("OSS103", "while loop over a run-time condition never "
                      "reaches a wait (add a yield inside the loop body)",
                      stmt)
        self._block(stmt.body)
        self._block(stmt.orelse)

    def _for(self, stmt: ast.For) -> None:
        if not (isinstance(stmt.iter, ast.Call)
                and isinstance(stmt.iter.func, ast.Name)
                and stmt.iter.func.id == "range"):
            self.emit("OSS104", "for loops must iterate over constant "
                      "range(...)", stmt)
        elif _is_dynamic(stmt.iter, self.tainted):
            self.emit("OSS104", "range bounds must be compile-time "
                      "constants", stmt)
        if not isinstance(stmt.target, ast.Name):
            self.emit("OSS104", "for target must be a simple name", stmt)
        self._block(stmt.body)
        self._block(stmt.orelse)

    # ------------------------------------------------------------------
    # expressions (context-free scan, skipping nested function scopes)
    # ------------------------------------------------------------------
    def _scan_expressions(self, funcdef: ast.FunctionDef) -> None:
        stack: list[ast.AST] = list(ast.iter_child_nodes(funcdef))
        while stack:
            node = stack.pop()
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef,
                                 ast.Lambda, ast.ClassDef)):
                continue  # flagged as a statement; don't descend
            self._expression(node)
            stack.extend(ast.iter_child_nodes(node))

    def _expression(self, node: ast.AST) -> None:
        if isinstance(node, _BANNED_EXPRS):
            self.emit("OSS101",
                      f"{type(node).__name__} is outside the synthesizable "
                      "subset", node)
        elif isinstance(node, ast.Constant):
            if isinstance(node.value, (float, complex, bytes)):
                self.emit("OSS102", f"constant {node.value!r} is not "
                          "synthesizable", node)
        elif isinstance(node, ast.Compare):
            if len(node.ops) > 1:
                self.emit("OSS106", "chained comparisons are not "
                          "synthesizable", node)
        elif isinstance(node, ast.Call):
            if node.keywords:
                self.emit("OSS107", "keyword arguments are not "
                          "synthesizable", node)
        elif isinstance(node, (ast.Dict, ast.Set, ast.List)):
            self.emit("OSS113", f"{type(node).__name__.lower()} literals "
                      "are not synthesizable", node)
        elif isinstance(node, ast.BinOp):
            self._binop(node)
        elif isinstance(node, (ast.Yield, ast.YieldFrom)):
            if id(node) not in self._claimed:
                self.emit("OSS108", "yield is only synthesizable as a "
                          "statement (wait) or 'x = yield from "
                          "port.call(...)'", node)

    def _binop(self, node: ast.BinOp) -> None:
        if isinstance(node.op, (ast.Div, ast.MatMult, ast.Pow)):
            name = {"Div": "/", "MatMult": "@", "Pow": "**"}[
                type(node.op).__name__]
            self.emit("OSS105" if isinstance(node.op, ast.Div) else "OSS101",
                      f"operator {name} is not synthesizable", node)
            return
        if isinstance(node.op, (ast.FloorDiv, ast.Mod)):
            right = node.right
            if isinstance(right, ast.Constant) \
                    and isinstance(right.value, int):
                if not is_power_of_two(right.value):
                    self.emit("OSS105", "division/modulo only by constant "
                              "powers of two is synthesizable", node)
            elif _is_dynamic(right, self.tainted):
                self.emit("OSS105", "division/modulo by a run-time value "
                          "is not synthesizable; use a sequential divider",
                          node)


# ----------------------------------------------------------------------
# design traversal
# ----------------------------------------------------------------------
def iter_process_functions(
    module: Module,
) -> Iterator[tuple[str, str, FunctionSource]]:
    """Yield ``(name, kind, source)`` for every process of *module* and
    every behavioral helper transitively reachable from one.

    ``kind`` is ``"thread"``, ``"cmethod"`` or ``"helper"``.  Helpers are
    yielded once even when several threads use them.
    """
    seen_helpers: set[str] = set()
    queue: list[tuple[str, ast.AST | None]] = []
    for process in module.processes:
        source = load_function(process.body)
        if source is None:
            continue
        kind = "thread" if isinstance(process, CThread) else "cmethod"
        short = process.name.rsplit(".", 1)[-1]
        yield short, kind, source
        for name, node in _helper_names(source.funcdef):
            if name not in seen_helpers:
                seen_helpers.add(name)
                queue.append((name, node))
    while queue:
        name, _node = queue.pop(0)
        func = getattr(module, name, None)
        if func is None or not callable(func):
            continue  # reported as OSS116 by check_module_subset
        source = load_function(func)
        if source is None:
            continue
        yield name, "helper", source
        for inner, node in _helper_names(source.funcdef):
            if inner not in seen_helpers:
                seen_helpers.add(inner)
                queue.append((inner, node))


def _helper_names(funcdef: ast.FunctionDef) -> list[tuple[str, ast.AST]]:
    found = []
    for node in ast.walk(funcdef):
        if isinstance(node, ast.YieldFrom) \
                and isinstance(node.value, ast.Call):
            call = node.value
            if _match_port_call(call) is None:
                name = _match_self_call(call)
                if name is not None:
                    found.append((name, node))
    return found


def check_module_subset(collector: DiagnosticCollector,
                        module: Module) -> dict[str, set[str]]:
    """Check every process (and helper) of one module.

    Returns the port-usage map ``{port_attr: {process names}}`` used by the
    shared-object pass for the one-port-per-process rule.
    """
    port_users: dict[str, set[str]] = {}
    helper_results: dict[str, FunctionCheck] = {}
    process_results: list[tuple[str, str, FunctionCheck]] = []
    for name, kind, source in iter_process_functions(module):
        register_suppressions(source, collector.suppressions)
        where = f"{module.full_name}.{name}"
        checker = _FunctionChecker(collector, source, where, kind)
        result = checker.check(source.funcdef)
        if kind == "thread" and not contains_yield(source.funcdef):
            collector.emit(
                "OSS103",
                "clocked thread never reaches a wait (no yield)",
                where=where, file=source.file, node=source.funcdef,
            )
        if kind == "helper":
            helper_results[name] = result
        else:
            process_results.append((name, kind, result))
        for helper, node in result.helper_calls:
            func = getattr(module, helper, None)
            if func is None or not callable(func):
                collector.emit(
                    "OSS116",
                    f"module has no behavioral helper {helper!r}",
                    where=where, file=source.file, node=node,
                )
    # Helper recursion (a helper reachable from itself) deadlocks the
    # continuation splice in the FSM builder.
    graph = {
        name: {callee for callee, _ in result.helper_calls}
        for name, result in helper_results.items()
    }
    for name in sorted(_cycle_members(graph)):
        collector.emit(
            "OSS201",
            f"behavioral helper {name!r} is recursive",
            where=f"{module.full_name}.{name}",
        )
    # Port usage, attributing helper calls to every process that can
    # reach the helper.
    for name, kind, result in process_results:
        attrs = {attr for attr, _ in result.port_calls}
        reached: set[str] = set()
        frontier = [callee for callee, _ in result.helper_calls]
        while frontier:
            helper = frontier.pop()
            if helper in reached or helper not in helper_results:
                continue
            reached.add(helper)
            helper_result = helper_results[helper]
            attrs.update(attr for attr, _ in helper_result.port_calls)
            frontier.extend(c for c, _ in helper_result.helper_calls)
        for attr in attrs:
            port_users.setdefault(attr, set()).add(name)
    return port_users


def _cycle_members(graph: dict[str, set[str]]) -> set[str]:
    """Names participating in (or reaching) a call cycle of *graph*."""
    members: set[str] = set()

    def visit(name: str, stack: tuple[str, ...]) -> None:
        if name in stack:
            members.update(stack[stack.index(name):])
            return
        for callee in graph.get(name, ()):
            visit(callee, stack + (name,))

    for name in graph:
        visit(name, ())
    return members


# ----------------------------------------------------------------------
# hardware-class methods
# ----------------------------------------------------------------------
def user_methods(cls: type) -> list[str]:
    """The user-defined (synthesized) method names of a hardware class."""
    return sorted(
        name
        for name in dir(cls)
        if not name.startswith("_")
        and callable(getattr(cls, name, None))
        and name not in _NON_USER_METHODS
    )


def check_hw_class(collector: DiagnosticCollector, cls: type,
                   *, guarded: bool = False) -> None:
    """Check every user method of hardware class *cls*.

    ``guarded=True`` marks classes living behind a shared-object arbiter:
    a call cycle there self-deadlocks the arbiter (OSS303) instead of
    merely being unsynthesizable recursion (OSS201).
    """
    methods = user_methods(cls)
    graph: dict[str, set[str]] = {}
    locations: dict[str, tuple[str | None, int | None]] = {}
    for name in methods:
        func = getattr(cls, name)
        source = load_function(func)
        if source is None:
            continue
        register_suppressions(source, collector.suppressions)
        where = f"{cls.__name__}.{name}"
        locations[name] = (source.file, source.funcdef.lineno)
        checker = _FunctionChecker(collector, source, where, "hwmethod")
        checker.check(source.funcdef)
        calls: set[str] = set()
        for node in ast.walk(source.funcdef):
            if isinstance(node, ast.Call):
                callee = _match_self_call(node)
                if callee is not None and callee in methods:
                    calls.add(callee)
        graph[name] = calls
    for name in sorted(_cycle_members(graph)):
        file, line = locations.get(name, (None, None))
        if guarded:
            collector.emit(
                "OSS303",
                f"{cls.__name__}.{name} participates in a call cycle "
                "inside a shared object; the arbiter serves one call at a "
                "time, so the inner call deadlocks",
                where=f"{cls.__name__}.{name}", file=file, line=line,
            )
        else:
            collector.emit(
                "OSS201",
                f"{cls.__name__}.{name} participates in a recursive call "
                "cycle",
                where=f"{cls.__name__}.{name}", file=file, line=line,
            )


def design_hw_classes(top: Module) -> dict[type, bool]:
    """All hardware classes of the design: ``{class: is_guarded}``."""
    classes: dict[type, bool] = {}
    for module in top.iter_modules():
        for value in vars(module).values():
            if isinstance(value, HwClass):
                classes.setdefault(type(value), False)
            elif isinstance(value, SharedObject):
                classes[type(value.instance)] = True
            elif isinstance(value, ClientPort):
                classes[type(value.owner.instance)] = True
    return classes


def check_design_subset(collector: DiagnosticCollector,
                        top: Module) -> dict[Module, dict[str, set[str]]]:
    """Subset-check every module and hardware class of the design.

    Returns the per-module port-usage maps for the shared-object pass.
    """
    usage: dict[Module, dict[str, set[str]]] = {}
    for module in top.iter_modules():
        usage[module] = check_module_subset(collector, module)
    for cls, guarded in design_hw_classes(top).items():
        check_hw_class(collector, cls, guarded=guarded)
    return usage
