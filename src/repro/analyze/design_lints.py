"""Design-level lints (codes RTL4xx, all warnings).

These checks mirror what the RTL linter (:mod:`repro.rtl.lint`) finds on
the *generated* netlist, but run on the OSSS source before synthesis, so
``repro lint`` can flag them even for designs the synthesizer rejects:

``RTL401``
    Width truncation: ``self.port.write(expr)`` where the statically
    inferred width of *expr* exceeds the port/signal width.  The
    inference follows the datatype semantics (``+``/``-``/bitwise keep
    ``max`` width, ``*`` sums widths, shifts and ``//``/``%`` keep the
    left width, comparisons produce one bit).
``RTL402``
    Unreachable statements (emitted by the subset walker during its
    block scan: code after ``return``/``break``/``continue`` or after a
    ``while True`` with no ``break``).
``RTL403`` / ``RTL405``
    Unused ports / signals: never bound, never referenced by a process
    body, not a clock, reset or sensitivity entry.
``RTL404``
    Unread registers — folded in from :class:`repro.rtl.lint.LintReport`
    after synthesis by :func:`diagnostics_from_lint_report`.
"""

from __future__ import annotations

import ast

from repro.analyze.diagnostics import Diagnostic, DiagnosticCollector
from repro.analyze.source import FunctionSource, load_function
from repro.analyze.subset import iter_process_functions
from repro.hdl.module import Module, Port
from repro.hdl.process import CMethod, CThread
from repro.hdl.signal import Signal
from repro.rtl.lint import LintReport

#: Value methods that keep their receiver's width.
_WIDTH_PRESERVING = frozenset(
    ("to_unsigned", "to_signed", "to_bits", "with_bit", "with_range")
)
#: Value methods that reduce to one bit.
_ONE_BIT = frozenset(("reduce_or", "reduce_and", "reduce_xor", "bit"))
#: Hardware-value constructors: name -> index of the width argument
#: (None: always one bit wide).
_CONSTRUCTOR_WIDTH = {
    "Unsigned": 0, "Signed": 0, "BitVector": 0, "Bit": None,
}


class _WidthInference:
    """Best-effort static width inference over one process body.

    Returns ``None`` whenever the width is not statically obvious —
    the truncation lint only fires on certain wins.
    """

    def __init__(self, module: Module) -> None:
        self.module = module
        self.locals: dict[str, int | None] = {}

    # ------------------------------------------------------------------
    def target_width(self, attr: str) -> int | None:
        """Width of ``self.<attr>`` when it is a port or signal."""
        port = self.module.ports().get(attr)
        if port is not None:
            return port.spec.width
        value = vars(self.module).get(attr)
        if isinstance(value, Signal):
            return value.spec.width
        return None

    def infer(self, node: ast.AST) -> int | None:
        if isinstance(node, ast.Constant):
            if isinstance(node.value, bool):
                return 1
            if isinstance(node.value, int):
                return max(1, node.value.bit_length())
            return None
        if isinstance(node, ast.Name):
            return self.locals.get(node.id)
        if isinstance(node, ast.Call):
            return self._infer_call(node)
        if isinstance(node, ast.BinOp):
            return self._infer_binop(node)
        if isinstance(node, (ast.Compare, ast.BoolOp)):
            return 1
        if isinstance(node, ast.UnaryOp):
            if isinstance(node.op, ast.Not):
                return 1
            return self.infer(node.operand)
        if isinstance(node, ast.IfExp):
            body = self.infer(node.body)
            orelse = self.infer(node.orelse)
            if body is None or orelse is None:
                return None
            return max(body, orelse)
        return None

    def _infer_call(self, node: ast.Call) -> int | None:
        func = node.func
        if isinstance(func, ast.Name):
            # Hardware-value constructors with a literal width.
            if func.id in _CONSTRUCTOR_WIDTH:
                index = _CONSTRUCTOR_WIDTH[func.id]
                if index is None:
                    return 1
                if len(node.args) > index:
                    width_arg = node.args[index]
                    if isinstance(width_arg, ast.Constant) \
                            and isinstance(width_arg.value, int):
                        return width_arg.value
            return None
        if not isinstance(func, ast.Attribute):
            return None
        method = func.attr
        if method == "read":
            # self.<attr>.read() of a port or signal.
            value = func.value
            if (isinstance(value, ast.Attribute)
                    and isinstance(value.value, ast.Name)
                    and value.value.id == "self"):
                return self.target_width(value.attr)
            return None
        if method == "resized" and node.args:
            arg = node.args[0]
            if isinstance(arg, ast.Constant) and isinstance(arg.value, int):
                return arg.value
            return None
        if method in _ONE_BIT:
            return 1
        if method == "range" and len(node.args) == 2:
            high, low = node.args
            if (isinstance(high, ast.Constant)
                    and isinstance(high.value, int)
                    and isinstance(low, ast.Constant)
                    and isinstance(low.value, int)):
                return high.value - low.value + 1
            return None
        if method == "concat" and node.args:
            left = self.infer(func.value)
            right = self.infer(node.args[0])
            if left is None or right is None:
                return None
            return left + right
        if method in _WIDTH_PRESERVING:
            return self.infer(func.value)
        return None

    def _infer_binop(self, node: ast.BinOp) -> int | None:
        left = self.infer(node.left)
        if isinstance(node.op, (ast.LShift, ast.RShift, ast.FloorDiv,
                                ast.Mod)):
            return left
        right = self.infer(node.right)
        if left is None or right is None:
            return None
        if isinstance(node.op, ast.Mult):
            return left + right
        if isinstance(node.op, (ast.Add, ast.Sub, ast.BitOr, ast.BitAnd,
                                ast.BitXor)):
            return max(left, right)
        return None


def _check_widths(collector: DiagnosticCollector, module: Module,
                  name: str, source: FunctionSource) -> None:
    """RTL401 over one process/helper body (statements in source order)."""
    inference = _WidthInference(module)
    where = f"{module.full_name}.{name}"

    def visit_block(body: list[ast.stmt]) -> None:
        for stmt in body:
            if isinstance(stmt, ast.Assign) and len(stmt.targets) == 1 \
                    and isinstance(stmt.targets[0], ast.Name):
                inference.locals[stmt.targets[0].id] = \
                    inference.infer(stmt.value)
            elif isinstance(stmt, ast.Expr):
                _check_write(stmt.value, stmt)
            for child in (getattr(stmt, "body", None),
                          getattr(stmt, "orelse", None),
                          getattr(stmt, "finalbody", None)):
                if child:
                    visit_block(child)

    def _check_write(value: ast.expr, stmt: ast.stmt) -> None:
        if not (isinstance(value, ast.Call)
                and isinstance(value.func, ast.Attribute)
                and value.func.attr == "write"
                and len(value.args) == 1):
            return
        target = value.func.value
        if not (isinstance(target, ast.Attribute)
                and isinstance(target.value, ast.Name)
                and target.value.id == "self"):
            return
        target_width = inference.target_width(target.attr)
        if target_width is None:
            return
        expr_width = inference.infer(value.args[0])
        if expr_width is not None and expr_width > target_width:
            collector.emit(
                "RTL401",
                f"writing a {expr_width}-bit expression to the "
                f"{target_width}-bit target self.{target.attr} truncates; "
                "use .resized() to make the narrowing explicit",
                where=where, file=source.file, node=stmt,
            )

    visit_block(source.funcdef.body)


def check_widths(collector: DiagnosticCollector, top: Module) -> None:
    """RTL401 width-truncation lint over the whole design."""
    for module in top.iter_modules():
        for name, _kind, source in iter_process_functions(module):
            _check_widths(collector, module, name, source)


# ----------------------------------------------------------------------
# unused ports and signals
# ----------------------------------------------------------------------
def check_unused(collector: DiagnosticCollector, top: Module) -> None:
    """RTL403 (unused ports) and RTL405 (unused signals)."""
    modules = list(top.iter_modules())
    # Signal uids referenced by the module fabric itself.
    fabric_uids: set[int] = set()
    port_uid_count: dict[int, int] = {}
    for module in modules:
        for port in module.ports().values():
            uid = port.signal.uid
            port_uid_count[uid] = port_uid_count.get(uid, 0) + 1
        for process in module.processes:
            if isinstance(process, CThread):
                fabric_uids.add(process.clock.uid)
                if process.reset is not None:
                    fabric_uids.add(process.reset.uid)
            elif isinstance(process, CMethod):
                for item in process.sensitivity:
                    signal = item[0] if isinstance(item, tuple) else item
                    if isinstance(signal, Signal):
                        fabric_uids.add(signal.uid)
    for module in modules:
        referenced = _referenced_attrs(module)
        for name, port in sorted(module.ports().items()):
            uid = port.signal.uid
            if (name in referenced or port_uid_count.get(uid, 0) >= 2
                    or uid in fabric_uids):
                continue
            collector.emit(
                "RTL403",
                f"port {name!r} of {module.full_name} is never bound or "
                "accessed",
                where=module.full_name,
            )
        signal_attrs: dict[int, list[str]] = {}
        signal_by_uid: dict[int, Signal] = {}
        for attr, value in vars(module).items():
            if isinstance(value, Signal):
                signal_attrs.setdefault(value.uid, []).append(attr)
                signal_by_uid[value.uid] = value
        for uid, attrs in sorted(signal_attrs.items()):
            if (uid in port_uid_count or uid in fabric_uids
                    or any(attr in referenced for attr in attrs)):
                continue
            collector.emit(
                "RTL405",
                f"signal {signal_by_uid[uid].name!r} of "
                f"{module.full_name} is never connected or accessed",
                where=module.full_name,
            )


def _referenced_attrs(module: Module) -> set[str]:
    """``self.<attr>`` names used anywhere in the module's process code."""
    referenced: set[str] = set()
    for _name, _kind, source in iter_process_functions(module):
        for node in ast.walk(source.funcdef):
            if (isinstance(node, ast.Attribute)
                    and isinstance(node.value, ast.Name)
                    and node.value.id == "self"):
                referenced.add(node.attr)
    return referenced


# ----------------------------------------------------------------------
# post-synthesis fold
# ----------------------------------------------------------------------
def diagnostics_from_lint_report(report: LintReport,
                                 where: str = "") -> list[Diagnostic]:
    """Fold an RTL :class:`LintReport` into the diagnostic stream."""
    found: list[Diagnostic] = []
    for name in report.unused_inputs:
        found.append(Diagnostic(
            "RTL403", f"generated input {name!r} is never read", where
        ))
    for name in report.unread_registers:
        found.append(Diagnostic(
            "RTL404", f"generated register {name!r} is never read", where
        ))
    return found
