"""Observability/testability lints over an optimized netlist.

Findings surface through the analyzer's :class:`DiagnosticCollector`
with stable ``OSS5xx`` codes so ``repro lint``/``repro analyze`` emit
them through the shared text/JSON/SARIF renderers:

========  ==========================================================
OSS501    a cell's output reaches no primary output (unobservable
          logic — its faults can never be detected)
OSS502    a stuck-at fault site whose required test value is
          unreachable (controllability :data:`~.scoap.INF`)
OSS503    a cell whose output stuck-at faults are all untestable —
          a redundant-logic candidate
========  ==========================================================

Lints walk *connected* nets only (cell pins and bus members); stale
nets the optimizer left behind in ``circuit.nets`` carry no logic and
are skipped.
"""

from __future__ import annotations

from repro.analyze.diagnostics import DiagnosticCollector
from repro.analyze.netlist.scoap import INF, TestabilityReport
from repro.netlist.circuit import Circuit


def netlist_lints(circuit: Circuit, report: TestabilityReport,
                  collector: DiagnosticCollector) -> None:
    """Emit OSS501/OSS502/OSS503 findings for *circuit* into *collector*."""
    seeds = [net for nets in circuit.output_buses.values() for net in nets]
    cone_nets, cone_cells = circuit.fanin_cone(seeds)
    const_uids = {net.uid for net in circuit.constant_nets().values()}
    where = circuit.name

    for cell in circuit.cells:
        if cell.ctype.name.startswith("TIE"):
            continue
        out = cell.pins[cell.ctype.outputs[0]]
        if cell.uid not in cone_cells:
            collector.emit(
                "OSS501",
                f"cell '{cell.name}' ({cell.ctype.name}) drives net "
                f"'{out.name}' which reaches no primary output",
                where=where,
            )
            continue
        sa0 = report.sa_score(out.uid, 0)
        sa1 = report.sa_score(out.uid, 1)
        if sa0 == INF and sa1 == INF:
            collector.emit(
                "OSS503",
                f"cell '{cell.name}' ({cell.ctype.name}) is a "
                f"redundant-logic candidate: neither stuck-at fault on "
                f"net '{out.name}' is testable",
                where=where,
            )

    # Per-fault untestability on connected, in-cone, non-constant nets.
    reported: set[int] = set()
    connected = [
        net
        for cell in circuit.cells
        for net in (*cell.input_nets(), *cell.output_nets())
    ] + seeds
    for net in connected:
        uid = net.uid
        if uid in reported or uid not in cone_nets or uid in const_uids:
            continue
        reported.add(uid)
        if report.cc1[uid] == INF:
            collector.emit(
                "OSS502",
                f"stuck-at-0 on net '{net.name}' is untestable: the net "
                f"can never be driven to 1",
                where=where,
            )
        if report.cc0[uid] == INF:
            collector.emit(
                "OSS502",
                f"stuck-at-1 on net '{net.name}' is untestable: the net "
                f"can never be driven to 0",
                where=where,
            )
