"""Structural stuck-at fault collapsing.

Two classical reductions over the gate graph (McCluskey's equivalence
and dominance analysis), computed purely structurally so they hold for
*any* stimulus:

* **Equivalence** — a stuck-at fault on a gate input that forces the
  gate's output is indistinguishable from the corresponding stuck-at
  fault on the output, provided the input wire feeds nothing else and
  is not itself observed.  ``a``-sa0 on an AND2 forces ``y`` to 0
  exactly as ``y``-sa0 does; a campaign only needs to simulate one of
  them.  Classes are built with a union-find over ``(net uid, kind)``
  pairs; the campaign engine simulates one representative per class and
  copies its record to the other members
  (:func:`repro.fault.campaign.run_campaign` with ``collapse=True``).
  Because the members behave identically cycle-for-cycle, the expanded
  report is byte-identical to the uncollapsed oracle.

* **Dominance** — a test for ``a``-sa1 on an AND2 necessarily detects
  ``y``-sa1, so ``y``-sa1 can be dropped from a *test-generation* fault
  list.  Dominance does NOT preserve per-fault campaign records (the
  dominated fault is detected by a superset of tests, not the same
  tests), so it is reported for analysis only and never feeds record
  expansion.
"""

from __future__ import annotations

from repro.netlist.circuit import Circuit

#: Equivalence rules per cell type: ``input pin -> (v_in, v_out)`` such
#: that sa-``v_in`` on the input forces the output exactly like
#: sa-``v_out`` on the output.  XOR2/XNOR2/MUX2 have no forcing input
#: value and DFF crosses a cycle boundary, so they collapse nothing.
_GATE_RULES: dict[str, list[tuple[str, int, int]]] = {
    "BUF": [("a", 0, 0), ("a", 1, 1)],
    "INV": [("a", 0, 1), ("a", 1, 0)],
    "AND2": [("i0", 0, 0), ("i1", 0, 0)],
    "OR2": [("i0", 1, 1), ("i1", 1, 1)],
    "NAND2": [("i0", 0, 1), ("i1", 0, 1)],
    "NOR2": [("i0", 1, 0), ("i1", 1, 0)],
}

#: Dominance rules: ``cell type -> output kinds dominated by an input
#: fault`` (detected by every test for some input fault, hence
#: droppable from a test-generation list).  For INV/BUF the output
#: faults are outright equivalent to input faults, so both kinds drop.
_DOMINATED_OUTPUT_KINDS: dict[str, tuple[str, ...]] = {
    "AND2": ("sa1",),
    "OR2": ("sa0",),
    "NAND2": ("sa0",),
    "NOR2": ("sa1",),
    "INV": ("sa0", "sa1"),
    "BUF": ("sa0", "sa1"),
}


class FaultEquivalence:
    """Union-find over ``(net uid, kind)`` stuck-at fault sites."""

    def __init__(self) -> None:
        self._parent: dict[tuple[int, str], tuple[int, str]] = {}

    def find(self, site: tuple[int, str]) -> tuple[int, str]:
        """Class root of *site* (path-compressed)."""
        root = site
        while root in self._parent:
            root = self._parent[root]
        while site != root:
            parent = self._parent[site]
            self._parent[site] = root
            site = parent
        return root

    def union(self, a: tuple[int, str], b: tuple[int, str]) -> None:
        ra, rb = self.find(a), self.find(b)
        if ra != rb:
            self._parent[ra] = rb

    def classes(self) -> dict[tuple[int, str], list[tuple[int, str]]]:
        """Root → all member sites (roots included), members sorted."""
        grouped: dict[tuple[int, str], list[tuple[int, str]]] = {}
        for site in self._parent:
            grouped.setdefault(self.find(site), []).append(site)
        for root, members in grouped.items():
            members.append(root)
            members.sort()
        return grouped

    def __len__(self) -> int:
        """Number of non-representative (merged-away) sites."""
        return len(self._parent)


class CollapseAnalysis:
    """Result of :func:`collapse_faults` for one circuit."""

    __slots__ = ("design", "equivalence", "dominance_dropped")

    def __init__(self, design: str, equivalence: FaultEquivalence,
                 dominance_dropped: list[tuple[int, str]]) -> None:
        self.design = design
        self.equivalence = equivalence
        #: Output-fault sites droppable from a test-generation list
        #: by dominance (analysis only — never fed to record expansion).
        self.dominance_dropped = dominance_dropped

    def __repr__(self) -> str:
        return (f"CollapseAnalysis({self.design!r}, "
                f"merged={len(self.equivalence)}, "
                f"dominated={len(self.dominance_dropped)})")


def collapse_faults(circuit: Circuit) -> CollapseAnalysis:
    """Compute stuck-at equivalence classes and dominated faults.

    An input fault merges into the driving gate's output fault only
    when the input wire is a pure point-to-point connection:

    * exactly one cell load (the gate itself) — a second load would
      see the clamp under the input fault but not the output fault;
    * not part of any primary-output bus or black-box input — an
      observed wire is directly visible when clamped;
    * not a shared constant net — those are unfaultable by contract
      (see ``FaultableGateSimulator._slot_of``).
    """
    fanout = circuit.fanout_map()
    observed: set[int] = set()
    for nets in circuit.output_buses.values():
        observed.update(net.uid for net in nets)
    for box in circuit.blackboxes:
        for nets in box.input_buses.values():
            observed.update(net.uid for net in nets)
    unfaultable = {net.uid for net in circuit.constant_nets().values()}

    equivalence = FaultEquivalence()
    dominated: list[tuple[int, str]] = []
    for cell in circuit.cells:
        rules = _GATE_RULES.get(cell.ctype.name)
        out = cell.pins[cell.ctype.outputs[0]]
        if rules is not None:
            for pin, v_in, v_out in rules:
                net = cell.pins[pin]
                if net.uid in observed or net.uid in unfaultable:
                    continue
                if len(fanout.get(net.uid, ())) != 1:
                    continue
                equivalence.union((net.uid, f"sa{v_in}"),
                                  (out.uid, f"sa{v_out}"))
        kinds = _DOMINATED_OUTPUT_KINDS.get(cell.ctype.name)
        if kinds is not None and all(
            net.uid not in unfaultable for net in cell.input_nets()
        ):
            dominated.extend((out.uid, kind) for kind in kinds)
    return CollapseAnalysis(circuit.name, equivalence, dominated)
