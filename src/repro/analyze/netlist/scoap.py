"""SCOAP testability measures over a gate-level circuit.

Classical Sandia Controllability/Observability Analysis (Goldstein 1979),
adapted to the cell library in :mod:`repro.netlist.cells`:

* **CC0/CC1** — combinational 0-/1-controllability: how many net
  assignments it takes to drive a net to 0 or 1 from the primary inputs
  (primary inputs cost 1, every cell traversal adds 1).
* **CO** — observability: how many assignments it takes to propagate a
  value change on a net to a primary output (outputs cost 0; side
  inputs of the propagation path must be driven to non-controlling
  values, which charges their controllability).

Flip-flops add one traversal (``CC(q) = CC(d) + 1``, ``CO(d) = CO(q) +
1``) and may close cycles, so both directions iterate to a fixed point:
scores start at :data:`INF` and only ever decrease, which makes the
iteration monotone and terminating.  A score that stays :data:`INF` is
a structural impossibility — the net can never be driven to that value
(controllability) or never be observed (observability) — which is what
the :mod:`repro.analyze.netlist.lints` pass reports.
"""

from __future__ import annotations

from repro.netlist.circuit import Cell, Circuit

#: Unreachable score: the net cannot be controlled/observed at all.
INF = float("inf")


class TestabilityReport:
    """Per-net SCOAP scores for one circuit.

    Scores are keyed by net uid; :data:`INF` marks structural
    impossibility.  ``T(sa0) = CC1 + CO`` and ``T(sa1) = CC0 + CO`` are
    the classical per-fault testability estimates (higher = harder to
    test; :data:`INF` = untestable).
    """

    __slots__ = ("design", "cc0", "cc1", "co")

    def __init__(self, design: str, cc0: dict[int, float],
                 cc1: dict[int, float], co: dict[int, float]) -> None:
        self.design = design
        self.cc0 = cc0
        self.cc1 = cc1
        self.co = co

    def sa_score(self, uid: int, value: int) -> float:
        """Testability of stuck-at-*value* on net *uid* (lower = easier).

        Testing stuck-at-v requires driving the net to the opposite
        value and observing it, so ``T(sa0) = CC1 + CO`` and
        ``T(sa1) = CC0 + CO``.
        """
        control = self.cc0[uid] if value else self.cc1[uid]
        return control + self.co[uid]

    def __repr__(self) -> str:
        return (f"TestabilityReport({self.design!r}, "
                f"nets={len(self.co)})")


def _cell_controllability(cell: Cell, cc0: dict[int, float],
                          cc1: dict[int, float]) -> tuple[float, float]:
    """(CC0, CC1) of *cell*'s output from its input scores."""
    name = cell.ctype.name
    if name == "TIE0":
        return 1.0, INF
    if name == "TIE1":
        return INF, 1.0
    if name == "DFF":
        d = cell.pins["d"].uid
        return cc0[d] + 1, cc1[d] + 1
    if name == "BUF":
        a = cell.pins["a"].uid
        return cc0[a] + 1, cc1[a] + 1
    if name == "INV":
        a = cell.pins["a"].uid
        return cc1[a] + 1, cc0[a] + 1
    if name == "MUX2":
        d0, d1 = cell.pins["d0"].uid, cell.pins["d1"].uid
        s = cell.pins["s"].uid
        return (min(cc0[s] + cc0[d0], cc1[s] + cc0[d1]) + 1,
                min(cc0[s] + cc1[d0], cc1[s] + cc1[d1]) + 1)
    a, b = cell.pins["i0"].uid, cell.pins["i1"].uid
    if name == "AND2":
        return min(cc0[a], cc0[b]) + 1, cc1[a] + cc1[b] + 1
    if name == "NAND2":
        return cc1[a] + cc1[b] + 1, min(cc0[a], cc0[b]) + 1
    if name == "OR2":
        return cc0[a] + cc0[b] + 1, min(cc1[a], cc1[b]) + 1
    if name == "NOR2":
        return min(cc1[a], cc1[b]) + 1, cc0[a] + cc0[b] + 1
    if name == "XOR2":
        return (min(cc0[a] + cc0[b], cc1[a] + cc1[b]) + 1,
                min(cc1[a] + cc0[b], cc0[a] + cc1[b]) + 1)
    if name == "XNOR2":
        return (min(cc1[a] + cc0[b], cc0[a] + cc1[b]) + 1,
                min(cc0[a] + cc0[b], cc1[a] + cc1[b]) + 1)
    raise ValueError(f"no controllability rule for cell type {name!r}")


def _branch_observability(cell: Cell, pin: str, co_out: float,
                          cc0: dict[int, float],
                          cc1: dict[int, float]) -> float:
    """CO contribution of driving *pin* of *cell* (output CO known)."""
    name = cell.ctype.name
    if name == "DFF" or name in ("BUF", "INV"):
        return co_out + 1
    if name == "MUX2":
        d0, d1 = cell.pins["d0"].uid, cell.pins["d1"].uid
        s = cell.pins["s"].uid
        if pin == "d0":
            return co_out + cc0[s] + 1
        if pin == "d1":
            return co_out + cc1[s] + 1
        # Select: the two data inputs must differ.
        return co_out + min(cc0[d0] + cc1[d1], cc1[d0] + cc0[d1]) + 1
    other = cell.pins["i1" if pin == "i0" else "i0"].uid
    if name in ("AND2", "NAND2"):
        return co_out + cc1[other] + 1
    if name in ("OR2", "NOR2"):
        return co_out + cc0[other] + 1
    if name in ("XOR2", "XNOR2"):
        return co_out + min(cc0[other], cc1[other]) + 1
    raise ValueError(f"no observability rule for cell type {name!r}")


def scoap_analysis(circuit: Circuit) -> TestabilityReport:
    """Compute CC0/CC1/CO for every net of *circuit*.

    Forward controllability and backward observability both sweep the
    combinational cells in (reverse) topological order with the flops
    relaxed between sweeps, iterating to a fixed point so sequential
    loops settle.  Stale nets left behind by the optimizer (no driver,
    no loads) simply keep their :data:`INF` scores.
    """
    cc0: dict[int, float] = {net.uid: INF for net in circuit.nets}
    cc1: dict[int, float] = {net.uid: INF for net in circuit.nets}
    for nets in circuit.input_buses.values():
        for net in nets:
            cc0[net.uid] = 1.0
            cc1[net.uid] = 1.0
    order = circuit.topological_comb_order()
    ties = [c for c in circuit.cells if c.ctype.name in ("TIE0", "TIE1")]
    flops = circuit.flops()
    forward = ties + order + flops
    for _ in range(len(flops) + 2):
        changed = False
        for cell in forward:
            out = cell.pins[cell.ctype.outputs[0]].uid
            new0, new1 = _cell_controllability(cell, cc0, cc1)
            if new0 < cc0[out]:
                cc0[out] = new0
                changed = True
            if new1 < cc1[out]:
                cc1[out] = new1
                changed = True
        if not changed:
            break

    co: dict[int, float] = {net.uid: INF for net in circuit.nets}
    for nets in circuit.output_buses.values():
        for net in nets:
            co[net.uid] = 0.0
    backward = list(reversed(order)) + flops
    for _ in range(len(flops) + 2):
        changed = False
        for cell in backward:
            out = cell.pins[cell.ctype.outputs[0]].uid
            co_out = co[out]
            if co_out == INF:
                continue
            for pin in cell.ctype.inputs:
                branch = _branch_observability(cell, pin, co_out, cc0, cc1)
                uid = cell.pins[pin].uid
                if branch < co[uid]:
                    co[uid] = branch
                    changed = True
        if not changed:
            break
    return TestabilityReport(circuit.name, cc0, cc1, co)
