"""Static structural analysis of gate-level netlists.

The netlist-side counterpart of the source-level Analyzer (paper
Fig. 6): everything here is computed from the circuit graph alone, with
no simulation, so its results hold for any stimulus.

* :mod:`~repro.analyze.netlist.scoap` — SCOAP controllability/
  observability scores per net;
* :mod:`~repro.analyze.netlist.collapse` — stuck-at fault equivalence
  classes (fed to the campaign engine's ``collapse=True`` mode) and
  dominance analysis;
* :mod:`~repro.analyze.netlist.lints` — ``OSS5xx`` diagnostics for
  unobservable logic, untestable faults and redundant-logic candidates;
* :mod:`~repro.analyze.netlist.report` — :func:`analyze_circuit`, the
  one-call entry point combining all three.
"""

from repro.analyze.netlist.collapse import (
    CollapseAnalysis,
    FaultEquivalence,
    collapse_faults,
)
from repro.analyze.netlist.lints import netlist_lints
from repro.analyze.netlist.report import NetlistAnalysis, analyze_circuit
from repro.analyze.netlist.scoap import (
    INF,
    TestabilityReport,
    scoap_analysis,
)

__all__ = [
    "CollapseAnalysis",
    "FaultEquivalence",
    "INF",
    "NetlistAnalysis",
    "TestabilityReport",
    "analyze_circuit",
    "collapse_faults",
    "netlist_lints",
    "scoap_analysis",
]
