"""Top-level netlist analysis: one call, one combined result."""

from __future__ import annotations

from typing import Any

from repro.analyze.diagnostics import Diagnostic, DiagnosticCollector
from repro.analyze.netlist.collapse import CollapseAnalysis, collapse_faults
from repro.analyze.netlist.lints import netlist_lints
from repro.analyze.netlist.scoap import (
    INF,
    TestabilityReport,
    scoap_analysis,
)
from repro.netlist.circuit import Circuit


class NetlistAnalysis:
    """Combined structural analysis of one gate-level circuit."""

    __slots__ = ("design", "testability", "collapse", "diagnostics")

    def __init__(self, design: str, testability: TestabilityReport,
                 collapse: CollapseAnalysis,
                 diagnostics: list[Diagnostic]) -> None:
        self.design = design
        self.testability = testability
        self.collapse = collapse
        self.diagnostics = diagnostics

    def summary(self) -> dict[str, Any]:
        """Headline numbers for the CLI and the JSON report."""
        finite = [score for score in self.testability.co.values()
                  if score != INF]
        by_code: dict[str, int] = {}
        for diag in self.diagnostics:
            by_code[diag.code] = by_code.get(diag.code, 0) + 1
        return {
            "design": self.design,
            "nets": len(self.testability.co),
            "equivalent_fault_sites_merged": len(self.collapse.equivalence),
            "equivalence_classes": len(self.collapse.equivalence.classes()),
            "dominance_droppable": len(self.collapse.dominance_dropped),
            "max_finite_observability": max(finite) if finite else 0.0,
            "diagnostics": by_code,
        }

    def __repr__(self) -> str:
        return (f"NetlistAnalysis({self.design!r}, "
                f"diagnostics={len(self.diagnostics)})")


def analyze_circuit(circuit: Circuit,
                    collector: DiagnosticCollector | None = None
                    ) -> NetlistAnalysis:
    """Run SCOAP, fault collapsing and the OSS5xx lints on *circuit*.

    When *collector* is given, findings accumulate there (the
    ``repro lint`` path, merging with source-level diagnostics);
    otherwise a private collector is used.  Either way the returned
    analysis carries the deduplicated findings of this circuit only.
    """
    own = DiagnosticCollector()
    testability = scoap_analysis(circuit)
    collapse = collapse_faults(circuit)
    netlist_lints(circuit, testability, own)
    diagnostics = own.diagnostics()
    if collector is not None:
        for diag in diagnostics:
            collector.emit(diag.code, diag.message, where=diag.where,
                           file=diag.file, line=diag.line)
    return NetlistAnalysis(circuit.name, testability, collapse, diagnostics)
