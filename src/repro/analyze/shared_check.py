"""Shared-object hazard detection (paper §6, §8; codes OSS3xx).

The OSSS methodology guarantees race freedom for global objects *only*
when every clocked thread reaches them through a :class:`ClientPort`
(``result = yield from port.call(...)``) so the generated arbiter can
serialize the accesses.  This pass finds the ways designs break that
contract:

``OSS301``
    A process body touches a :class:`SharedObject` attribute directly
    (``self.shared.call_direct(...)``, ``self.shared.instance...``),
    bypassing the scheduler — a race once two threads do it.
``OSS302``
    ``yield from port.call(...)`` inside a combinational method (flagged
    by the subset walker, which sees the method context).
``OSS303``
    A guarded object's method calls back into another method of the same
    object — the arbiter serves one call at a time, so the design
    deadlocks (detected by the hardware-class cycle check).
``OSS304``
    One :class:`ClientPort` used by two or more processes: the port's
    request register would have two drivers and the arbiter cannot tell
    the callers apart (the API contract is one port per process).

Static/dynamic pairing: OSS303 is the *static* face of shared-object
liveness — it rejects call cycles that provably self-deadlock.  Its
*dynamic* counterpart is the :class:`SharedObject` arbitration watchdog
(``watchdog_rounds``, see :mod:`repro.osss.shared`): deadlock or
starvation that only manifests at run time (scheduler choice, traffic
shape, injected faults) raises :class:`SharedAccessError` naming OSS303,
so static findings and run-time timeouts share one vocabulary.
"""

from __future__ import annotations

import ast

from repro.analyze.diagnostics import DiagnosticCollector
from repro.analyze.source import load_function, register_suppressions
from repro.analyze.subset import iter_process_functions
from repro.hdl.module import Module
from repro.osss.shared import ClientPort, SharedObject


def _shared_attrs(module: Module) -> dict[str, SharedObject]:
    return {
        attr: value
        for attr, value in vars(module).items()
        if isinstance(value, SharedObject)
    }


def _client_ports(module: Module) -> dict[str, ClientPort]:
    return {
        attr: value
        for attr, value in vars(module).items()
        if isinstance(value, ClientPort)
    }


def check_shared_objects(
    collector: DiagnosticCollector,
    top: Module,
    port_usage: dict[Module, dict[str, set[str]]] | None = None,
) -> None:
    """Run the shared-object hazard checks on the whole design.

    *port_usage* is the per-module ``{port_attr: {process names}}`` map
    produced by :func:`repro.analyze.subset.check_design_subset`; when not
    given it is recomputed here.
    """
    if port_usage is None:
        from repro.analyze.subset import check_module_subset

        scratch = DiagnosticCollector()  # discard duplicate subset findings
        port_usage = {
            module: check_module_subset(scratch, module)
            for module in top.iter_modules()
        }
    for module in top.iter_modules():
        shared = _shared_attrs(module)
        ports = _client_ports(module)
        _check_direct_access(collector, module, shared)
        _check_port_sharing(collector, module, ports,
                            port_usage.get(module, {}))


def _check_direct_access(collector: DiagnosticCollector, module: Module,
                         shared: dict[str, SharedObject]) -> None:
    """OSS301: process bodies referencing a SharedObject attribute."""
    if not shared:
        return
    for name, _kind, source in iter_process_functions(module):
        register_suppressions(source, collector.suppressions)
        where = f"{module.full_name}.{name}"
        for node in ast.walk(source.funcdef):
            if not (isinstance(node, ast.Attribute)
                    and isinstance(node.value, ast.Name)
                    and node.value.id == "self"
                    and node.attr in shared):
                continue
            obj = shared[node.attr]
            collector.emit(
                "OSS301",
                f"process accesses shared object {obj.name!r} directly "
                f"(self.{node.attr}); go through a client port so the "
                f"{type(obj.scheduler).__name__} arbiter can serialize "
                "the access",
                where=where, file=source.file, node=node,
            )


def _check_port_sharing(collector: DiagnosticCollector, module: Module,
                        ports: dict[str, ClientPort],
                        usage: dict[str, set[str]]) -> None:
    """OSS304: one client port driven from several processes."""
    for attr, users in sorted(usage.items()):
        if attr not in ports or len(users) < 2:
            continue
        port = ports[attr]
        file, line = _port_binding_site(module, attr)
        collector.emit(
            "OSS304",
            f"client port {port.owner.name}.{port.name} (self.{attr}) is "
            f"used by {len(users)} processes ({', '.join(sorted(users))}); "
            "create one client port per accessing process",
            where=module.full_name, file=file, line=line,
        )


def _port_binding_site(module: Module,
                       attr: str) -> tuple[str | None, int | None]:
    """Best-effort source location of ``self.<attr> = ...client_port(...)``
    in the module's ``__init__``."""
    source = load_function(type(module).__init__)
    if source is None:
        return None, None
    for node in ast.walk(source.funcdef):
        if (isinstance(node, ast.Assign) and len(node.targets) == 1
                and isinstance(node.targets[0], ast.Attribute)
                and node.targets[0].attr == attr):
            return source.file, node.lineno
    return source.file, source.funcdef.lineno
