"""The diagnostic model of the OSSS analyzer (paper Fig. 6).

Every finding of the static analyzer is a :class:`Diagnostic` carrying a
stable code from the rule registry below, so tooling (CI gates, editors,
the ``repro lint`` SARIF output) can classify findings without parsing
messages.  Code families:

========  ====================================================
OSS1xx    synthesizable-subset violations (statements,
          expressions, loops, widths)
OSS2xx    object-oriented / template / polymorphism misuse
OSS3xx    shared-object hazards (races, deadlocks, arbitration
          bypass)
RTL4xx    structural findings on the design or generated RTL
          (warnings: truncation, dead code, unused elements)
OSS5xx    netlist testability findings (unobservable logic,
          untestable stuck-at faults, redundant logic)
========  ====================================================

Per-line suppressions use the comment syntax ``# repro: ignore`` (all
codes) or ``# repro: ignore[OSS103,RTL401]`` (listed codes only) on the
flagged source line.
"""

from __future__ import annotations

import ast
import re
from typing import TYPE_CHECKING, Any, Iterable

if TYPE_CHECKING:  # pragma: no cover
    from repro.synth.common import SynthesisError

ERROR = "error"
WARNING = "warning"


class Rule:
    """One registered diagnostic rule."""

    __slots__ = ("code", "severity", "title")

    def __init__(self, code: str, severity: str, title: str) -> None:
        self.code = code
        self.severity = severity
        self.title = title

    def __repr__(self) -> str:
        return f"Rule({self.code}, {self.severity}, {self.title!r})"


RULES: dict[str, Rule] = {}


def _rule(code: str, severity: str, title: str) -> None:
    RULES[code] = Rule(code, severity, title)


# ---- OSS1xx: synthesizable-subset violations ----
_rule("OSS100", ERROR, "construct outside the synthesizable subset")
_rule("OSS101", ERROR, "unsupported statement or expression")
_rule("OSS102", ERROR, "non-synthesizable constant")
_rule("OSS103", ERROR, "loop does not reach a wait")
_rule("OSS104", ERROR, "for loop not over a constant range")
_rule("OSS105", ERROR, "division/modulo restriction violated")
_rule("OSS106", ERROR, "chained comparison")
_rule("OSS107", ERROR, "keyword arguments are not synthesizable")
_rule("OSS108", ERROR, "yield misuse")
_rule("OSS109", ERROR, "illegal return")
_rule("OSS110", ERROR, "condition is not one bit")
_rule("OSS111", ERROR, "width mismatch")
_rule("OSS112", ERROR, "value undefined or divergent on some path")
_rule("OSS113", ERROR, "containers are not synthesizable")
_rule("OSS114", ERROR, "signal has more than one driver")
_rule("OSS115", ERROR, "illegal port or clock access")
_rule("OSS116", ERROR, "unknown name or attribute")
# ---- OSS2xx: OO / template / polymorphism misuse ----
_rule("OSS201", ERROR, "recursive method call")
_rule("OSS202", ERROR, "wait inside a class or combinational method")
_rule("OSS203", ERROR, "hardware-class constructor misuse")
_rule("OSS204", ERROR, "unknown or unsynthesizable member")
_rule("OSS205", ERROR, "template misuse")
_rule("OSS206", ERROR, "combinational method violation")
_rule("OSS207", ERROR, "polymorphic interface violation")
# ---- OSS3xx: shared-object hazards ----
_rule("OSS301", ERROR, "shared object accessed without its scheduler port")
_rule("OSS302", ERROR, "shared-object call in combinational context")
_rule("OSS303", ERROR, "self-deadlocking shared-object call cycle")
_rule("OSS304", ERROR, "client port used by more than one process")
# ---- RTL4xx: structural findings ----
_rule("RTL401", WARNING, "width truncation on assignment")
_rule("RTL402", WARNING, "unreachable statement or FSM state")
_rule("RTL403", WARNING, "unused port")
_rule("RTL404", WARNING, "unread register")
_rule("RTL405", WARNING, "unused signal")
# ---- OSS5xx: netlist testability findings ----
_rule("OSS501", WARNING, "logic unobservable at any primary output")
_rule("OSS502", WARNING, "untestable stuck-at fault")
_rule("OSS503", WARNING, "redundant-logic candidate")


class Diagnostic:
    """One analyzer finding: a rule violation at a source location."""

    __slots__ = ("code", "message", "where", "file", "line")

    def __init__(self, code: str, message: str, where: str = "",
                 file: str | None = None, line: int | None = None) -> None:
        if code not in RULES:
            raise ValueError(f"unknown diagnostic code {code!r}")
        self.code = code
        self.message = message
        self.where = where
        self.file = file
        self.line = line

    @property
    def rule(self) -> Rule:
        """The registry entry this diagnostic instantiates."""
        return RULES[self.code]

    @property
    def severity(self) -> str:
        """``"error"`` or ``"warning"`` (from the rule registry)."""
        return self.rule.severity

    def sort_key(self) -> tuple:
        return (self.file or "", self.line or 0, self.code, self.where,
                self.message)

    def as_dict(self) -> dict[str, Any]:
        """Flat record for the JSON emitter."""
        return {
            "code": self.code,
            "severity": self.severity,
            "message": self.message,
            "where": self.where,
            "file": self.file,
            "line": self.line,
        }

    def render(self) -> str:
        """One human-readable line (the text emitter's format)."""
        location = "<design>"
        if self.file:
            location = self.file
            if self.line is not None:
                location = f"{self.file}:{self.line}"
        context = f" [{self.where}]" if self.where else ""
        return (f"{location}: {self.severity} {self.code}: "
                f"{self.message}{context}")

    def __repr__(self) -> str:
        return f"Diagnostic({self.render()!r})"


#: Matches ``# repro: ignore`` / ``# repro: ignore[OSS103,RTL401]``.
_SUPPRESS_RE = re.compile(
    r"#\s*repro:\s*ignore(?:\[(?P<codes>[A-Z0-9,\s]+)\])?"
)

#: Sentinel set meaning "every code is suppressed on this line".
ALL_CODES = frozenset({"*"})


class Suppressions:
    """Per-file, per-line suppression table built from source comments."""

    def __init__(self) -> None:
        self._by_line: dict[tuple[str, int], frozenset[str]] = {}

    def scan(self, file: str, lines: Iterable[str],
             first_lineno: int = 1) -> None:
        """Record suppression comments in *lines* (absolute numbering)."""
        for offset, text in enumerate(lines):
            match = _SUPPRESS_RE.search(text)
            if match is None:
                continue
            codes = match.group("codes")
            if codes is None:
                selected = ALL_CODES
            else:
                selected = frozenset(
                    code.strip() for code in codes.split(",") if code.strip()
                )
            key = (file, first_lineno + offset)
            previous = self._by_line.get(key, frozenset())
            self._by_line[key] = previous | selected

    def is_suppressed(self, diagnostic: Diagnostic) -> bool:
        """True when a comment on the diagnostic's line disables it."""
        if diagnostic.file is None or diagnostic.line is None:
            return False
        codes = self._by_line.get((diagnostic.file, diagnostic.line))
        if codes is None:
            return False
        return "*" in codes or diagnostic.code in codes


class DiagnosticCollector:
    """Fail-slow accumulator used by every analyzer pass."""

    def __init__(self) -> None:
        self._found: list[Diagnostic] = []
        self.suppressions = Suppressions()

    def emit(self, code: str, message: str, *, where: str = "",
             file: str | None = None, line: int | None = None,
             node: ast.AST | None = None) -> None:
        """Record one finding (location from *node* unless given)."""
        if line is None and node is not None:
            line = getattr(node, "lineno", None)
        self._found.append(Diagnostic(code, message, where, file, line))

    def from_synthesis_error(self, exc: "SynthesisError", *,
                             where: str = "",
                             file: str | None = None) -> None:
        """Convert a structured :class:`SynthesisError` into a finding."""
        self._found.append(Diagnostic(
            getattr(exc, "code", "OSS100"),
            getattr(exc, "message", str(exc)),
            where or getattr(exc, "where", ""),
            file,
            getattr(exc, "lineno", None),
        ))

    @property
    def error_count(self) -> int:
        return sum(1 for d in self.diagnostics() if d.severity == ERROR)

    def diagnostics(self) -> list[Diagnostic]:
        """Deduplicated, suppression-filtered findings in source order."""
        seen: set[tuple] = set()
        unique: list[Diagnostic] = []
        for diag in self._found:
            key = (diag.code, diag.where, diag.file, diag.line, diag.message)
            if key in seen:
                continue
            seen.add(key)
            if self.suppressions.is_suppressed(diag):
                continue
            unique.append(diag)
        unique.sort(key=Diagnostic.sort_key)
        return unique
