"""Source loading for the static analyzer.

The analyzer reports *absolute* file/line locations, so it parses its own
copies of every process body and method instead of borrowing the design
library's cached trees (those keep the relative line numbers the
synthesizer's error messages are built from, and are shared state we must
not mutate).  Parsing is cached per code object.
"""

from __future__ import annotations

import ast
import inspect
import textwrap
from typing import Callable

from repro.analyze.diagnostics import Suppressions


class FunctionSource:
    """A function's AST with absolute line numbers, plus its origin."""

    __slots__ = ("func", "file", "first_lineno", "lines", "funcdef")

    def __init__(self, func: Callable, file: str, first_lineno: int,
                 lines: list[str], funcdef: ast.FunctionDef) -> None:
        self.func = func
        self.file = file
        self.first_lineno = first_lineno
        self.lines = lines
        self.funcdef = funcdef


_cache: dict[object, FunctionSource | None] = {}


def load_function(func: Callable) -> FunctionSource | None:
    """Load *func*'s source; ``None`` when no source is retrievable
    (builtins, dynamically generated code)."""
    raw = getattr(func, "__func__", func)
    code = getattr(raw, "__code__", None)
    if code is None:
        return None
    cached = _cache.get(code)
    if cached is not None or code in _cache:
        return cached
    result: FunctionSource | None = None
    try:
        lines, first = inspect.getsourcelines(raw)
        tree = ast.parse(textwrap.dedent("".join(lines)))
    except (OSError, TypeError, SyntaxError, IndentationError):
        lines, first, tree = [], 1, None
    if tree is not None:
        for node in tree.body:
            if isinstance(node, ast.FunctionDef):
                ast.increment_lineno(node, first - 1)
                result = FunctionSource(
                    raw, code.co_filename, first, lines, node
                )
                break
    _cache[code] = result
    return result


def register_suppressions(source: FunctionSource,
                          suppressions: Suppressions) -> None:
    """Feed a function's ``# repro: ignore`` comments into the table."""
    suppressions.scan(source.file, source.lines, source.first_lineno)
