"""Hardware modules.

:class:`Module` is the ``SC_MODULE`` equivalent: a named node in the design
hierarchy owning ports, signals, child modules, process registrations and
(under OSSS) hardware-class instances.  Subclasses declare ports as class
attributes (:class:`Input` / :class:`Output`) and register processes in
``__init__`` with :meth:`Module.cthread` / :meth:`Module.cmethod`, mirroring
``SC_CTOR`` in the paper's Fig. 4.
"""

from __future__ import annotations

from typing import Any, Callable, Iterable

from repro.hdl.process import CMethod, CThread, Process
from repro.hdl.signal import Signal
from repro.types.spec import TypeSpec


class PortDecl:
    """Base descriptor for port declarations on module classes."""

    #: "in" or "out"; set by subclasses.
    direction = ""

    def __init__(self, spec: TypeSpec) -> None:
        self.spec = spec
        self.attr_name: str | None = None

    def __set_name__(self, owner: type, name: str) -> None:
        self.attr_name = name

    def __get__(self, instance: "Module | None", owner: type) -> Any:
        if instance is None:
            return self
        return instance._ports[self.attr_name]

    def __set__(self, instance: "Module", value: Any) -> None:
        raise AttributeError(
            f"port {self.attr_name!r} cannot be reassigned; "
            "use .bind(signal) or .write(value)"
        )


class Input(PortDecl):
    """Declares an input port of the given :class:`TypeSpec`."""

    direction = "in"


class Output(PortDecl):
    """Declares an output port of the given :class:`TypeSpec`."""

    direction = "out"


class Port:
    """A runtime port: a directional proxy onto a bound signal.

    Unbound ports lazily create a private signal so small unit tests can
    poke modules without wiring a full hierarchy.
    """

    __slots__ = ("name", "spec", "direction", "_target", "owner")

    def __init__(self, name: str, spec: TypeSpec, direction: str,
                 owner: "Module") -> None:
        self.name = name
        self.spec = spec
        self.direction = direction
        self.owner = owner
        self._target: "Signal | Port | None" = None

    def bind(self, target: "Signal | Port") -> None:
        """Connect this port to a signal or to another port.

        Port-to-port binding is resolved lazily, so a parent may rebind its
        own port to an external signal *after* children were wired to the
        parent port — the SystemC elaboration-order behaviour.
        """
        if isinstance(target, Port):
            if target.spec != self.spec:
                raise TypeError(
                    f"port {self.owner.full_name}.{self.name} is "
                    f"{self.spec.describe()}, port {target.name} is "
                    f"{target.spec.describe()}"
                )
        elif isinstance(target, Signal):
            if target.spec != self.spec:
                raise TypeError(
                    f"port {self.owner.full_name}.{self.name} is "
                    f"{self.spec.describe()}, signal {target.name} is "
                    f"{target.spec.describe()}"
                )
        else:
            raise TypeError("bind() takes a Signal or a Port")
        self._target = target

    @property
    def signal(self) -> Signal:
        """The transitively bound signal (created lazily if unbound)."""
        port: Port = self
        for _ in range(64):
            if port._target is None:
                port._target = Signal(
                    f"{port.owner.full_name}.{port.name}", port.spec
                )
            if isinstance(port._target, Signal):
                return port._target
            port = port._target
        raise RuntimeError(
            f"port binding chain too deep (cycle?) at {self.name!r}"
        )

    @property
    def bound(self) -> bool:
        """True if :meth:`bind` has been called."""
        return self._target is not None

    def read(self) -> Any:
        """Read the current value of the bound signal."""
        return self.signal.read()

    def write(self, value: Any) -> None:
        """Write through to the bound signal (output ports only)."""
        if self.direction != "out":
            raise PermissionError(
                f"cannot write input port {self.owner.full_name}.{self.name}"
            )
        self.signal.write(value)

    def drive(self, value: Any) -> None:
        """Testbench helper: force a value onto an *input* port's signal."""
        if self.direction != "in":
            raise PermissionError(
                f"drive() is for input ports; {self.name} is an output"
            )
        self.signal.write(value)

    def __repr__(self) -> str:
        return f"Port({self.owner.full_name}.{self.name}, {self.direction})"


class Module:
    """Base class of all hardware modules (``SC_MODULE`` equivalent).

    Parameters
    ----------
    name:
        Instance name; the full hierarchical name is assembled when the
        module is adopted by a parent (assigning it to an attribute of the
        parent is enough).
    """

    def __init__(self, name: str) -> None:
        self.name = name
        self.parent: "Module | None" = None
        self.children: list["Module"] = []
        self.processes: list[Process] = []
        self.signals: list[Signal] = []
        self._ports: dict[str, Port] = {}
        self._hw_objects: dict[str, Any] = {}
        for klass in reversed(type(self).__mro__):
            for attr, decl in vars(klass).items():
                if isinstance(decl, PortDecl):
                    self._ports[attr] = Port(attr, decl.spec, decl.direction, self)

    # ------------------------------------------------------------------
    # hierarchy
    # ------------------------------------------------------------------
    @property
    def full_name(self) -> str:
        """Dot-separated hierarchical name."""
        if self.parent is None:
            return self.name
        return f"{self.parent.full_name}.{self.name}"

    def __setattr__(self, name: str, value: Any) -> None:
        # Adopt child modules and signals assigned as attributes so the
        # hierarchy (and hence tracing and synthesis) sees them.  Full
        # hierarchical signal names are assembled at elaboration time, once
        # the whole tree exists.
        if isinstance(value, Module) and name != "parent":
            value.parent = self
            if value not in self.children:
                self.children.append(value)
        elif isinstance(value, Signal):
            if value not in self.signals:
                self.signals.append(value)
        object.__setattr__(self, name, value)

    def __getattr__(self, name: str) -> Any:
        # Dynamically declared ports (e.g. template-width buses) resolve
        # through the port table; regular attributes never reach here.
        ports = self.__dict__.get("_ports")
        if ports is not None and name in ports:
            return ports[name]
        raise AttributeError(
            f"{type(self).__name__} has no attribute {name!r}"
        )

    def add_port(self, name: str, spec, direction: str) -> Port:
        """Declare a port at construction time (template-dependent buses)."""
        if name in self._ports:
            raise ValueError(f"duplicate port {name!r}")
        port = Port(name, spec, direction, self)
        self._ports[name] = port
        return port

    def ports(self) -> dict[str, Port]:
        """Mapping of port name to runtime :class:`Port`."""
        return dict(self._ports)

    def port(self, name: str) -> Port:
        """Look up a port by name."""
        return self._ports[name]

    def iter_modules(self) -> Iterable["Module"]:
        """This module and all descendants, depth first."""
        yield self
        for child in self.children:
            yield from child.iter_modules()

    def iter_signals(self) -> Iterable[Signal]:
        """All distinct signals of this module and descendants, plus ports."""
        seen: set[int] = set()
        for module in self.iter_modules():
            for sig in module.signals:
                if sig.uid not in seen:
                    seen.add(sig.uid)
                    yield sig
            for port in module._ports.values():
                sig = port.signal
                if sig.uid not in seen:
                    seen.add(sig.uid)
                    yield sig

    # ------------------------------------------------------------------
    # process registration
    # ------------------------------------------------------------------
    def cthread(
        self,
        body: Callable[[], Any],
        clock: "Signal | Port",
        reset: "Signal | Port | None" = None,
        reset_active: int = 1,
    ) -> CThread:
        """Register *body* as a clocked thread (``SC_CTHREAD``)."""
        clock_sig = clock.signal if isinstance(clock, Port) else clock
        reset_sig = reset.signal if isinstance(reset, Port) else reset
        thread = CThread(
            f"{self.full_name}.{body.__name__}",
            body,
            clock_sig,
            reset_sig,
            reset_active,
        )
        self.processes.append(thread)
        return thread

    def cmethod(
        self,
        body: Callable[[], None],
        sensitivity: Iterable[Any],
        run_at_start: bool = True,
    ) -> CMethod:
        """Register *body* as a combinational method (``SC_METHOD``)."""
        resolved = []
        for item in sensitivity:
            if isinstance(item, Port):
                resolved.append(item.signal)
            elif isinstance(item, tuple) and isinstance(item[0], Port):
                resolved.append((item[0].signal, item[1]))
            else:
                resolved.append(item)
        method = CMethod(
            f"{self.full_name}.{body.__name__}", body, resolved, run_at_start
        )
        self.processes.append(method)
        return method

    # ------------------------------------------------------------------
    # OSSS object registry (used by synthesis and object tracing)
    # ------------------------------------------------------------------
    def register_hw_object(self, name: str, obj: Any) -> Any:
        """Record a hardware-class instance owned by this module."""
        self._hw_objects[name] = obj
        return obj

    def hw_objects(self) -> dict[str, Any]:
        """Hardware-class instances registered on this module."""
        return dict(self._hw_objects)

    def iter_processes(self) -> Iterable[Process]:
        """All processes of this module and descendants."""
        for module in self.iter_modules():
            yield from module.processes

    def __repr__(self) -> str:
        return f"{type(self).__name__}({self.full_name!r})"
