"""Signals and clocks.

``Signal`` reproduces ``sc_signal`` semantics exactly: a write stores a
*pending* value that becomes visible only in the kernel's update phase (the
next delta cycle), so two clocked processes communicating through a signal
always observe each other's previous-cycle values — the property that makes
the behavioural simulation cycle-accurate with generated RTL (DESIGN.md R6).

``Clock`` is a 1-bit signal toggled by the kernel at a fixed period; clocked
threads subscribe to its positive-edge event.
"""

from __future__ import annotations

import itertools
from typing import Any

from repro.hdl.event import Event
from repro.types.logic import Bit
from repro.types.spec import TypeSpec, bit, spec_of

_signal_ids = itertools.count()


class Signal:
    """A typed signal with deferred (delta-cycle) update semantics.

    Parameters
    ----------
    name:
        Signal name; hierarchical prefixes are added when a module adopts
        the signal.
    spec:
        The :class:`~repro.types.spec.TypeSpec` of carried values.
    init:
        Initial value; defaults to the spec's zero value.
    """

    __slots__ = (
        "name",
        "spec",
        "_current",
        "_next",
        "_pending",
        "changed",
        "posedge",
        "negedge",
        "uid",
        "_trace_hook",
    )

    def __init__(self, name: str, spec: TypeSpec, init: Any | None = None) -> None:
        self.name = name
        self.spec = spec
        value = spec.default() if init is None else init
        spec.check(value)
        self._current = value
        self._next = value
        self._pending = False
        self.changed = Event(f"{name}.changed")
        self.posedge = Event(f"{name}.posedge")
        self.negedge = Event(f"{name}.negedge")
        self.uid = next(_signal_ids)
        self._trace_hook = None

    # ------------------------------------------------------------------
    # value access
    # ------------------------------------------------------------------
    def read(self) -> Any:
        """The currently committed value (``sc_signal::read``)."""
        return self._current

    @property
    def value(self) -> Any:
        """Alias of :meth:`read` for expression-heavy testbench code."""
        return self._current

    def write(self, value: Any) -> None:
        """Request a new value; committed at the next update phase.

        Accepts raw ``int``/``bool`` for convenience and converts through the
        signal's spec, so ``sig.write(1)`` works for any carried type.
        """
        spec = self.spec
        if type(value) is spec._expected:
            if spec.kind != "bit" and value.width != spec.width:
                spec.check(value)  # raises with the precise message
        elif isinstance(value, bool):
            value = spec.from_raw(int(value))
        elif isinstance(value, int):
            if spec.kind == "bit":
                value = Bit(value)
            else:
                value = spec.from_raw(value & ((1 << spec.width) - 1))
        else:
            spec.check(value)
        import repro.hdl.kernel as kernel

        sim = kernel._CURRENT
        self._next = value
        if sim is None:
            # No simulator active (configuration / test setup): commit now.
            self._commit()
        else:
            if not self._pending:
                self._pending = True
                sim.queue_update(self)

    # ------------------------------------------------------------------
    # kernel interface
    # ------------------------------------------------------------------
    def update(self) -> bool:
        """Commit the pending value.  Returns True if the value changed."""
        self._pending = False
        to_raw = self.spec.to_raw_unchecked
        old_raw = to_raw(self._current)
        new_raw = to_raw(self._next)
        if old_raw == new_raw and type(self._next) is type(self._current):
            return False
        self._commit()
        self.changed.notify()
        if self.spec.kind == "bit":
            if new_raw and not old_raw:
                self.posedge.notify()
            elif old_raw and not new_raw:
                self.negedge.notify()
        return True

    def _commit(self) -> None:
        self._current = self._next
        if self._trace_hook is not None:
            self._trace_hook(self)

    def set_trace_hook(self, hook) -> None:
        """Install a callable invoked with the signal after each commit."""
        self._trace_hook = hook

    def __repr__(self) -> str:
        return f"Signal({self.name!r}, {self.spec.describe()}, {self._current})"


class Clock(Signal):
    """A free-running 1-bit clock.

    Parameters
    ----------
    name:
        Clock name.
    period:
        Full period in picoseconds (use the :mod:`repro.hdl.simtime`
        constants, e.g. ``15 * NS`` for the paper's 66 MHz target).
    start_high:
        If True the clock starts at 1 and the first edge is falling.
    """

    __slots__ = ("period",)

    def __init__(self, name: str, period: int, start_high: bool = False) -> None:
        if period <= 0 or period % 2:
            raise ValueError("clock period must be positive and even (in ps)")
        super().__init__(name, bit(), Bit(1 if start_high else 0))
        self.period = period

    @property
    def half_period(self) -> int:
        """Time between successive edges."""
        return self.period // 2

    def toggle(self) -> None:
        """Schedule the opposite level (called by the kernel)."""
        self.write(Bit(0 if int(self.read()) else 1))


def signal_like(value: Any, name: str) -> Signal:
    """Create a signal whose spec matches an example *value*."""
    return Signal(name, spec_of(value), value)
