"""A SystemC-like discrete-event simulation kernel.

Modules, typed signals with delta-cycle update semantics, clocked threads
(``yield`` = ``wait()``), combinational methods, a deterministic scheduler
and VCD tracing — the substrate the OSSS methodology layers on top of.
"""

from repro.hdl.event import Event
from repro.hdl.kernel import SimulationError, Simulator, current_simulator
from repro.hdl.module import Input, Module, Output, Port
from repro.hdl.process import CMethod, CThread, negedge, posedge
from repro.hdl.signal import Clock, Signal, signal_like
from repro.hdl.simtime import MS, NS, PS, US, format_time
from repro.hdl.testbench import ChangeMonitor, Scoreboard, StimulusDriver, collect_outputs
from repro.hdl.trace import VcdTrace

__all__ = [
    "CMethod",
    "ChangeMonitor",
    "Scoreboard",
    "StimulusDriver",
    "collect_outputs",
    "CThread",
    "Clock",
    "Event",
    "Input",
    "MS",
    "Module",
    "NS",
    "Output",
    "PS",
    "Port",
    "Signal",
    "SimulationError",
    "Simulator",
    "US",
    "VcdTrace",
    "current_simulator",
    "format_time",
    "negedge",
    "posedge",
    "signal_like",
]
