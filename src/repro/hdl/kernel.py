"""The discrete-event simulation kernel.

Reproduces the SystemC 2.0 scheduler the paper relies on:

1. **Timed phase** — advance to the earliest pending timestamp and run its
   timed callbacks (clock toggles, testbench timeouts).
2. **Update phase** — commit pending signal writes; changed signals fire
   their events, scheduling statically-sensitive processes.
3. **Evaluate phase** — run every scheduled process once (deterministic
   order by process id).  Writes performed here queue new updates.
4. Repeat update/evaluate as *delta cycles* until quiescent, then return to
   the timed phase.

A module-level "current simulator" mirrors SystemC's global kernel so that
``signal.write`` inside process bodies finds the scheduler without plumbing
(the one deliberate singleton in the library; everything else is explicit).
"""

from __future__ import annotations

import heapq
import itertools
from typing import Any, Callable, Iterable

from repro.hdl.module import Module
from repro.hdl.process import Process
from repro.hdl.signal import Clock, Signal
from repro.hdl.simtime import format_time

_CURRENT: "Simulator | None" = None


def current_simulator() -> "Simulator | None":
    """The most recently activated :class:`Simulator`, if any."""
    return _CURRENT


class SimulationError(RuntimeError):
    """Raised for scheduler misuse (e.g. runaway delta cycles)."""


class Simulator:
    """Event-driven simulator for a module hierarchy.

    Parameters
    ----------
    top:
        Root :class:`~repro.hdl.module.Module`.  All descendants, their
        processes, ports and signals are elaborated.
    max_delta:
        Safety limit on delta cycles per timestep; exceeding it indicates a
        combinational feedback loop and raises :class:`SimulationError`.
    """

    def __init__(self, top: Module, max_delta: int = 1000) -> None:
        self.top = top
        self.max_delta = max_delta
        self.now = 0
        self.delta_count = 0
        self._process_activations = 0
        self._events_fired = 0
        self._timed_callbacks = 0
        self.cycle_hooks: list[Callable[[], None]] = []
        self._timed: list[tuple[int, int, Callable[[], None]]] = []
        self._timed_seq = itertools.count()
        self._runnable: dict[int, Process] = {}
        self._updates: list[Signal] = []
        self._started = False
        self.signals: list[Signal] = []
        self.clocks: list[Clock] = []
        self._elaborate()
        self.activate()

    # ------------------------------------------------------------------
    # elaboration
    # ------------------------------------------------------------------
    def _elaborate(self) -> None:
        self._assign_names()
        for sig in self.top.iter_signals():
            self.signals.append(sig)
            if isinstance(sig, Clock):
                self.clocks.append(sig)
        known = {sig.uid for sig in self.signals}
        from repro.hdl.process import CThread

        for process in self.top.iter_processes():
            if isinstance(process, CThread) and process.clock.uid not in known:
                if isinstance(process.clock, Clock):
                    # A clock passed into a module but not adopted anywhere
                    # in the hierarchy would silently never tick.
                    self.clocks.append(process.clock)
                    self.signals.append(process.clock)
                    known.add(process.clock.uid)
        for clock in self.clocks:
            self._prime_clock(clock)

    def _assign_names(self) -> None:
        """Give every signal its full hierarchical name."""
        for module in self.top.iter_modules():
            for sig in module.signals:
                if "." not in sig.name:
                    sig.name = f"{module.full_name}.{sig.name}"

    def _prime_clock(self, clock: Clock) -> None:
        def toggle() -> None:
            clock.toggle()
            self.at(self.now + clock.half_period, toggle)

        self.at(self.now + clock.half_period, toggle)

    # ------------------------------------------------------------------
    # scheduler services
    # ------------------------------------------------------------------
    def activate(self) -> None:
        """Make this the simulator that ``signal.write`` reports to."""
        global _CURRENT
        _CURRENT = self

    def at(self, time: int, callback: Callable[[], None]) -> None:
        """Schedule *callback* to run in the timed phase at *time* (ps)."""
        if time < self.now:
            raise SimulationError(
                f"cannot schedule at {format_time(time)}; "
                f"now is {format_time(self.now)}"
            )
        heapq.heappush(self._timed, (time, next(self._timed_seq), callback))

    def after(self, delay: int, callback: Callable[[], None]) -> None:
        """Schedule *callback* to run *delay* picoseconds from now."""
        self.at(self.now + delay, callback)

    def schedule_process(self, process: Process) -> None:
        """Queue *process* for the next evaluate phase."""
        self._runnable.setdefault(process.uid, process)

    def queue_update(self, signal: Signal) -> None:
        """Queue *signal* for the next update phase."""
        self._updates.append(signal)

    # ------------------------------------------------------------------
    # execution
    # ------------------------------------------------------------------
    def _startup(self) -> None:
        """Run start-of-simulation methods (combinational settle)."""
        self._started = True
        from repro.hdl.process import CMethod

        for process in self.top.iter_processes():
            if isinstance(process, CMethod) and process.run_at_start:
                self.schedule_process(process)
        self._settle()

    def _settle(self) -> None:
        """Run delta cycles at the current time until quiescent."""
        deltas = 0
        while self._runnable or self._updates:
            deltas += 1
            if deltas > self.max_delta:
                raise SimulationError(
                    f"exceeded {self.max_delta} delta cycles at "
                    f"{format_time(self.now)}; combinational loop?"
                )
            # Evaluate phase.  Processes scheduled *during* evaluation run in
            # the next delta cycle, so swap the runnable set out first.
            runnable, self._runnable = self._runnable, {}
            for process in sorted(runnable.values(), key=lambda p: p.uid):
                process.execute()
            self._process_activations += len(runnable)
            # Update phase.
            pending, self._updates = self._updates, []
            fired = 0
            for sig in pending:
                if sig.update():
                    fired += 1
            self._events_fired += fired
            self.delta_count += 1

    def run(self, duration: int) -> None:
        """Advance simulation time by *duration* picoseconds."""
        self.activate()
        if not self._started:
            self._startup()
        if self._updates or self._runnable:
            # Testbench writes issued between run() calls settle *now*, at
            # the current time, so combinational methods see them before
            # the next clock edge (matching RTL, where inputs are sampled
            # combinationally within the cycle).
            self._settle()
        deadline = self.now + duration
        while self._timed and self._timed[0][0] <= deadline:
            time, _, callback = heapq.heappop(self._timed)
            if time > self.now:
                self.now = time
            callback()
            self._timed_callbacks += 1
            # Drain any same-timestamp callbacks before settling.
            while self._timed and self._timed[0][0] == self.now:
                _, _, more = heapq.heappop(self._timed)
                more()
                self._timed_callbacks += 1
            self._settle()
            for hook in self.cycle_hooks:
                hook()
        self.now = deadline

    def run_until(
        self,
        condition: Callable[[], bool],
        max_time: int,
        check_every: int | None = None,
    ) -> bool:
        """Run until *condition* is true or *max_time* ps elapse.

        Returns True if the condition was met.  The condition is checked
        after every settled timestep (or every *check_every* ps if given).
        """
        self.activate()
        if not self._started:
            self._startup()
        step = check_every
        if step is None:
            step = min((c.half_period for c in self.clocks), default=1000)
        deadline = self.now + max_time
        while self.now < deadline:
            if condition():
                return True
            self.run(min(step, deadline - self.now))
        return condition()

    def run_cycles(self, clock: Clock, cycles: int) -> None:
        """Run for an integer number of *clock* periods."""
        self.run(cycles * clock.period)

    # ------------------------------------------------------------------
    # observability
    # ------------------------------------------------------------------
    def stats(self) -> dict[str, int | str]:
        """Uniform work counters (see DESIGN.md §8).

        ``delta_cycles``         update/evaluate rounds executed;
        ``process_activations``  process bodies run in evaluate phases;
        ``events_fired``         committed signal updates that changed
                                 the value and notified their events;
        ``timed_callbacks``      timed-phase callbacks (clock toggles,
                                 testbench timeouts) dispatched.
        """
        return {
            "backend": "kernel",
            "delta_cycles": self.delta_count,
            "process_activations": self._process_activations,
            "events_fired": self._events_fired,
            "timed_callbacks": self._timed_callbacks,
        }

    def reset_stats(self) -> None:
        """Zero the work counters (simulation state is untouched)."""
        self.delta_count = 0
        self._process_activations = 0
        self._events_fired = 0
        self._timed_callbacks = 0

    def __repr__(self) -> str:
        return (
            f"Simulator(top={self.top.full_name!r}, now={format_time(self.now)})"
        )
