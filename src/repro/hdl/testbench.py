"""Testbench utilities: drivers, monitors, scoreboards.

The paper (§10) highlights *"better integration into existing C++
test-environments"* as an OSSS benefit; this module is the corresponding
Python test environment: declarative stimulus driving, change monitors,
expected-vs-actual scoreboards, all attachable to any module without
touching the DUT.
"""

from __future__ import annotations

from typing import Any, Callable, Iterable, Iterator, Mapping

from repro.hdl.module import Module, Port
from repro.hdl.signal import Clock, Signal


class StimulusDriver(Module):
    """Drives ports/signals from an iterable of per-cycle dictionaries.

    Parameters
    ----------
    name:
        Instance name.
    clk:
        Clock; one dictionary is applied per rising edge.
    targets:
        Mapping of key → :class:`Port` or :class:`Signal` to drive.
    program:
        Iterable of ``{key: value}`` dictionaries.  Missing keys hold their
        previous value; when the program ends the driver idles.
    """

    def __init__(self, name: str, clk: Clock,
                 targets: Mapping[str, "Port | Signal"],
                 program: Iterable[Mapping[str, Any]]) -> None:
        super().__init__(name)
        self.targets = dict(targets)
        self.program = iter(program)
        self.cycles_driven = 0
        self.finished = False
        self.cthread(self._drive, clock=clk)

    def _drive(self) -> Iterator[None]:
        for entry in self.program:
            for key, value in entry.items():
                target = self.targets[key]
                if isinstance(target, Port):
                    target.drive(value)
                else:
                    target.write(value)
            self.cycles_driven += 1
            yield
        self.finished = True


class ChangeMonitor(Module):
    """Records ``(cycle, value)`` for every change of a signal/port."""

    def __init__(self, name: str, clk: Clock,
                 target: "Port | Signal") -> None:
        super().__init__(name)
        self.target = target
        self.log: list[tuple[int, int]] = []
        self._cycle = 0
        self.cthread(self._watch, clock=clk)

    def _value(self) -> int:
        source = self.target
        signal = source.signal if isinstance(source, Port) else source
        return signal.spec.to_raw_unchecked(signal.read())

    def _watch(self) -> Iterator[None]:
        previous = None
        while True:
            value = self._value()
            if value != previous:
                self.log.append((self._cycle, value))
                previous = value
            self._cycle += 1
            yield

    @property
    def values(self) -> list[int]:
        """The distinct values observed, in order."""
        return [value for _, value in self.log]


class Scoreboard(Module):
    """Compares a signal against an expected per-cycle sequence.

    The expectation function receives the cycle index and returns either
    the expected raw value or ``None`` for don't-care cycles.  Failures are
    collected, not raised, so a testbench can assert at the end.
    """

    def __init__(self, name: str, clk: Clock, target: "Port | Signal",
                 expect: Callable[[int], "int | None"]) -> None:
        super().__init__(name)
        self.target = target
        self.expect = expect
        self.failures: list[tuple[int, int, int]] = []
        self.checked = 0
        self._cycle = 0
        self.cthread(self._check, clock=clk)

    def _check(self) -> Iterator[None]:
        while True:
            expected = self.expect(self._cycle)
            if expected is not None:
                source = self.target
                signal = (source.signal if isinstance(source, Port)
                          else source)
                actual = signal.spec.to_raw_unchecked(signal.read())
                self.checked += 1
                if actual != expected:
                    self.failures.append((self._cycle, expected, actual))
            self._cycle += 1
            yield

    @property
    def passed(self) -> bool:
        """True when every checked cycle matched."""
        return not self.failures


def drive_cycles(sim, clk: Clock, cycles: int) -> None:
    """Run *sim* for an integer number of *clk* periods."""
    sim.run(cycles * clk.period)


def collect_outputs(module: Module, names: Iterable[str]) -> dict[str, int]:
    """Snapshot several output ports as raw integers."""
    result = {}
    for name in names:
        port = module.port(name)
        result[name] = port.spec.to_raw_unchecked(port.read())
    return result
