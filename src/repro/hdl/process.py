"""Simulation processes.

Two process kinds mirror the synthesizable SystemC subset the paper uses:

* :class:`CThread` — a clocked thread (``SC_CTHREAD``).  The body is a Python
  *generator function*; every ``yield`` is the Python spelling of SystemC's
  ``wait()`` and suspends until the next active clock edge.  An optional
  synchronous reset restarts the body from the top while asserted, exactly
  like ``watching(reset.delayed() == true)`` in the paper's Fig. 4.
* :class:`CMethod` — a combinational method (``SC_METHOD``) re-evaluated
  whenever a signal in its static sensitivity list changes.

Process bodies are ordinary Python for simulation *and* the input to the
OSSS analyzer for synthesis; the synthesizable subset is documented in
:mod:`repro.synth.analyzer`.
"""

from __future__ import annotations

import itertools
from typing import Any, Callable, Iterable

from repro.hdl.signal import Signal
from repro.types.logic import Bit

_process_ids = itertools.count()


class Process:
    """Base class for schedulable processes."""

    __slots__ = ("name", "uid", "_terminated")

    def __init__(self, name: str) -> None:
        self.name = name
        self.uid = next(_process_ids)
        self._terminated = False

    @property
    def terminated(self) -> bool:
        """True once the process body has returned."""
        return self._terminated

    def execute(self) -> None:  # pragma: no cover - abstract
        """Run one activation; implemented by subclasses."""
        raise NotImplementedError

    def __repr__(self) -> str:
        return f"{type(self).__name__}({self.name!r})"


class CThread(Process):
    """A clocked thread process.

    Parameters
    ----------
    name:
        Process name (usually ``module.method``).
    body:
        A generator *function* of no arguments (typically a bound method).
        Each ``yield`` waits for the next active clock edge.
    clock:
        The clock signal; the thread triggers on its positive edge.
    reset:
        Optional synchronous reset signal.  While it reads as
        *reset_active* at a clock edge, the body restarts from the top and
        runs its reset prologue (the statements before the first ``yield``).
    reset_active:
        The asserted reset level (default 1).
    """

    __slots__ = ("body", "clock", "reset", "reset_active", "_generator")

    def __init__(
        self,
        name: str,
        body: Callable[[], Any],
        clock: Signal,
        reset: Signal | None = None,
        reset_active: int = 1,
    ) -> None:
        super().__init__(name)
        self.body = body
        self.clock = clock
        self.reset = reset
        self.reset_active = reset_active
        self._generator = None
        clock.posedge.subscribe(self)

    def _in_reset(self) -> bool:
        if self.reset is None:
            return False
        return int(self.reset.read()) == self.reset_active

    def execute(self) -> None:
        """Advance the thread by one clock edge."""
        if self._terminated:
            return
        if self._in_reset() or self._generator is None:
            # (Re)start and run the reset prologue up to the first yield.
            self._generator = self.body()
            if not hasattr(self._generator, "send"):
                raise TypeError(
                    f"CThread body {self.name} must be a generator function "
                    "(use 'yield' as wait())"
                )
        try:
            next(self._generator)
        except StopIteration:
            self._terminated = True
            self.clock.posedge.unsubscribe(self)


class CMethod(Process):
    """A combinational method process with static sensitivity.

    Parameters
    ----------
    name:
        Process name.
    body:
        A plain function of no arguments, re-run on every sensitivity hit.
    sensitivity:
        Signals (value change) and/or ``(signal, 'pos'|'neg')`` edge pairs.
    run_at_start:
        If True (default) the method runs once at simulation start so
        combinational outputs are consistent before the first event.
    """

    __slots__ = ("body", "sensitivity", "run_at_start")

    def __init__(
        self,
        name: str,
        body: Callable[[], None],
        sensitivity: Iterable[Signal | tuple[Signal, str]],
        run_at_start: bool = True,
    ) -> None:
        super().__init__(name)
        self.body = body
        self.sensitivity = tuple(sensitivity)
        self.run_at_start = run_at_start
        for item in self.sensitivity:
            if isinstance(item, Signal):
                item.changed.subscribe(self)
            else:
                sig, edge = item
                if edge == "pos":
                    sig.posedge.subscribe(self)
                elif edge == "neg":
                    sig.negedge.subscribe(self)
                else:
                    raise ValueError(f"unknown edge kind {edge!r}")

    def execute(self) -> None:
        """Evaluate the combinational body once."""
        self.body()


def posedge(signal: Signal) -> tuple[Signal, str]:
    """Sensitivity helper: trigger on the rising edge of *signal*."""
    if signal.spec.kind != "bit":
        raise TypeError("edge sensitivity requires a 1-bit signal")
    return (signal, "pos")


def negedge(signal: Signal) -> tuple[Signal, str]:
    """Sensitivity helper: trigger on the falling edge of *signal*."""
    if signal.spec.kind != "bit":
        raise TypeError("edge sensitivity requires a 1-bit signal")
    return (signal, "neg")
