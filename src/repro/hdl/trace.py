"""Waveform tracing (``sc_trace`` equivalent, paper §9 / Fig. 9–10).

``VcdTrace`` records kernel-level waveforms through the shared VCD
document writer (:class:`repro.obs.vcd.VcdWriter` — also used by the RTL
and gate-level trace adapters).  Two tracing modes reproduce the paper's
setup:

* **Signal tracing** — exact: every committed signal change is recorded in
  the update phase.
* **Object tracing** — the paper's Fig. 9/10 extension: a hardware-class
  instance (an OSSS object) is registered with :meth:`VcdTrace.trace_object`
  and each of its declared data members appears as a separate VCD variable,
  sampled after every settled timestep.  This is the "dump of object data at
  any time" capability §9 recommends.

A trace holds live hooks into the simulator (a ``cycle_hooks`` entry for
object sampling, per-signal trace hooks): :meth:`VcdTrace.detach` (alias
:meth:`close`) releases them all, idempotently, so a finished trace
stops sampling and a second trace on the same simulator never interacts
with the first.
"""

from __future__ import annotations

from typing import Any

from repro.hdl.kernel import Simulator
from repro.hdl.signal import Signal
from repro.hdl.simtime import PS
from repro.obs.vcd import VcdWriter


class VcdTrace:
    """Collects value changes and renders a VCD document.

    Parameters
    ----------
    sim:
        The simulator whose time base stamps the changes.
    timescale:
        VCD timescale string; the default matches the kernel's picosecond
        resolution.
    """

    def __init__(self, sim: Simulator, timescale: str = "1ps") -> None:
        self.sim = sim
        self.writer = VcdWriter(timescale)
        self._idents: dict[str, str] = {}  # var label -> ident
        self._object_probes: list[tuple[str, Any]] = []
        self._traced_signals: list[Signal] = []
        self._attached = True
        sim.cycle_hooks.append(self._sample_objects)

    # ------------------------------------------------------------------
    # registration
    # ------------------------------------------------------------------
    def trace_signal(self, signal: Signal, name: str | None = None) -> None:
        """Record every committed change of *signal*."""
        label = name or signal.name
        width = signal.spec.width
        ident = self.writer.add_var(label, width)
        self._idents[label] = ident
        self.writer.record(self._now(), ident,
                           signal.spec.to_raw(signal.read()))

        def hook(sig: Signal, ident=ident) -> None:
            self.writer.record(self._now(), ident,
                               sig.spec.to_raw(sig.read()))

        signal.set_trace_hook(hook)
        self._traced_signals.append(signal)

    def trace_object(self, obj: Any, name: str | None = None) -> None:
        """Trace each data member of an OSSS hardware object.

        The object must expose ``hw_members()`` returning a mapping of
        member name to current hardware value (all
        :class:`~repro.osss.hwclass.HwClass` instances do).
        """
        if not hasattr(obj, "hw_members"):
            raise TypeError(
                f"{type(obj).__name__} is not traceable; it has no "
                "hw_members() (is it an OSSS hardware class?)"
            )
        label = name or type(obj).__name__
        members = obj.hw_members()
        for member, value in members.items():
            from repro.types.spec import spec_of

            key = f"{label}.{member}"
            self._idents[key] = self.writer.add_var(
                key, spec_of(value).width
            )
        self._object_probes.append((label, obj))
        self._sample_objects()

    def trace_module(self, module: Any) -> None:
        """Trace every signal of *module* and its descendants."""
        for sig in module.iter_signals():
            self.trace_signal(sig)

    # ------------------------------------------------------------------
    # sampling
    # ------------------------------------------------------------------
    def _now(self) -> int:
        return self.sim.now // PS

    def _sample_objects(self) -> None:
        now = self._now()
        for label, obj in self._object_probes:
            from repro.types.spec import spec_of

            for member, value in obj.hw_members().items():
                ident = self._idents.get(f"{label}.{member}")
                if ident is None:
                    continue
                self.writer.record(now, ident, spec_of(value).to_raw(value))

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    @property
    def attached(self) -> bool:
        """True while the trace still samples the simulator."""
        return self._attached

    def detach(self) -> None:
        """Stop sampling: release all simulator and signal hooks.

        Idempotent; the recorded changes stay renderable.  Previously
        the object-sampling hook stayed registered on
        ``sim.cycle_hooks`` forever, so discarded traces kept sampling
        (and kept their objects alive) for the simulator's lifetime.
        """
        if not self._attached:
            return
        try:
            self.sim.cycle_hooks.remove(self._sample_objects)
        except ValueError:
            pass
        for signal in self._traced_signals:
            signal.set_trace_hook(None)
        self._attached = False

    close = detach

    # ------------------------------------------------------------------
    # output
    # ------------------------------------------------------------------
    def render(self) -> str:
        """The complete VCD document as a string."""
        return self.writer.render()

    def write(self, path: str) -> None:
        """Write the VCD document to *path*."""
        self.writer.write(path)

    @property
    def change_count(self) -> int:
        """Number of recorded value changes (for tests)."""
        return self.writer.change_count
