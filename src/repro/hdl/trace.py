"""Waveform tracing (``sc_trace`` equivalent, paper §9 / Fig. 9–10).

``VcdTrace`` writes industry-standard VCD files that any waveform viewer
opens.  Two tracing modes reproduce the paper's setup:

* **Signal tracing** — exact: every committed signal change is recorded in
  the update phase.
* **Object tracing** — the paper's Fig. 9/10 extension: a hardware-class
  instance (an OSSS object) is registered with :meth:`VcdTrace.trace_object`
  and each of its declared data members appears as a separate VCD variable,
  sampled after every settled timestep.  This is the "dump of object data at
  any time" capability §9 recommends.
"""

from __future__ import annotations

import io
from typing import Any

from repro.hdl.kernel import Simulator
from repro.hdl.signal import Signal
from repro.hdl.simtime import PS


def _vcd_ident(index: int) -> str:
    """Short printable VCD identifier for variable *index*."""
    chars = "".join(chr(c) for c in range(33, 127))
    ident = ""
    index += 1
    while index:
        index, rem = divmod(index - 1, len(chars))
        ident = chars[rem] + ident
    return ident


class VcdTrace:
    """Collects value changes and renders a VCD document.

    Parameters
    ----------
    sim:
        The simulator whose time base stamps the changes.
    timescale:
        VCD timescale string; the default matches the kernel's picosecond
        resolution.
    """

    def __init__(self, sim: Simulator, timescale: str = "1ps") -> None:
        self.sim = sim
        self.timescale = timescale
        self._vars: list[tuple[str, int, str]] = []  # (name, width, ident)
        self._changes: list[tuple[int, str, int, int]] = []
        self._last: dict[str, int] = {}
        self._object_probes: list[tuple[str, Any]] = []
        sim.cycle_hooks.append(self._sample_objects)

    # ------------------------------------------------------------------
    # registration
    # ------------------------------------------------------------------
    def trace_signal(self, signal: Signal, name: str | None = None) -> None:
        """Record every committed change of *signal*."""
        ident = _vcd_ident(len(self._vars))
        label = name or signal.name
        width = signal.spec.width
        self._vars.append((label, width, ident))
        self._record(ident, width, signal.spec.to_raw(signal.read()))

        def hook(sig: Signal, ident=ident, width=width) -> None:
            self._record(ident, width, sig.spec.to_raw(sig.read()))

        signal.set_trace_hook(hook)

    def trace_object(self, obj: Any, name: str | None = None) -> None:
        """Trace each data member of an OSSS hardware object.

        The object must expose ``hw_members()`` returning a mapping of
        member name to current hardware value (all
        :class:`~repro.osss.hwclass.HwClass` instances do).
        """
        if not hasattr(obj, "hw_members"):
            raise TypeError(
                f"{type(obj).__name__} is not traceable; it has no "
                "hw_members() (is it an OSSS hardware class?)"
            )
        label = name or type(obj).__name__
        members = obj.hw_members()
        for member, value in members.items():
            ident = _vcd_ident(len(self._vars))
            from repro.types.spec import spec_of

            width = spec_of(value).width
            self._vars.append((f"{label}.{member}", width, ident))
        self._object_probes.append((label, obj))
        self._sample_objects()

    def trace_module(self, module: Any) -> None:
        """Trace every signal of *module* and its descendants."""
        for sig in module.iter_signals():
            self.trace_signal(sig)

    # ------------------------------------------------------------------
    # sampling
    # ------------------------------------------------------------------
    def _record(self, ident: str, width: int, raw: int) -> None:
        if self._last.get(ident) == raw:
            return
        self._last[ident] = raw
        self._changes.append((self.sim.now, ident, width, raw))

    def _sample_objects(self) -> None:
        index = {name: ident for name, _, ident in self._vars}
        widths = {name: width for name, width, _ in self._vars}
        for label, obj in self._object_probes:
            from repro.types.spec import spec_of

            for member, value in obj.hw_members().items():
                key = f"{label}.{member}"
                ident = index.get(key)
                if ident is None:
                    continue
                self._record(ident, widths[key], spec_of(value).to_raw(value))

    # ------------------------------------------------------------------
    # output
    # ------------------------------------------------------------------
    def render(self) -> str:
        """The complete VCD document as a string."""
        out = io.StringIO()
        out.write(f"$timescale {self.timescale} $end\n")
        out.write("$scope module top $end\n")
        for name, width, ident in self._vars:
            safe = name.replace(" ", "_")
            out.write(f"$var wire {width} {ident} {safe} $end\n")
        out.write("$upscope $end\n$enddefinitions $end\n")
        current_time = None
        for time, ident, width, raw in sorted(
            self._changes, key=lambda c: (c[0],)
        ):
            if time != current_time:
                out.write(f"#{time // PS}\n")
                current_time = time
            if width == 1:
                out.write(f"{raw}{ident}\n")
            else:
                out.write(f"b{raw:b} {ident}\n")
        return out.getvalue()

    def write(self, path: str) -> None:
        """Write the VCD document to *path*."""
        with open(path, "w", encoding="ascii") as handle:
            handle.write(self.render())

    @property
    def change_count(self) -> int:
        """Number of recorded value changes (for tests)."""
        return len(self._changes)
