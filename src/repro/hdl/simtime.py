"""Simulation time.

Time is kept as an integer number of picoseconds, which keeps event ordering
exact (no floating-point drift over long video-frame simulations).  The unit
constants let user code write ``sim.run(200 * US)`` or ``Clock("clk",
period=15 * NS)`` — 15 ns being the 66 MHz system clock the paper's ExpoCU
targets.
"""

from __future__ import annotations

#: One picosecond — the base resolution.
PS = 1
#: One nanosecond.
NS = 1000 * PS
#: One microsecond.
US = 1000 * NS
#: One millisecond.
MS = 1000 * US


def format_time(picoseconds: int) -> str:
    """Render a time stamp with a human-friendly unit."""
    if picoseconds == 0:
        return "0s"
    for unit, name in ((MS, "ms"), (US, "us"), (NS, "ns"), (PS, "ps")):
        if picoseconds % unit == 0 or picoseconds >= unit:
            scaled = picoseconds / unit
            if scaled == int(scaled):
                return f"{int(scaled)}{name}"
            return f"{scaled:.3f}{name}"
    return f"{picoseconds}ps"
