"""Simulation events.

An :class:`Event` is the primitive processes synchronize on, mirroring
``sc_event``.  Signals own three events (value changed, positive edge,
negative edge); processes subscribe statically (SC_METHOD sensitivity,
SC_CTHREAD clocking) and are scheduled into the next delta cycle whenever a
subscribed event fires.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.hdl.process import Process


class Event:
    """A notification channel that triggers subscribed processes.

    Events are fired by the kernel during the update phase (signal changes)
    or explicitly via :meth:`notify`.  Firing schedules every subscribed
    process for the next delta cycle of the active simulator.
    """

    __slots__ = ("name", "_subscribers")

    def __init__(self, name: str) -> None:
        self.name = name
        self._subscribers: list["Process"] = []

    def subscribe(self, process: "Process") -> None:
        """Statically sensitize *process* to this event."""
        if process not in self._subscribers:
            self._subscribers.append(process)

    def unsubscribe(self, process: "Process") -> None:
        """Remove *process* from the sensitivity list."""
        if process in self._subscribers:
            self._subscribers.remove(process)

    @property
    def subscribers(self) -> tuple["Process", ...]:
        """The processes currently sensitized to this event."""
        return tuple(self._subscribers)

    def notify(self) -> None:
        """Fire the event: schedule all subscribers for the next delta."""
        import repro.hdl.kernel as kernel

        sim = kernel._CURRENT
        if sim is None:
            return
        for process in self._subscribers:
            sim.schedule_process(process)

    def __repr__(self) -> str:
        return f"Event({self.name!r})"
