"""Command-line interface: ``python -m repro <command>``.

Small utilities around the flow, useful for poking at the reproduction
without writing a script:

``demo``      run the closed-loop auto-exposure system and print per-frame
              convergence (the headline scenario).
``synth``     synthesize the ExpoCU (OSSS flow), print the synthesis
              report and optionally write Verilog.
``flows``     run both flows and print the §12 comparison + Fig. 12 table.
``resolve``   print the Fig. 7 procedural intermediate of the paper's
              SyncRegister example.
``effort``    print the E8 effort-metric table.
``lint``      run the standalone OSSS analyzer (fail-slow diagnostics;
              text, JSON or SARIF output).
``analyze``   run the netlist structural analysis (SCOAP testability,
              fault collapsing, OSS5xx observability lints) on the
              optimized gates, memoized through the design library.
``inject``    run a seeded fault-injection campaign on the ExpoCU
              (RTL or netlist flow, optional TMR/parity hardening);
              supervised workers, per-fault deadlines and a crash-safe
              journal (``--resume``) keep long campaigns restartable.
``dse``       multi-objective design-space exploration over the bundled
              ExpoCU spaces (factorial or evolutionary search, memoized
              per point through the design library), emitting a
              ``repro-dse/v1`` report with the exact Pareto front and
              MCDM ranking.
``profile``   profile a bundled workload (flows, synthesis or a fault
              campaign) and emit a ``repro-trace/v1`` span report.
``build``     run the ExpoCU flows through the design library
              (content-addressed cache): warm rebuilds skip unchanged
              stages.
``cache``     design-library maintenance: ``stats``, ``gc``, ``verify``.
``serve``     long-lived job server (JSON over HTTP on a TCP port or
              Unix socket): clients submit build/analyze/inject/dse
              jobs, identical concurrent submissions coalesce onto one
              computation, and results are byte-identical to the
              one-shot commands above.
``submit``    thin client for ``serve``: submit a job, stream/await
              its result.

``synth``/``flows``/``inject`` also accept ``--profile <out.json>`` to
write the same span report for their own run.

Uncaught flow errors (:class:`~repro.synth.SynthesisError`,
:class:`~repro.netlist.NetlistError`, :class:`~repro.store.StoreError`,
:class:`~repro.fault.CampaignError`) print as one-line
``repro: error: ...`` diagnostics with exit code 2 instead of
tracebacks.  ``repro inject`` additionally exits 1 when the golden
self-check fails and 3 when any fault was quarantined by its
``--fault-timeout`` deadline (the report under-covers the fault list).
"""

from __future__ import annotations

import argparse
import importlib
import sys


def _default_design():
    from repro.serve.jobs import default_design

    return default_design()


def _load_design(spec: str):
    """Build a design from a ``pkg.module:callable`` factory spec."""
    module_name, _, attr = spec.partition(":")
    if not attr:
        raise SystemExit(
            f"--design must look like 'pkg.module:factory', got {spec!r}"
        )
    try:
        module = importlib.import_module(module_name)
    except ImportError as exc:
        raise SystemExit(f"cannot import {module_name!r}: {exc}") from exc
    factory = getattr(module, attr, None)
    if factory is None:
        raise SystemExit(f"{module_name!r} has no attribute {attr!r}")
    return factory() if callable(factory) else factory


def _cmd_demo(args: argparse.Namespace) -> int:
    from repro.expocu import CameraModel, ExpoCU
    from repro.hdl import Clock, Module, NS, Signal, Simulator
    from repro.types import Bit
    from repro.types.spec import bit

    top = Module("system")
    top.clk = Clock("clk", 15 * NS)
    top.rst = Signal("rst", bit(), Bit(1))
    top.cam = CameraModel("cam", top.clk, top.rst, width=16, height=16,
                          scene_mean=args.scene_mean)
    top.dut = ExpoCU[16, 16]("expocu", top.clk, top.rst)
    for port in ("pix", "pix_valid", "line_strobe", "frame_strobe"):
        top.dut.port(port).bind(top.cam.port(port))
    top.cam.port("scl").bind(top.dut.port("scl"))
    top.cam.port("sda_master").bind(top.dut.port("sda_out"))
    top.cam.port("sda_oe").bind(top.dut.port("sda_oe"))
    top.dut.port("sda_in").bind(top.cam.port("sda_in"))
    sim = Simulator(top)
    sim.run(10 * 15 * NS)
    top.rst.write(0)
    print("frame | mean  | exposure | gain")
    for frame in range(args.frames):
        sim.run(700 * 15 * NS)
        print(f"{frame:5d} | {top.cam.mean_pixel():5.1f} | "
              f"{top.cam.exposure:8d} | {top.cam.gain:4d}")
    return 0


def _print_warnings(diagnostics) -> int:
    """Print warning diagnostics; returns how many there were."""
    warnings = [d for d in diagnostics if d.severity == "warning"]
    for diag in warnings:
        print(diag.render())
    return len(warnings)


def _write_profile(tracer, path: str | None) -> None:
    """Write *tracer* to *path* (validated) and say where it went."""
    if not path:
        return
    tracer.write(path)
    print(f"profile trace written to {path}")


def _cmd_synth(args: argparse.Namespace) -> int:
    from repro.analyze import diagnostics_from_lint_report
    from repro.obs import NULL_TRACER, Tracer
    from repro.rtl.lint import lint_module
    from repro.synth import synthesize
    from repro.synth.report import design_report

    tracer = Tracer("synth") if args.profile else NULL_TRACER
    module = _default_design()
    with tracer.span("synthesize"):
        rtl = synthesize(module, observe_children=False)
    print(design_report(module, rtl))
    with tracer.span("lint"):
        lint_report = lint_module(rtl)
    warnings = _print_warnings(
        diagnostics_from_lint_report(lint_report, "osss")
    )
    if args.verilog:
        from repro.rtl.verilog import to_verilog

        with tracer.span("verilog"), \
                open(args.verilog, "w", encoding="utf-8") as handle:
            handle.write(to_verilog(rtl))
        print(f"\nbehavioral Verilog written to {args.verilog}")
    if args.netlist:
        from repro.netlist import map_module, optimize
        from repro.netlist.verilog import (
            netlist_stats_comment,
            to_structural_verilog,
        )

        with tracer.span("techmap"):
            circuit = map_module(rtl)
        with tracer.span("opt"):
            optimize(circuit)
        with open(args.netlist, "w", encoding="utf-8") as handle:
            handle.write(netlist_stats_comment(circuit))
            handle.write(to_structural_verilog(circuit))
        print(f"structural netlist written to {args.netlist}")
    _write_profile(tracer, args.profile)
    if warnings and args.strict:
        print(f"strict mode: {warnings} lint warning(s)")
        return 1
    return 0


def _cmd_flows(args: argparse.Namespace) -> int:
    from repro.baseline import expocu_rtl
    from repro.eval import (
        flow_comparison,
        module_inventory,
        run_osss_flow,
        run_vhdl_flow,
    )

    from repro.obs import NULL_TRACER, Tracer

    tracer = Tracer("flows") if args.profile else NULL_TRACER
    osss = run_osss_flow(_default_design(), "osss", tracer=tracer)
    vhdl = run_vhdl_flow(expocu_rtl(), "vhdl", tracer=tracer)
    print(flow_comparison(osss, vhdl))
    print()
    print(module_inventory(osss))
    warnings = _print_warnings(osss.diagnostics + vhdl.diagnostics)
    _write_profile(tracer, args.profile)
    if warnings and args.strict:
        print(f"strict mode: {warnings} lint warning(s)")
        return 1
    return 0


def _cmd_lint(args: argparse.Namespace) -> int:
    from repro.analyze import analyze_design
    from repro.analyze.emit import RENDERERS

    design = (_load_design(args.design) if args.design
              else _default_design())
    diagnostics = analyze_design(
        design, design_lints=not args.no_design_lints
    )
    rendered = RENDERERS[args.format](diagnostics)
    if args.output:
        with open(args.output, "w", encoding="utf-8") as handle:
            handle.write(rendered)
        print(f"{args.format} report written to {args.output}")
    else:
        print(rendered, end="" if rendered.endswith("\n") else "\n")
    errors = sum(1 for d in diagnostics if d.severity == "error")
    warnings = len(diagnostics) - errors
    if errors:
        return 1
    if warnings and args.strict:
        return 1
    return 0


def _cmd_analyze(args: argparse.Namespace) -> int:
    import json

    from repro.eval import run_netlist_analysis
    from repro.store import ArtifactStore, serialize_testability

    design = (_load_design(args.design) if args.design
              else _default_design())
    store = None
    if not args.no_cache:
        store = ArtifactStore(args.cache_dir)
        if args.cold:
            store.clear()
    circuit, analysis = run_netlist_analysis(design, store=store)
    counter_totals = store.counter_totals() if store is not None else None
    if args.format == "json":
        doc = serialize_testability(analysis, circuit)
        rendered = json.dumps(doc, indent=2) + "\n"
    else:
        summary = analysis.summary()
        lines = [
            f"netlist analysis: {summary['design']}",
            f"  nets: {summary['nets']}, "
            f"equivalent fault sites merged: "
            f"{summary['equivalent_fault_sites_merged']} "
            f"(in {summary['equivalence_classes']} classes), "
            f"dominance-droppable: {summary['dominance_droppable']}",
            f"  worst finite observability: "
            f"{summary['max_finite_observability']}",
        ]
        for diagnostic in analysis.diagnostics:
            lines.append(diagnostic.render())
        rendered = "\n".join(lines) + "\n"
    if args.output:
        with open(args.output, "w", encoding="utf-8") as handle:
            handle.write(rendered)
        print(f"{args.format} report written to {args.output}")
    else:
        print(rendered, end="")
    if counter_totals is not None:
        print(f"cache: {counter_totals['hit']} hit(s), "
              f"{counter_totals['miss']} miss(es), "
              f"{counter_totals['store']} store(s)", file=sys.stderr)
    if args.strict and analysis.diagnostics:
        return 1
    return 0


def _cmd_inject(args: argparse.Namespace) -> int:
    import os

    from repro.fault import expocu_campaign
    from repro.obs import NULL_TRACER, Tracer

    tag = f"fault_{args.flow}_{args.hardening}_seed{args.seed}"
    if args.backend != "event":
        tag += f"_{args.backend}"
    journal = args.journal
    if journal is None and args.resume:
        # --resume without an explicit journal: the campaign's default
        # journal next to the design library, keyed by the same tag as
        # the default report.
        from repro.store import ArtifactStore

        journal = str(ArtifactStore(args.cache_dir).journal_path(tag))
    tracer = Tracer("inject") if args.profile else NULL_TRACER
    result = expocu_campaign(
        flow=args.flow,
        faults=args.faults,
        seed=args.seed,
        hardening=args.hardening,
        jobs=args.jobs,
        backend=args.backend,
        collapse=args.collapse,
        tracer=tracer,
        fault_timeout=args.fault_timeout,
        max_retries=args.max_retries,
        journal=journal,
        resume=args.resume,
    )
    output = args.output
    if output is None and os.path.isdir("benchmarks/results"):
        output = os.path.join("benchmarks", "results", f"{tag}.json")
    if output:
        with open(output, "w", encoding="utf-8") as handle:
            handle.write(result.to_json())
    if args.format == "json":
        print(result.to_json(), end="")
    else:
        from repro.eval import format_table

        print(format_table(result.summary_rows()))
        print(f"\ngolden run: selfcheck={result.golden_selfcheck}, "
              f"done={result.golden_done} "
              f"(drained {result.golden_drain_cycles} cycles)")
        if result.collapse is not None:
            stats = result.collapse
            print(f"collapse: simulated {stats['simulated']} of "
                  f"{stats['unique']} unique faults "
                  f"(equivalence-merged {stats['equivalence_merged']}, "
                  f"quiescence-pruned {stats['quiescence_pruned']})")
        exec_stats = result.exec_stats or {}
        eventful = {key: exec_stats[key]
                    for key in ("journal_hits", "respawns", "crashes",
                                "crash_requeues", "timeouts",
                                "timeout_retries", "quarantined",
                                "hung_kills", "fallback")
                    if exec_stats.get(key)}
        if eventful:
            detail = ", ".join(f"{key}={value}"
                               for key, value in eventful.items())
            print(f"resilience: {detail}")
        if result.errors:
            print(f"quarantined: {len(result.errors)} fault(s) exceeded "
                  "the --fault-timeout deadline and were excluded from "
                  "the record stream")
        if output:
            print(f"campaign report written to {output}")
    _write_profile(tracer, args.profile)
    if result.golden_selfcheck != "masked":
        print("error: golden replay diverged from the golden run")
        return 1
    if result.errors:
        return 3
    return 0


def _cmd_dse(args: argparse.Namespace) -> int:
    from repro.dse import DseResult
    from repro.obs import NULL_TRACER, Tracer
    from repro.serve.jobs import make_spec, run_job
    from repro.store import ArtifactStore

    store = None
    if not args.no_cache:
        store = ArtifactStore(args.cache_dir)
        if args.cold:
            store.clear()
    tracer = Tracer("dse") if args.profile else NULL_TRACER
    # Same execution path as 'repro serve' dse jobs (byte-diffable).
    payload = run_job(
        make_spec("dse", {
            "space": args.space, "side": args.side,
            "strategy": args.strategy, "fraction": args.fraction,
            "population": args.population,
            "generations": args.generations, "seed": args.seed,
            "faults": args.faults, "campaign_seed": args.campaign_seed,
            "backend": args.backend,
        }),
        store=store, tracer=tracer)
    result = DseResult(payload)
    if args.output:
        with open(args.output, "w", encoding="utf-8") as handle:
            handle.write(result.to_json())
    if args.format == "json":
        print(result.to_json(), end="")
    else:
        print(result.summary(), end="")
        if args.output:
            print(f"dse report written to {args.output}")
    if store is not None:
        counts = store.counter_totals()
        print(f"cache: {counts['hit']} hit(s), {counts['miss']} miss(es), "
              f"{counts['store']} store(s)", file=sys.stderr)
    _write_profile(tracer, args.profile)
    if result.doc["failures"] and not result.doc["points"]:
        print("error: every design point failed", file=sys.stderr)
        return 1
    return 0


def _cmd_resolve(args: argparse.Namespace) -> int:
    from repro.expocu import SyncRegister
    from repro.synth.codegen import resolve_class_text

    print(resolve_class_text(SyncRegister[args.regsize, args.resetvalue]))
    return 0


def _cmd_profile(args: argparse.Namespace) -> int:
    from repro.eval import format_table
    from repro.obs import Tracer, validate_trace

    tracer = Tracer(args.target)
    if args.target == "flows":
        from repro.baseline import expocu_rtl
        from repro.eval import run_osss_flow, run_vhdl_flow

        run_osss_flow(_default_design(), "osss", tracer=tracer)
        run_vhdl_flow(expocu_rtl(), "vhdl", tracer=tracer)
    elif args.target == "synth":
        from repro.synth import synthesize

        with tracer.span("synthesize"):
            synthesize(_default_design(), observe_children=False)
    else:  # campaign
        from repro.fault import expocu_campaign

        expocu_campaign(flow=args.flow, faults=args.faults, seed=args.seed,
                        jobs=args.jobs, backend=args.backend, tracer=tracer)
    validate_trace(tracer.as_dict())
    if args.format == "json":
        print(tracer.to_json(), end="")
    else:
        print(format_table(tracer.summary_rows()))
        print(f"\ntotal: {tracer.total_seconds():.4f}s")
    _write_profile(tracer, args.output)
    return 0


def _cmd_effort(args: argparse.Namespace) -> int:
    from repro.eval import format_table, i2c_effort_comparison

    rows = [record.as_dict()
            for record in i2c_effort_comparison().values()]
    print(format_table(rows))
    return 0


def _cmd_build(args: argparse.Namespace) -> int:
    import json

    from repro.obs import NULL_TRACER, Tracer
    from repro.serve.jobs import make_spec, run_job
    from repro.store import ArtifactStore

    store = None
    if not args.no_cache:
        store = ArtifactStore(args.cache_dir)
        if args.cold:
            store.clear()
    tracer = Tracer("build") if args.profile else NULL_TRACER
    # The same execution path 'repro serve' uses for build jobs — the
    # serve tests diff server results against this command's output.
    payload = run_job(make_spec("build", {"flow": args.flow}),
                      store=store, tracer=tracer)
    if args.json:
        # Summaries only: this output is byte-comparable across cold,
        # warm and cache-disabled runs (counters go to stderr).
        print(json.dumps(payload, indent=2))
    else:
        from repro.eval import format_table

        print(format_table(payload["flows"]))
    if store is not None:
        counts = store.counter_totals()
        line = (f"cache: {counts['hit']} hit(s), {counts['miss']} miss(es), "
                f"{counts['store']} store(s)")
        if counts["corrupt"]:
            line += f", {counts['corrupt']} corrupt entr(ies) recomputed"
        print(line, file=sys.stderr)
    _write_profile(tracer, args.profile)
    return 0


def _cmd_serve(args: argparse.Namespace) -> int:
    from repro.serve.server import run_server

    return run_server(
        socket_path=args.socket,
        host=args.host,
        port=args.port,
        cache_dir=None if args.no_cache else args.cache_dir,
        workers=args.workers,
        job_timeout=args.job_timeout,
        grace_s=args.grace,
        verbose=args.verbose,
    )


def _cmd_submit(args: argparse.Namespace) -> int:
    import json

    from repro.serve.client import ServeClient, ServeError

    if not args.socket and not args.port:
        print("repro: error: submit needs --socket PATH or --port N",
              file=sys.stderr)
        return 2
    try:
        params = json.loads(args.params)
    except ValueError as exc:
        print(f"repro: error: --params is not valid JSON: {exc}",
              file=sys.stderr)
        return 2
    client = ServeClient(socket_path=args.socket, host=args.host,
                         port=args.port)
    try:
        job = client.submit(args.kind, params, force=args.force)
        if args.no_wait:
            print(json.dumps({"job": job}, indent=2))
            return 0
        text = client.result_text(job["id"], timeout_s=args.timeout)
    except ServeError as exc:
        print(f"repro: error: server refused: {exc}", file=sys.stderr)
        return 2
    except (ConnectionError, OSError, TimeoutError) as exc:
        print(f"repro: error: {exc}", file=sys.stderr)
        return 2
    # The rendered result already ends in a newline and is
    # byte-identical to the matching one-shot command's JSON output.
    print(text, end="")
    return 0


def _cmd_cache(args: argparse.Namespace) -> int:
    import json

    from repro.store import ArtifactStore

    store = ArtifactStore(args.cache_dir)
    if args.cache_command == "stats":
        print(json.dumps(store.stats(), indent=2))
        return 0
    if args.cache_command == "gc":
        max_age = (args.max_age_days * 86400.0
                   if args.max_age_days is not None else None)
        report = store.gc(max_age)
        print(json.dumps(report, indent=2))
        return 0
    # verify
    report = store.verify(repair=args.repair)
    print(json.dumps(report, indent=2))
    return 0 if report["ok"] else 1


def build_parser() -> argparse.ArgumentParser:
    """The CLI argument parser (exposed for tests)."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="PyOSSS — OSSS methodology reproduction (DATE 2004)",
    )
    from repro import __version__

    parser.add_argument("--version", action="version",
                        version=f"%(prog)s {__version__}")
    sub = parser.add_subparsers(dest="command", required=True)

    demo = sub.add_parser("demo", help="closed-loop auto-exposure demo")
    demo.add_argument("--frames", type=int, default=10)
    demo.add_argument("--scene-mean", type=int, default=100)
    demo.set_defaults(func=_cmd_demo)

    synth = sub.add_parser("synth", help="synthesize the ExpoCU")
    synth.add_argument("--verilog", help="write behavioral Verilog here")
    synth.add_argument("--netlist", help="write structural netlist here")
    synth.add_argument("--strict", action="store_true",
                       help="exit non-zero on lint warnings")
    synth.add_argument("--profile", metavar="OUT.json",
                       help="write a repro-trace/v1 span report here")
    synth.set_defaults(func=_cmd_synth)

    flows = sub.add_parser("flows", help="both flows, §12 comparison")
    flows.add_argument("--strict", action="store_true",
                       help="exit non-zero on lint warnings")
    flows.add_argument("--profile", metavar="OUT.json",
                       help="write a repro-trace/v1 span report here")
    flows.set_defaults(func=_cmd_flows)

    lint = sub.add_parser(
        "lint", help="static analysis (fail-slow OSSS analyzer)"
    )
    lint.add_argument(
        "--design", metavar="PKG.MOD:FACTORY",
        help="design factory to analyze (default: the ExpoCU top)",
    )
    lint.add_argument("--format", choices=("text", "json", "sarif"),
                      default="text", help="output format")
    lint.add_argument("--output", help="write the report here")
    lint.add_argument("--strict", action="store_true",
                      help="exit non-zero on warnings too")
    lint.add_argument("--no-design-lints", action="store_true",
                      help="skip the RTL4xx design lints")
    lint.set_defaults(func=_cmd_lint)

    analyze = sub.add_parser(
        "analyze",
        help="netlist structural analysis (testability, collapsing, lints)",
    )
    analyze.add_argument(
        "--design", metavar="PKG.MOD:FACTORY",
        help="design factory to analyze (default: the ExpoCU top)",
    )
    analyze.add_argument("--format", choices=("text", "json"),
                         default="text",
                         help="text summary or the repro-testability/v1 "
                         "JSON report")
    analyze.add_argument("--output", help="write the report here")
    analyze.add_argument("--strict", action="store_true",
                         help="exit non-zero when any OSS5xx lint fires")
    analyze.add_argument("--cache-dir", default=".repro-cache",
                         help="design-library directory (shared with "
                         "'repro build')")
    analyze.add_argument("--cold", action="store_true",
                         help="clear the cache first")
    analyze.add_argument("--no-cache", action="store_true",
                         help="run without the design library")
    analyze.set_defaults(func=_cmd_analyze)

    inject = sub.add_parser(
        "inject", help="fault-injection campaign on the ExpoCU"
    )
    inject.add_argument("--flow", choices=("rtl", "netlist"), default="rtl",
                        help="inject into RTL registers or netlist nets")
    inject.add_argument("--faults", type=int, default=50,
                        help="number of seeded faults to inject")
    inject.add_argument("--seed", type=int, default=1,
                        help="campaign seed (stimulus and fault list)")
    inject.add_argument("--hardening",
                        choices=("none", "tmr", "parity", "tmr+parity"),
                        default="none",
                        help="netlist hardening applied before injection")
    inject.add_argument("--jobs", type=int, default=1,
                        help="worker processes sharding the fault list "
                        "(the report stays byte-identical to --jobs 1)")
    inject.add_argument("--backend",
                        choices=("event", "compiled", "bitparallel"),
                        default="event",
                        help="gate evaluator: interpreted event-driven, "
                        "code-generated straight-line, or lane-packed "
                        "bit-parallel (netlist flow)")
    inject.add_argument("--collapse", action="store_true",
                        help="statically collapse the fault list "
                        "(equivalence + quiescence pruning; netlist flow, "
                        "report stays byte-identical)")
    inject.add_argument("--fault-timeout", type=float, default=None,
                        metavar="SECONDS",
                        help="wall-clock deadline per fault replay; a "
                        "fault overrunning it is retried, then "
                        "quarantined (exit code 3)")
    inject.add_argument("--max-retries", type=int, default=1,
                        help="retries for a timed-out fault before "
                        "quarantine (default: 1)")
    inject.add_argument("--journal", metavar="PATH",
                        help="crash-safe campaign journal (JSONL); every "
                        "classified fault is durably appended")
    inject.add_argument("--resume", action="store_true",
                        help="resume from the journal: already-simulated "
                        "faults are restored, the report is byte-identical "
                        "to an uninterrupted run (default journal lives "
                        "under --cache-dir)")
    inject.add_argument("--cache-dir", default=".repro-cache",
                        help="design-library root the default --resume "
                        "journal lives next to")
    inject.add_argument("--format", choices=("text", "json"),
                        default="text", help="stdout format")
    inject.add_argument("--output", help="write the JSON report here "
                        "(default: benchmarks/results/ when present)")
    inject.add_argument("--profile", metavar="OUT.json",
                        help="write a repro-trace/v1 span report here")
    inject.set_defaults(func=_cmd_inject)

    dse = sub.add_parser(
        "dse",
        help="multi-objective design-space exploration on the ExpoCU",
    )
    dse.add_argument("--space", choices=("tiny", "full"), default="tiny",
                     help="bundled ExpoCU space: tiny (4 points) or "
                     "full (24 points)")
    dse.add_argument("--side", type=int, default=4,
                     help="frame side length of the explored ExpoCU "
                     "specializations (default: 4)")
    dse.add_argument("--strategy",
                     choices=("factorial", "evolutionary"),
                     default="factorial", help="search strategy")
    dse.add_argument("--fraction", type=int, default=1,
                     help="factorial: keep 1/N of the full design "
                     "(index-sum fractional design)")
    dse.add_argument("--population", type=int, default=8,
                     help="evolutionary: population size")
    dse.add_argument("--generations", type=int, default=6,
                     help="evolutionary: number of generations")
    dse.add_argument("--seed", type=int, default=1,
                     help="evolutionary: search seed")
    dse.add_argument("--faults", type=int, default=24,
                     help="seeded faults injected per design point")
    dse.add_argument("--campaign-seed", type=int, default=2004,
                     help="campaign seed (stimulus and fault list)")
    dse.add_argument("--backend",
                     choices=("event", "compiled", "bitparallel"),
                     default="bitparallel",
                     help="gate evaluator backend (reports are "
                     "byte-identical across backends)")
    dse.add_argument("--cache-dir", default=".repro-cache",
                     help="design-library directory (shared with "
                     "'repro build')")
    dse.add_argument("--cold", action="store_true",
                     help="clear the cache first")
    dse.add_argument("--no-cache", action="store_true",
                     help="run without the design library")
    dse.add_argument("--format", choices=("text", "json"),
                     default="text", help="stdout format")
    dse.add_argument("--output", help="write the repro-dse/v1 report here")
    dse.add_argument("--profile", metavar="OUT.json",
                     help="write a repro-trace/v1 span report here")
    dse.set_defaults(func=_cmd_dse)

    profile = sub.add_parser(
        "profile", help="profile a bundled workload (repro-trace/v1)"
    )
    profile.add_argument("--target", choices=("flows", "synth", "campaign"),
                         default="flows",
                         help="workload to run under the profiler")
    profile.add_argument("--flow", choices=("rtl", "netlist"), default="rtl",
                         help="campaign target: flow to inject into")
    profile.add_argument("--faults", type=int, default=10,
                         help="campaign target: number of seeded faults")
    profile.add_argument("--seed", type=int, default=1,
                         help="campaign target: campaign seed")
    profile.add_argument("--jobs", type=int, default=1,
                         help="campaign target: worker processes")
    profile.add_argument("--backend",
                         choices=("event", "compiled", "bitparallel"),
                         default="event",
                         help="campaign target: gate evaluator backend")
    profile.add_argument("--format", choices=("text", "json"),
                         default="text", help="stdout format")
    profile.add_argument("--output", metavar="OUT.json",
                         help="write the validated trace document here")
    profile.set_defaults(func=_cmd_profile)

    resolve = sub.add_parser("resolve",
                             help="Fig. 7 intermediate of SyncRegister")
    resolve.add_argument("--regsize", type=int, default=4)
    resolve.add_argument("--resetvalue", type=int, default=0)
    resolve.set_defaults(func=_cmd_resolve)

    effort = sub.add_parser("effort", help="E8 effort metrics")
    effort.set_defaults(func=_cmd_effort)

    build = sub.add_parser(
        "build", help="run the ExpoCU flows through the design library"
    )
    build.add_argument("--flow", choices=("osss", "vhdl", "both"),
                       default="both", help="which flow(s) to build")
    build.add_argument("--cache-dir", default=".repro-cache",
                       help="design-library root (default: .repro-cache)")
    build.add_argument("--cold", action="store_true",
                       help="clear the cache first (forced full rebuild)")
    build.add_argument("--no-cache", action="store_true",
                       help="bypass the design library entirely")
    build.add_argument("--json", action="store_true",
                       help="print flow summaries as JSON (cache counters "
                       "go to stderr, so output is run-comparable)")
    build.add_argument("--profile", metavar="OUT.json",
                       help="write a repro-trace/v1 span report here")
    build.set_defaults(func=_cmd_build)

    serve = sub.add_parser(
        "serve",
        help="long-lived job server over the design library",
    )
    serve_target = serve.add_mutually_exclusive_group(required=True)
    serve_target.add_argument("--socket", metavar="PATH",
                              help="listen on a Unix domain socket")
    serve_target.add_argument("--port", type=int, default=0,
                              help="listen on TCP (with --host)")
    serve.add_argument("--host", default="127.0.0.1",
                       help="TCP bind address (default: 127.0.0.1)")
    serve.add_argument("--cache-dir", default=".repro-cache",
                       help="design-library root shared by all jobs")
    serve.add_argument("--no-cache", action="store_true",
                       help="run jobs without the design library")
    serve.add_argument("--workers", type=int, default=2,
                       help="supervised worker processes (>= 2; fewer "
                       "runs jobs on an in-process thread)")
    serve.add_argument("--job-timeout", type=float, default=None,
                       metavar="SECONDS",
                       help="wall-clock deadline per job")
    serve.add_argument("--grace", type=float, default=10.0,
                       metavar="SECONDS",
                       help="shutdown grace period for in-flight jobs "
                       "(default: 10)")
    serve.add_argument("--verbose", action="store_true",
                       help="log requests to stderr")
    serve.set_defaults(func=_cmd_serve)

    submit = sub.add_parser(
        "submit", help="submit a job to a running 'repro serve'"
    )
    submit.add_argument("kind",
                        choices=("build", "analyze", "inject", "dse"),
                        help="job kind")
    submit.add_argument("--socket", metavar="PATH",
                        help="server's Unix domain socket")
    submit.add_argument("--port", type=int, default=0,
                        help="server's TCP port (with --host)")
    submit.add_argument("--host", default="127.0.0.1",
                        help="server's TCP host (default: 127.0.0.1)")
    submit.add_argument("--params", default="{}", metavar="JSON",
                        help="job parameters as a JSON object "
                        "(defaults mirror the one-shot command)")
    submit.add_argument("--force", action="store_true",
                        help="bypass request coalescing: always run a "
                        "fresh job even if an identical one is active")
    submit.add_argument("--no-wait", action="store_true",
                        help="print the job document and return instead "
                        "of waiting for the result")
    submit.add_argument("--timeout", type=float, default=600.0,
                        metavar="SECONDS",
                        help="how long to wait for the result "
                        "(default: 600)")
    submit.set_defaults(func=_cmd_submit)

    cache = sub.add_parser(
        "cache", help="design-library maintenance (stats / gc / verify)"
    )
    cache.add_argument("--cache-dir", default=".repro-cache",
                       help="design-library root (default: .repro-cache)")
    cache_sub = cache.add_subparsers(dest="cache_command", required=True)
    cache_sub.add_parser("stats", help="entry/object counts and size")
    cache_gc = cache_sub.add_parser(
        "gc", help="drop dangling pointers and unreferenced objects"
    )
    cache_gc.add_argument("--max-age-days", type=float, default=None,
                          help="also expire entries older than this")
    cache_verify = cache_sub.add_parser(
        "verify", help="rehash all objects, resolve all entries"
    )
    cache_verify.add_argument("--repair", action="store_true",
                              help="remove damaged objects/entries so the "
                              "next build recomputes them")
    cache.set_defaults(func=_cmd_cache)
    return parser


def main(argv: list[str] | None = None) -> int:
    """CLI entry point."""
    from repro.dse import DseError
    from repro.fault import CampaignError
    from repro.netlist import NetlistError
    from repro.serve.jobs import JobError
    from repro.store import StoreError
    from repro.synth import SynthesisError

    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        return args.func(args)
    except (SynthesisError, NetlistError, StoreError, CampaignError,
            DseError, JobError) as exc:
        print(f"repro: error: {exc}", file=sys.stderr)
        return 2


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
