"""Stable JSON serializers for flow-stage artifacts.

Three artifact families round-trip exactly through versioned documents:

``repro-rtl/v1``
    An :class:`~repro.rtl.ir.RtlModule` tree.  Expression DAGs are
    flattened into per-module node tables that preserve sharing, so a
    round-trip reproduces :meth:`RtlModule.stats` exactly; modules are
    serialized post-order with instances referencing them by index.
``repro-netlist/v1``
    A :class:`~repro.netlist.circuit.Circuit` — nets by position, cells
    with pins in library pin order, constant-net table, buses and
    unresolved black boxes.  This doubles as the repo's netlist
    interchange format (:func:`serialize_circuit` output is canonical:
    ``serialize(deserialize(doc)) == doc``).
``repro-timing/v1`` / ``repro-placement/v1`` / ``repro-diags/v1``
    Flow reports.  Net/cell references are stored as *positions* in the
    owning circuit's net/cell lists (uids are per-process counters), so
    loading rebinds them against the circuit deserialized alongside.

Determinism: serializers iterate only lists and insertion-ordered dicts
— never sets — so the same design yields byte-identical documents under
any ``PYTHONHASHSEED`` (asserted by ``tests/synth/test_determinism.py``).

Deserializers validate structure as they go and raise
:class:`~repro.store.common.StoreError` on any malformed document, which
the memoization layer downgrades to a recompute.
"""

from __future__ import annotations

import json
from typing import Any, Callable

from repro.analyze.diagnostics import Diagnostic
from repro.netlist.cells import LIBRARY
from repro.netlist.circuit import BlackBox, Cell, Circuit, Net
from repro.netlist.pnr import Placement
from repro.netlist.sta import TimingReport
from repro.rtl.ir import (
    BinOp,
    Carrier,
    Concat,
    Const,
    Expr,
    Instance,
    Mux,
    Read,
    Resize,
    RtlModule,
    ShiftConst,
    ShiftDyn,
    Slice,
    UnaryOp,
    WireCarrier,
)
from repro.store.common import StoreError
from repro.types.spec import TypeSpec

RTL_SCHEMA = "repro-rtl/v1"
NETLIST_SCHEMA = "repro-netlist/v1"
TIMING_SCHEMA = "repro-timing/v1"
PLACEMENT_SCHEMA = "repro-placement/v1"
DIAGS_SCHEMA = "repro-diags/v1"
TESTABILITY_SCHEMA = "repro-testability/v1"
DSE_POINT_SCHEMA = "repro-dse-point/v1"
DSE_SCHEMA = "repro-dse/v1"


def _expect_schema(doc: Any, schema: str) -> None:
    if not isinstance(doc, dict) or doc.get("schema") != schema:
        found = doc.get("schema") if isinstance(doc, dict) else type(doc)
        raise StoreError(f"expected a {schema} document, got {found!r}")


def _corrupt(schema: str, exc: Exception) -> StoreError:
    return StoreError(f"corrupt {schema} document: {exc}")


def _spec_doc(spec: TypeSpec) -> list:
    return [spec.kind, spec.width, spec.frac_bits]


def _spec_load(doc: Any) -> TypeSpec:
    try:
        kind, width, frac_bits = doc
        return TypeSpec(kind, width, frac_bits)
    except (TypeError, ValueError) as exc:
        raise StoreError(f"bad type spec {doc!r}: {exc}") from exc


# ----------------------------------------------------------------------
# RTL IR
# ----------------------------------------------------------------------
class _RtlModuleWriter:
    """Serializes one module; carriers resolve against the local scope."""

    def __init__(self, module: RtlModule, child_index: dict[str, int]) -> None:
        self.module = module
        self.child_index = child_index
        self.nodes: list[list] = []
        self._memo: dict[int, int] = {}
        self._refs: dict[int, list] = {}
        for name, carrier in module.inputs.items():
            self._refs[carrier.uid] = ["in", name]
        for k, reg in enumerate(module.registers):
            self._refs[reg.uid] = ["reg", k]
        for k, wire in enumerate(module.wires):
            self._refs[wire.uid] = ["wire", k]
        for k, instance in enumerate(module.instances):
            for port, carrier in instance.output_carriers.items():
                self._refs[carrier.uid] = ["iout", k, port]

    def node(self, expr: Expr) -> int:
        """Serialize *expr* (and its DAG) into the node table, memoized."""
        idx = self._memo.get(id(expr))
        if idx is not None:
            return idx
        if isinstance(expr, Const):
            record = ["c", *_spec_doc(expr.spec), expr.raw]
        elif isinstance(expr, Read):
            ref = self._refs.get(expr.carrier.uid)
            if ref is None:
                raise StoreError(
                    f"module {self.module.name}: expression reads carrier "
                    f"{expr.carrier.name!r} outside the module scope"
                )
            record = ["r", *ref]
        elif isinstance(expr, UnaryOp):
            record = ["u", expr.op, self.node(expr.a)]
        elif isinstance(expr, BinOp):
            record = ["b", expr.op, self.node(expr.a), self.node(expr.b)]
        elif isinstance(expr, Mux):
            record = ["m", self.node(expr.cond), self.node(expr.if_true),
                      self.node(expr.if_false)]
        elif isinstance(expr, Slice):
            record = ["s", self.node(expr.a), expr.hi, expr.lo,
                      int(expr.spec.kind == "bit")]
        elif isinstance(expr, Concat):
            record = ["cat", [self.node(p) for p in expr.parts]]
        elif isinstance(expr, ShiftConst):
            record = ["shc", self.node(expr.a), expr.amount, int(expr.left)]
        elif isinstance(expr, ShiftDyn):
            record = ["shd", self.node(expr.a), self.node(expr.amount),
                      int(expr.left)]
        elif isinstance(expr, Resize):
            record = ["rz", self.node(expr.a), *_spec_doc(expr.spec)]
        else:
            raise StoreError(
                f"unknown RTL expression node {type(expr).__name__}"
            )
        idx = len(self.nodes)
        self.nodes.append(record)
        self._memo[id(expr)] = idx
        return idx

    def doc(self) -> dict:
        m = self.module
        # Attributes: keep JSON-representable values (everything the
        # downstream stages read — reset_port, blackbox_ip, fsm_states,
        # policy, const_signals), canonicalized through JSON so tuples
        # do not leak Python-only structure into the byte-compared
        # document.  Synthesis-time scratch holding live Python objects
        # (e.g. shared_clients' SharedObject references) is dropped;
        # only the synthesizer itself consumes those, and it never runs
        # on a deserialized tree.
        attributes = {}
        for attr_key, attr_value in m.attributes.items():
            try:
                attributes[attr_key] = json.loads(json.dumps(attr_value))
            except (TypeError, ValueError):
                continue
        # Node-table construction order is part of the canonical form:
        # wires first (a wire only reads earlier wires), then register
        # next-values, outputs and instance connections.
        wires = [[w.name, _spec_doc(w.spec), self.node(w.expr)]
                 for w in m.wires]
        nexts = [self.node(r.next) for r in m.registers]
        outputs = [[name, self.node(expr)] for name, expr in m.outputs.items()]
        connections = [
            [k, port, self.node(expr)]
            for k, instance in enumerate(m.instances)
            for port, expr in instance.connections.items()
        ]
        return {
            "name": m.name,
            "attributes": attributes,
            "inputs": [[name, _spec_doc(c.spec)]
                       for name, c in m.inputs.items()],
            "registers": [[r.name, _spec_doc(r.spec), r.reset_raw]
                          for r in m.registers],
            "instances": [[inst.name, self.child_index[inst.name]]
                          for inst in m.instances],
            "wires": wires,
            "next": nexts,
            "outputs": outputs,
            "connections": connections,
            "nodes": self.nodes,
        }


def serialize_rtl(root: RtlModule) -> dict:
    """Serialize an RTL module tree to a ``repro-rtl/v1`` document."""
    modules: list[dict] = []
    index: dict[int, int] = {}

    def visit(module: RtlModule) -> int:
        if id(module) in index:
            return index[id(module)]
        child_index = {
            inst.name: visit(inst.module) for inst in module.instances
        }
        writer = _RtlModuleWriter(module, child_index)
        doc = writer.doc()
        index[id(module)] = len(modules)
        modules.append(doc)
        return index[id(module)]

    root_idx = visit(root)
    return {"schema": RTL_SCHEMA, "root": root_idx, "modules": modules}


class _RtlModuleReader:
    """Rebuilds one module from its document (children already built)."""

    def __init__(self, doc: dict, children: list[RtlModule]) -> None:
        self.doc = doc
        self.module = RtlModule(doc["name"])
        self.module.attributes = json.loads(json.dumps(doc["attributes"]))
        for name, spec in doc["inputs"]:
            self.module.add_input(name, _spec_load(spec))
        for name, spec, reset_raw in doc["registers"]:
            self.module.add_register(name, _spec_load(spec), reset_raw)
        for (name, child_idx) in doc["instances"]:
            self.module.add_instance(name, children[child_idx])
        self.nodes: list = doc["nodes"]
        self._memo: dict[int, Expr] = {}

    def _carrier(self, ref: list) -> Carrier:
        kind = ref[0]
        m = self.module
        if kind == "in":
            return m.inputs[ref[1]]
        if kind == "reg":
            return m.registers[ref[1]]
        if kind == "wire":
            return m.wires[ref[1]]
        if kind == "iout":
            return m.instances[ref[1]].output_carriers[ref[2]]
        raise StoreError(f"unknown carrier reference {ref!r}")

    def build(self, idx: int) -> Expr:
        expr = self._memo.get(idx)
        if expr is not None:
            return expr
        record = self.nodes[idx]
        tag = record[0]
        if tag == "c":
            expr = Const(_spec_load(record[1:4]), record[4])
        elif tag == "r":
            expr = Read(self._carrier(record[1:]))
        elif tag == "u":
            expr = UnaryOp(record[1], self.build(record[2]))
        elif tag == "b":
            expr = BinOp(record[1], self.build(record[2]),
                         self.build(record[3]))
        elif tag == "m":
            expr = Mux(self.build(record[1]), self.build(record[2]),
                       self.build(record[3]))
        elif tag == "s":
            expr = Slice(self.build(record[1]), record[2], record[3],
                         as_bit=bool(record[4]))
        elif tag == "cat":
            expr = Concat([self.build(p) for p in record[1]])
        elif tag == "shc":
            expr = ShiftConst(self.build(record[1]), record[2],
                              left=bool(record[3]))
        elif tag == "shd":
            expr = ShiftDyn(self.build(record[1]), self.build(record[2]),
                            left=bool(record[3]))
        elif tag == "rz":
            expr = Resize(self.build(record[1]), _spec_load(record[2:5]))
        else:
            raise StoreError(f"unknown RTL node tag {tag!r}")
        self._memo[idx] = expr
        return expr

    def finish(self) -> RtlModule:
        m = self.module
        # Same order as serialization: wires, register nexts, outputs,
        # instance connections.
        for name, spec, node in self.doc["wires"]:
            m.wires.append(WireCarrier(name, _spec_load(spec),
                                       self.build(node)))
        for reg, node in zip(m.registers, self.doc["next"]):
            reg.next = self.build(node)
        for name, node in self.doc["outputs"]:
            m.add_output(name, self.build(node))
        for inst_idx, port, node in self.doc["connections"]:
            m.instances[inst_idx].connect(port, self.build(node))
        return m


def deserialize_rtl(doc: Any) -> RtlModule:
    """Rebuild an RTL module tree from a ``repro-rtl/v1`` document."""
    _expect_schema(doc, RTL_SCHEMA)
    try:
        module_docs = doc["modules"]
        built: list[RtlModule] = []
        for mdoc in module_docs:
            if any(idx >= len(built) for _, idx in mdoc["instances"]):
                raise StoreError("instance references a later module")
            built.append(_RtlModuleReader(mdoc, built).finish())
        root = built[doc["root"]]
        root.validate()
        return root
    except StoreError:
        raise
    except Exception as exc:  # malformed document of any shape
        raise _corrupt(RTL_SCHEMA, exc) from exc


# ----------------------------------------------------------------------
# gate-level netlists
# ----------------------------------------------------------------------
def serialize_circuit(circuit: Circuit) -> dict:
    """Serialize a :class:`Circuit` to a ``repro-netlist/v1`` document."""
    index = {net.uid: k for k, net in enumerate(circuit.nets)}

    def net_idx(net: Net) -> int:
        try:
            return index[net.uid]
        except KeyError:
            raise StoreError(
                f"net {net.name!r} is referenced but not owned by "
                f"circuit {circuit.name!r}"
            ) from None

    def bus_doc(buses: dict[str, list[Net]]) -> list:
        return [[name, [net_idx(n) for n in nets]]
                for name, nets in buses.items()]

    cells = []
    for cell in circuit.cells:
        pins = [net_idx(cell.pins[p])
                for p in (*cell.ctype.inputs, *cell.ctype.outputs)]
        cells.append([cell.name, cell.ctype.name, pins])
    return {
        "schema": NETLIST_SCHEMA,
        "name": circuit.name,
        "nets": [net.name for net in circuit.nets],
        "cells": cells,
        "const": [[value, net_idx(net)]
                  for value, net in sorted(circuit.constant_nets().items())],
        "inputs": bus_doc(circuit.input_buses),
        "outputs": bus_doc(circuit.output_buses),
        "blackboxes": [
            [box.name, box.ip_name, bus_doc(box.input_buses),
             bus_doc(box.output_buses)]
            for box in circuit.blackboxes
        ],
    }


def deserialize_circuit(doc: Any) -> Circuit:
    """Rebuild a :class:`Circuit` from a ``repro-netlist/v1`` document."""
    _expect_schema(doc, NETLIST_SCHEMA)
    try:
        circuit = Circuit(doc["name"])
        nets = [Net(name) for name in doc["nets"]]
        circuit.nets = nets

        def bus_load(entries: list) -> dict[str, list[Net]]:
            return {name: [nets[k] for k in idxs] for name, idxs in entries}

        for name, type_name, pin_idxs in doc["cells"]:
            ctype = LIBRARY.get(type_name)
            if ctype is None:
                raise StoreError(f"unknown cell type {type_name!r}")
            pin_names = (*ctype.inputs, *ctype.outputs)
            if len(pin_names) != len(pin_idxs):
                raise StoreError(f"cell {name!r}: pin count mismatch")
            pins = {p: nets[k] for p, k in zip(pin_names, pin_idxs)}
            cell = Cell(name, ctype, pins)
            for pin in ctype.outputs:
                net = pins[pin]
                if net.driver is not None:
                    raise StoreError(
                        f"net {net.name!r} has multiple drivers"
                    )
                net.driver = (cell, pin)
            circuit.cells.append(cell)
        circuit._const = {value: nets[k] for value, k in doc["const"]}
        circuit.input_buses = bus_load(doc["inputs"])
        circuit.output_buses = bus_load(doc["outputs"])
        for name, ip_name, in_doc, out_doc in doc["blackboxes"]:
            circuit.blackboxes.append(
                BlackBox(name, ip_name, bus_load(in_doc), bus_load(out_doc))
            )
        if not circuit.blackboxes:
            circuit.validate()
        return circuit
    except StoreError:
        raise
    except Exception as exc:
        raise _corrupt(NETLIST_SCHEMA, exc) from exc


# ----------------------------------------------------------------------
# flow reports (net/cell references stored positionally)
# ----------------------------------------------------------------------
def _net_index(circuit: Circuit) -> dict[int, int]:
    return {net.uid: k for k, net in enumerate(circuit.nets)}


def serialize_timing(timing: TimingReport, circuit: Circuit) -> dict:
    """Serialize a :class:`TimingReport` computed on *circuit*."""
    index = _net_index(circuit)
    try:
        arrival = sorted((index[uid], ns)
                         for uid, ns in timing.arrival.items())
    except KeyError:
        raise StoreError(
            "timing report references nets outside the circuit"
        ) from None
    return {
        "schema": TIMING_SCHEMA,
        "critical_path_ns": timing.critical_path_ns,
        "fmax_mhz": timing.fmax_mhz,
        "path": list(timing.path),
        "arrival": [[k, ns] for k, ns in arrival],
    }


def deserialize_timing(doc: Any, circuit: Circuit) -> TimingReport:
    """Rebuild a :class:`TimingReport`, rebinding arrivals to *circuit*."""
    _expect_schema(doc, TIMING_SCHEMA)
    try:
        nets = circuit.nets
        arrival = {nets[k].uid: ns for k, ns in doc["arrival"]}
        return TimingReport(doc["critical_path_ns"], doc["fmax_mhz"],
                            list(doc["path"]), arrival)
    except StoreError:
        raise
    except Exception as exc:
        raise _corrupt(TIMING_SCHEMA, exc) from exc


def serialize_placement(placement: Placement) -> dict:
    """Serialize a :class:`Placement` of its own circuit."""
    circuit = placement.circuit
    net_index = _net_index(circuit)
    cell_index = {cell.uid: k for k, cell in enumerate(circuit.cells)}
    try:
        positions = sorted(
            (cell_index[uid], row, col)
            for uid, (row, col) in placement.positions.items()
        )
        wirelength = sorted(
            (net_index[uid], length)
            for uid, length in placement.wirelength.items()
        )
    except KeyError:
        raise StoreError(
            "placement references cells or nets outside the circuit"
        ) from None
    return {
        "schema": PLACEMENT_SCHEMA,
        "grid_side": placement.grid_side,
        "positions": [list(entry) for entry in positions],
        "wirelength": [list(entry) for entry in wirelength],
    }


def deserialize_placement(doc: Any, circuit: Circuit) -> Placement:
    """Rebuild a :class:`Placement`, rebinding uids to *circuit*."""
    _expect_schema(doc, PLACEMENT_SCHEMA)
    try:
        placement = Placement(circuit)
        placement.grid_side = doc["grid_side"]
        cells = circuit.cells
        nets = circuit.nets
        placement.positions = {
            cells[k].uid: (row, col) for k, row, col in doc["positions"]
        }
        placement.wirelength = {
            nets[k].uid: length for k, length in doc["wirelength"]
        }
        return placement
    except StoreError:
        raise
    except Exception as exc:
        raise _corrupt(PLACEMENT_SCHEMA, exc) from exc


def serialize_testability(analysis: "NetlistAnalysis",
                          circuit: Circuit) -> dict:
    """Serialize a netlist analysis computed on *circuit*.

    Net references are positions in ``circuit.nets``; unreachable SCOAP
    scores (:data:`repro.analyze.netlist.INF`) become ``null``, and nets
    whose three scores are all unreachable are omitted (the loader
    restores them), which keeps the document canonical and small.
    """
    index = _net_index(circuit)
    testability = analysis.testability

    def score(value: float) -> float | None:
        return None if value == float("inf") else value

    try:
        scores = sorted(
            (index[uid], score(testability.cc0[uid]),
             score(testability.cc1[uid]), score(testability.co[uid]))
            for uid in testability.co
            if (testability.cc0[uid], testability.cc1[uid],
                testability.co[uid]) != (float("inf"),) * 3
        )
        classes = sorted(
            sorted([index[uid], kind] for uid, kind in members)
            for members in analysis.collapse.equivalence.classes().values()
        )
        dominance = sorted(
            [index[uid], kind]
            for uid, kind in analysis.collapse.dominance_dropped
        )
    except KeyError:
        raise StoreError(
            "testability analysis references nets outside the circuit"
        ) from None
    return {
        "schema": TESTABILITY_SCHEMA,
        "design": analysis.design,
        "scores": [list(entry) for entry in scores],
        "equivalence": classes,
        "dominance": dominance,
        "diagnostics": [d.as_dict() for d in analysis.diagnostics],
    }


def deserialize_testability(doc: Any, circuit: Circuit) -> "NetlistAnalysis":
    """Rebuild a :class:`NetlistAnalysis`, rebinding nets to *circuit*."""
    from repro.analyze.netlist import (
        CollapseAnalysis,
        FaultEquivalence,
        NetlistAnalysis,
        TestabilityReport,
    )

    _expect_schema(doc, TESTABILITY_SCHEMA)
    inf = float("inf")
    try:
        nets = circuit.nets
        cc0 = {net.uid: inf for net in nets}
        cc1 = {net.uid: inf for net in nets}
        co = {net.uid: inf for net in nets}
        for k, s0, s1, so in doc["scores"]:
            uid = nets[k].uid
            cc0[uid] = inf if s0 is None else s0
            cc1[uid] = inf if s1 is None else s1
            co[uid] = inf if so is None else so
        equivalence = FaultEquivalence()
        for members in doc["equivalence"]:
            (first, first_kind), *rest = members
            for k, kind in rest:
                equivalence.union((nets[k].uid, kind),
                                  (nets[first].uid, first_kind))
        dominance = [(nets[k].uid, kind) for k, kind in doc["dominance"]]
        diagnostics = [
            Diagnostic(d["code"], d["message"], d["where"],
                       d["file"], d["line"])
            for d in doc["diagnostics"]
        ]
        return NetlistAnalysis(
            doc["design"],
            TestabilityReport(doc["design"], cc0, cc1, co),
            CollapseAnalysis(doc["design"], equivalence, dominance),
            diagnostics,
        )
    except StoreError:
        raise
    except Exception as exc:
        raise _corrupt(TESTABILITY_SCHEMA, exc) from exc


def serialize_fault_record(record: Any) -> dict:
    """Serialize one campaign :class:`~repro.fault.campaign.FaultRecord`.

    Journal line format for checkpoint/resume: the fault identity keys
    ride under ``"fault"`` and the classification beside it, mirroring
    ``FaultRecord.as_dict`` (``detail`` present only when non-empty so a
    round-trip is exact).
    """
    doc: dict[str, Any] = {
        "fault": record.fault.as_dict(),
        "outcome": record.outcome,
        "first_divergence": record.first_divergence,
    }
    if record.detail:
        doc["detail"] = record.detail
    return doc


def deserialize_fault_record(doc: Any) -> Any:
    """Rebuild a :class:`~repro.fault.campaign.FaultRecord` from a journal."""
    # Imported lazily: fault.campaign imports this module at top level.
    from repro.fault.campaign import Fault, FaultRecord

    try:
        fault_doc = doc["fault"]
        fault = Fault(fault_doc["kind"], fault_doc["target"],
                      int(fault_doc["bit"]), int(fault_doc["cycle"]))
        divergence = doc["first_divergence"]
        return FaultRecord(
            fault, doc["outcome"],
            None if divergence is None else int(divergence),
            doc.get("detail", ""),
        )
    except StoreError:
        raise
    except Exception as exc:
        raise StoreError(
            f"corrupt fault record in journal: {type(exc).__name__}: {exc}"
        ) from exc


def serialize_dse_point(metrics: dict, campaign: dict,
                        objectives: dict) -> dict:
    """Serialize one evaluated DSE point (cached under the ``dse_point``
    stage key).

    The document deliberately carries **no point identity** — two
    assignments that specialize to identical hardware share one cache
    entry; the assignment/``point_id`` labels attach at report level.
    All three sections are flat ``{name: number}``-style dicts built in
    insertion order by :mod:`repro.dse.evaluate`.
    """
    return {
        "schema": DSE_POINT_SCHEMA,
        "metrics": dict(metrics),
        "campaign": dict(campaign),
        "objectives": dict(objectives),
    }


def deserialize_dse_point(doc: Any) -> dict:
    """Validate and rebuild a cached DSE point document."""
    _expect_schema(doc, DSE_POINT_SCHEMA)
    try:
        out = {
            "schema": DSE_POINT_SCHEMA,
            "metrics": dict(doc["metrics"]),
            "campaign": dict(doc["campaign"]),
            "objectives": dict(doc["objectives"]),
        }
        for name, value in out["objectives"].items():
            if not isinstance(value, (int, float)) or isinstance(value, bool):
                raise StoreError(
                    f"objective {name!r} is not a number: {value!r}")
        return out
    except StoreError:
        raise
    except Exception as exc:
        raise _corrupt(DSE_POINT_SCHEMA, exc) from exc


def serialize_dse_report(doc: dict) -> dict:
    """Stamp-and-validate a ``repro-dse/v1`` exploration report.

    The document is assembled by :mod:`repro.dse.report`; this checks the
    invariants other tools rely on (schema tag, point list sorted by
    ``id``, Pareto/ranking ids all evaluated) so a malformed report never
    enters the store or leaves the CLI.
    """
    out = dict(doc)
    out["schema"] = DSE_SCHEMA
    _check_dse_report(out)
    return out


def deserialize_dse_report(doc: Any) -> dict:
    """Validate a stored ``repro-dse/v1`` report document."""
    _expect_schema(doc, DSE_SCHEMA)
    _check_dse_report(doc)
    return {key: doc[key] for key in doc}


def _check_dse_report(doc: dict) -> None:
    try:
        for key in ("space", "strategy", "objectives", "points",
                    "failures", "pareto", "ranking"):
            if key not in doc:
                raise StoreError(f"report is missing {key!r}")
        ids = [point["id"] for point in doc["points"]]
        if ids != sorted(ids):
            raise StoreError("report points are not sorted by id")
        known = set(ids)
        for pid in doc["pareto"]:
            if pid not in known:
                raise StoreError(f"pareto id {pid!r} was never evaluated")
        for entry in doc["ranking"]:
            if entry["id"] not in known:
                raise StoreError(
                    f"ranking id {entry['id']!r} was never evaluated")
    except StoreError:
        raise
    except Exception as exc:
        raise _corrupt(DSE_SCHEMA, exc) from exc


def serialize_diagnostics(diagnostics: list[Diagnostic]) -> dict:
    """Serialize analyzer/lint findings."""
    return {
        "schema": DIAGS_SCHEMA,
        "diagnostics": [d.as_dict() for d in diagnostics],
    }


def deserialize_diagnostics(doc: Any) -> list[Diagnostic]:
    """Rebuild :class:`Diagnostic` records (severity re-derives by code)."""
    _expect_schema(doc, DIAGS_SCHEMA)
    try:
        return [
            Diagnostic(d["code"], d["message"], d["where"],
                       d["file"], d["line"])
            for d in doc["diagnostics"]
        ]
    except StoreError:
        raise
    except Exception as exc:
        raise _corrupt(DIAGS_SCHEMA, exc) from exc
