"""Canonical fingerprinting: stable keys for designs, artifacts, stages.

The design library caches flow stages under keys built from three
ingredients, so a cached artifact is reused only when *nothing that
could change it* has changed:

1. **What goes in** — a design fingerprint walking the live module
   hierarchy (class sources, template bindings, ports, signal initial
   values, hardware objects, process registrations, children), or the
   content digest of an upstream artifact (digest chaining).
2. **What runs** — a per-stage *code version*: the SHA-256 of the
   source files implementing that stage (see ``_STAGE_SOURCES``).
   Editing the optimizer invalidates ``opt`` and everything downstream
   of it, but leaves ``synthesize`` entries warm.
3. **The key schema itself** — :data:`~repro.store.common.STORE_SCHEMA`,
   so a layout change never resurrects stale entries.

All fingerprints are digests of canonical JSON documents built from
lists and insertion-ordered dicts — no set iteration anywhere — which
makes them identical across processes and ``PYTHONHASHSEED`` values
(asserted by the subprocess test in ``tests/synth/test_determinism.py``).
"""

from __future__ import annotations

import hashlib
import inspect
from functools import lru_cache
from pathlib import Path
from typing import Any

from repro.hdl.module import Module
from repro.hdl.signal import Clock, Signal
from repro.osss.template import is_template, template_binding
from repro.store.common import STORE_SCHEMA, StoreError, digest_doc
from repro.types.spec import TypeSpec

_SRC_ROOT = Path(__file__).resolve().parent.parent

#: Source files whose content defines each stage's code version.  A
#: directory folds in all of its ``.py`` files.  Paths are relative to
#: ``src/repro``.
_STAGE_SOURCES: dict[str, tuple[str, ...]] = {
    "analyze": ("analyze", "hdl", "osss", "types"),
    "synthesize": ("synth", "osss", "hdl", "types", "rtl/ir.py",
                   "rtl/build.py"),
    "lint": ("rtl/lint.py", "rtl/ir.py", "analyze/diagnostics.py"),
    "techmap": ("netlist/techmap.py", "netlist/circuit.py",
                "netlist/cells.py", "rtl/ir.py"),
    "link": ("netlist/linker.py", "netlist/circuit.py",
             "netlist/cells.py"),
    "opt": ("netlist/opt.py", "netlist/circuit.py", "netlist/cells.py"),
    "sta": ("netlist/sta.py", "netlist/cells.py"),
    "pnr": ("netlist/pnr.py", "netlist/circuit.py"),
    "sta_routed": ("netlist/sta.py", "netlist/pnr.py", "netlist/cells.py"),
    "testability": ("analyze/netlist", "netlist/circuit.py",
                    "netlist/cells.py"),
    "harden": ("fault/harden.py", "netlist/circuit.py",
               "netlist/cells.py"),
    "dse_point": ("fault", "dse/evaluate.py", "netlist/sim.py",
                  "netlist/circuit.py", "netlist/cells.py",
                  "netlist/sta.py", "netlist/area.py", "rtl/simulate.py"),
}

#: Folded into every stage version: the serializers define the artifact
#: format, so changing them must invalidate everything.
_COMMON_SOURCES = ("store/serialize.py", "store/common.py")


def _template_value_doc(value: Any) -> Any:
    """A canonical document for one template argument."""
    if isinstance(value, type):
        return ["type", _class_fingerprint(value)]
    if isinstance(value, TypeSpec):
        return ["spec", value.kind, value.width, value.frac_bits]
    if isinstance(value, (int, str, bool)) or value is None:
        return ["lit", value]
    return ["repr", type(value).__name__, repr(value)]


@lru_cache(maxsize=None)
def _class_fingerprint(cls: type) -> str:
    """Digest of a class's behaviour-defining source.

    Template specializations are dynamic ``type()`` classes without
    retrievable source; they fingerprint as their generic base's source
    plus the bound template arguments — exactly the information that
    defines the specialization.
    """
    doc: list[Any] = [cls.__module__, cls.__qualname__]
    if is_template(cls):
        base = cls._template_base_
        doc.append([
            "template",
            _source_or_marker(base),
            [[name, _template_value_doc(value)]
             for name, value in template_binding(cls).items()],
        ])
    else:
        doc.append(["plain", _source_or_marker(cls)])
    # Fold in user-defined bases (hardware mixins change behaviour too).
    for parent in cls.__mro__[1:]:
        if parent.__module__ in ("builtins",):
            continue
        if is_template(parent) and parent is getattr(
                cls, "_template_base_", None):
            continue  # already captured above
        doc.append([parent.__qualname__, _source_or_marker(parent)])
    return digest_doc(doc)


def _source_or_marker(cls: type) -> str:
    try:
        return inspect.getsource(cls)
    except (OSError, TypeError):
        # Interactively defined or generated class: fall back to a
        # conservative marker so two such classes never collide silently.
        return f"<no-source {cls.__module__}.{cls.__qualname__}>"


def _value_state(value: Any) -> Any:
    """Best-effort canonical state of a hardware-object attribute."""
    if isinstance(value, (int, str, bool)) or value is None:
        return value
    spec = getattr(value, "spec", None)
    raw = getattr(value, "raw", None)
    if isinstance(spec, TypeSpec) and raw is not None:
        return [spec.kind, spec.width, spec.frac_bits, raw]
    try:
        return [type(value).__name__,
                spec.describe() if isinstance(spec, TypeSpec) else None,
                repr(value)]
    except Exception:
        return [type(value).__name__]


def _signal_doc(sig: Signal) -> list:
    doc = [sig.name, sig.spec.kind, sig.spec.width, sig.spec.frac_bits,
           sig.spec.to_raw_unchecked(sig.read())]
    if isinstance(sig, Clock):
        doc.append(sig.period)
    return doc


def _process_doc(proc) -> list:
    """Canonical document for one registered process.

    Clock and reset signals ride on the process object, not on
    ``module.signals`` — so the period of the clock a ``cthread`` runs
    on (and the reset polarity/initial value) must be captured here.
    """
    doc: list[Any] = [type(proc).__name__, proc.name]
    clock = getattr(proc, "clock", None)
    if clock is not None:
        doc.append(["clock", _signal_doc(clock)])
    reset = getattr(proc, "reset", None)
    if reset is not None:
        doc.append(["reset", _signal_doc(reset),
                    getattr(proc, "reset_active", None)])
    for item in getattr(proc, "sensitivity", ()):
        if isinstance(item, tuple):
            doc.append(["sens", _signal_doc(item[0]), repr(item[1])])
        else:
            doc.append(["sens", _signal_doc(item)])
    return doc


def _module_doc(module: Module) -> dict:
    """Canonical document for one module instance (recursive)."""
    hw_objects = []
    for name in sorted(module.hw_objects()):
        obj = module.hw_objects()[name]
        state = []
        obj_vars = getattr(obj, "__dict__", None)
        if obj_vars is not None:
            for attr in sorted(obj_vars):
                if attr.startswith("_"):
                    continue
                state.append([attr, _value_state(obj_vars[attr])])
        hw_objects.append([name, _class_fingerprint(type(obj)), state])
    return {
        "class": _class_fingerprint(type(module)),
        "name": module.name,
        "ports": [[name, port.direction, port.spec.kind, port.spec.width,
                   port.spec.frac_bits]
                  for name, port in module._ports.items()],
        "signals": [_signal_doc(sig) for sig in module.signals],
        "processes": [_process_doc(proc) for proc in module.processes],
        "hw_objects": hw_objects,
        "children": [_module_doc(child) for child in module.children],
    }


def fingerprint_design(module: Module) -> str:
    """Stable fingerprint of a live design hierarchy.

    Covers everything the synthesizer reads: class sources (via
    :func:`inspect.getsource`, so editing a module class changes the
    fingerprint), template bindings, ports, signal initial values,
    hardware-object construction state, process registrations, and all
    children recursively.
    """
    if not isinstance(module, Module):
        raise StoreError(f"fingerprint_design needs a Module, "
                         f"got {type(module).__name__}")
    return digest_doc(["design/v1", _module_doc(module)])


def fingerprint_rtl(rtl) -> str:
    """Content digest of an RTL module tree (via its serialized form)."""
    from repro.store.serialize import serialize_rtl

    return digest_doc(serialize_rtl(rtl))


def fingerprint_circuit(circuit) -> str:
    """Content digest of a gate-level circuit (via its serialized form)."""
    from repro.store.serialize import serialize_circuit

    return digest_doc(serialize_circuit(circuit))


@lru_cache(maxsize=None)
def stage_version(stage: str) -> str:
    """Digest of the source files implementing *stage*.

    Unknown stages raise :class:`StoreError` — a typo here must never
    silently produce an always-miss (or worse, always-hit) key.
    """
    try:
        entries = _STAGE_SOURCES[stage]
    except KeyError:
        raise StoreError(f"unknown flow stage {stage!r}") from None
    hasher = hashlib.sha256()
    for entry in entries + _COMMON_SOURCES:
        path = _SRC_ROOT / entry
        files = sorted(path.rglob("*.py")) if path.is_dir() else [path]
        for file in files:
            hasher.update(str(file.relative_to(_SRC_ROOT)).encode())
            hasher.update(b"\x00")
            hasher.update(file.read_bytes())
            hasher.update(b"\x00")
    return hasher.hexdigest()


def stage_key(stage: str, *parts: str) -> str:
    """The cache key for one stage invocation.

    ``parts`` are the input fingerprints (design fingerprint or upstream
    artifact digests) — the digest-chaining that makes invalidation
    transitive: a changed design reshuffles every downstream key.
    """
    return digest_doc([STORE_SCHEMA, stage, stage_version(stage),
                       list(parts)])
