"""Shared plumbing of the design library: canonical JSON and digests.

Every artifact the store persists — serialized RTL, netlists, flow
reports — is rendered through :func:`canonical_json` before hashing or
writing, so that byte identity is meaningful: the same design produces
the same bytes in every process, regardless of ``PYTHONHASHSEED`` (keys
are emitted in a fixed, structural order by the serializers; canonical
rendering only pins separators and unicode escaping).  Content addresses
are SHA-256 over those canonical bytes.
"""

from __future__ import annotations

import hashlib
import json
from typing import Any

#: Versioned identifier of the on-disk store layout.
STORE_SCHEMA = "repro-store/v1"


class StoreError(ValueError):
    """Raised for malformed store state or unserializable artifacts.

    The memoization layer treats a :class:`StoreError` surfaced while
    *reading* as a cache miss (graceful recompute); a :class:`StoreError`
    while *writing* is a real error and propagates.
    """


def canonical_json(doc: Any) -> str:
    """Render *doc* as compact, canonical JSON (stable separators)."""
    try:
        return json.dumps(doc, separators=(",", ":"), ensure_ascii=True,
                          allow_nan=False)
    except (TypeError, ValueError) as exc:
        raise StoreError(f"artifact is not JSON-serializable: {exc}") from exc


def digest_bytes(data: bytes) -> str:
    """SHA-256 hex digest of raw bytes (the store's content address)."""
    return hashlib.sha256(data).hexdigest()


def digest_doc(doc: Any) -> str:
    """SHA-256 hex digest of the canonical JSON rendering of *doc*."""
    return digest_bytes(canonical_json(doc).encode("utf-8"))
