"""Memoized flow stages: the glue between flows, store and profiler.

:class:`StageRunner` wraps one stage invocation: compute the stage key
from its input fingerprints, probe the store, and either replay the
cached artifact or run the real compute and persist its result.  Every
path runs inside an :mod:`repro.obs` span carrying ``cache="hit"`` /
``"miss"`` / ``"off"`` metadata, so traces show exactly which stages
were skipped.

Outcomes are **lazy** on a hit: :meth:`StageOutcome.value` deserializes
the artifact only when somebody asks for it, while
:attr:`StageOutcome.digest` is available immediately from the pointer.
This is what makes warm runs fast — a warm ``opt`` stage keys off the
``techmap`` artifact's *digest*, so the multi-megabyte pre-optimization
netlist is never loaded at all.

Corruption discovered at materialization time (bad bytes, a document
the deserializer rejects) falls back to the retained compute thunk:
the artifact is recomputed, re-stored, and the stage's ``corrupt``
counter ticks.  A cache problem can cost time, never correctness.
"""

from __future__ import annotations

from typing import Any, Callable

from repro.obs import NULL_TRACER
from repro.store.cas import ArtifactStore
from repro.store.common import StoreError
from repro.store.fingerprint import stage_key


class StageOutcome:
    """Result handle of one (possibly cached) stage run."""

    __slots__ = ("stage", "hit", "digest", "_value", "_loaded",
                 "_materialize")

    def __init__(self, stage: str, hit: bool, digest: str | None,
                 value: Any = None, loaded: bool = False,
                 materialize: Callable[["StageOutcome"], Any] | None = None,
                 ) -> None:
        self.stage = stage
        self.hit = hit
        self.digest = digest
        self._value = value
        self._loaded = loaded
        self._materialize = materialize

    def value(self) -> Any:
        """The stage's artifact, deserializing (or recomputing) lazily."""
        if not self._loaded:
            self._value = self._materialize(self)
            self._loaded = True
            self._materialize = None
        return self._value


class StageRunner:
    """Runs flow stages through the design library.

    Parameters
    ----------
    store:
        The :class:`ArtifactStore`, or ``None`` to disable caching —
        every stage then computes inline (identical spans, ``cache="off"``).
    tracer:
        An :mod:`repro.obs` tracer; stage spans open on it.
    guard:
        Optional callable invoked with the stage name before any stage
        work (fingerprinting, probe or compute).  Cancellation hook for
        long-lived callers — ``repro serve`` passes a guard that raises
        when the job owning this runner has been cancelled, so a flow
        stops at the next stage boundary instead of running to the end.
    """

    def __init__(self, store: ArtifactStore | None,
                 tracer=NULL_TRACER,
                 guard: Callable[[str], None] | None = None) -> None:
        self.store = store
        self.tracer = tracer
        self.guard = guard

    def run(
        self,
        stage: str,
        parts: "tuple[str, ...] | Callable[[], tuple[str, ...]]",
        compute: Callable[[], Any],
        dump: Callable[[Any], Any],
        load: Callable[[Any], Any],
        lazy: bool = False,
    ) -> StageOutcome:
        """Run *stage* memoized.

        Parameters
        ----------
        stage:
            Stage name (also the span name and counter key).
        parts:
            Input fingerprints; combined with the stage code version
            into the cache key.  May be a zero-argument callable when
            computing the fingerprints is itself stage work (it then
            runs inside the stage span, and not at all with no store).
        compute:
            Produces the live artifact (runs only on a miss, or when a
            hit later turns out corrupt).
        dump / load:
            Serialize the live artifact to a JSON document / rebuild it.
            ``load`` raising :class:`StoreError` triggers recompute.
        lazy:
            On a hit, defer deserialization until ``.value()`` is
            called (the digest is still available immediately).

        The stage span covers everything attributable to the stage:
        key fingerprinting, the store probe, compute *and* the
        serialize-and-store of the result, so profiler traces explain
        cold-run caching overhead stage by stage.
        """
        if self.guard is not None:
            self.guard(stage)
        if self.store is None:
            with self.tracer.span(stage) as span:
                value = compute()
                span.annotate(cache="off")
            return StageOutcome(stage, hit=False, digest=None,
                                value=value, loaded=True)

        with self.tracer.span(stage) as span:
            if callable(parts):
                parts = parts()
            key = stage_key(stage, *parts)
            digest = self.store.probe(stage, key)
            if digest is not None:
                self.store._count("hit", stage)
                span.annotate(cache="hit")
                outcome = StageOutcome(
                    stage, hit=True, digest=digest,
                    materialize=lambda o: self._materialize(o, key, compute,
                                                            dump, load),
                )
                if not lazy:
                    outcome.value()
                return outcome

            self.store._count("miss", stage)
            value = compute()
            span.annotate(cache="miss")
            stored = self.store.store(stage, key, dump(value))
        return StageOutcome(stage, hit=False, digest=stored,
                            value=value, loaded=True)

    def _materialize(self, outcome: StageOutcome, key: str,
                     compute: Callable[[], Any],
                     dump: Callable[[Any], Any],
                     load: Callable[[Any], Any]) -> Any:
        doc = self.store.get_object(outcome.digest)
        if doc is not None:
            try:
                return load(doc)
            except StoreError:
                self.store._discard(
                    self.store._object_path(outcome.digest))
        # Corrupt or vanished: graceful recompute, then heal the store.
        self.store._count("corrupt", outcome.stage)
        value = compute()
        outcome.digest = self.store.store(outcome.stage, key, dump(value))
        outcome.hit = False
        return value
