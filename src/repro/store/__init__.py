"""The design library (paper Fig. 6): a content-addressed artifact store.

Three layers:

* :mod:`repro.store.fingerprint` — canonical, ``PYTHONHASHSEED``-proof
  fingerprints for designs, artifacts and stage code versions;
* :mod:`repro.store.cas` — the on-disk store (atomic writes, advisory
  locking, self-verifying objects, gc/verify maintenance);
* :mod:`repro.store.serialize` — exact round-trip JSON serializers for
  RTL IR, :class:`~repro.netlist.circuit.Circuit` netlists and flow
  reports (the repo's netlist interchange format).

:mod:`repro.store.memo` ties them into memoized flow stages used by
``repro.eval.flows`` and the ``repro build`` / ``repro cache`` CLI.
"""

from repro.store.cas import ArtifactStore
from repro.store.common import STORE_SCHEMA, StoreError, canonical_json, digest_doc
from repro.store.fingerprint import (
    fingerprint_circuit,
    fingerprint_design,
    fingerprint_rtl,
    stage_key,
    stage_version,
)
from repro.store.memo import StageOutcome, StageRunner
from repro.store.serialize import (
    DSE_POINT_SCHEMA,
    DSE_SCHEMA,
    TESTABILITY_SCHEMA,
    deserialize_circuit,
    deserialize_diagnostics,
    deserialize_dse_point,
    deserialize_dse_report,
    deserialize_fault_record,
    deserialize_placement,
    deserialize_rtl,
    deserialize_testability,
    deserialize_timing,
    serialize_circuit,
    serialize_diagnostics,
    serialize_dse_point,
    serialize_dse_report,
    serialize_fault_record,
    serialize_placement,
    serialize_rtl,
    serialize_testability,
    serialize_timing,
)

__all__ = [
    "ArtifactStore",
    "DSE_POINT_SCHEMA",
    "DSE_SCHEMA",
    "STORE_SCHEMA",
    "TESTABILITY_SCHEMA",
    "StageOutcome",
    "StageRunner",
    "StoreError",
    "canonical_json",
    "digest_doc",
    "deserialize_circuit",
    "deserialize_diagnostics",
    "deserialize_dse_point",
    "deserialize_dse_report",
    "deserialize_fault_record",
    "deserialize_placement",
    "deserialize_rtl",
    "deserialize_testability",
    "deserialize_timing",
    "fingerprint_circuit",
    "fingerprint_design",
    "fingerprint_rtl",
    "serialize_circuit",
    "serialize_diagnostics",
    "serialize_dse_point",
    "serialize_dse_report",
    "serialize_fault_record",
    "serialize_placement",
    "serialize_rtl",
    "serialize_testability",
    "serialize_timing",
    "stage_key",
    "stage_version",
]
