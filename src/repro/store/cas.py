"""On-disk content-addressed artifact store.

Layout under the store root::

    store.json                  # {"schema": "repro-store/v1"}
    .lock                       # flock target for cross-process safety
    objects/<aa>/<sha256>.json  # canonical JSON blobs, named by content
    stages/<stage>/<key>.json   # stage-key -> object digest pointers

Objects are *self-verifying*: the filename is the SHA-256 of the file
content, so corruption (truncation, bit rot, partial writes that
somehow survived) is detected on read by rehashing, and the damaged
file is dropped so the caller recomputes.  Pointer files carry the
digest they reference plus the store schema; an unparsable or
mismatched pointer is likewise dropped, never followed.

Concurrency: all writes go through a temp file in the same directory
followed by ``os.replace`` (atomic on POSIX), so readers never observe
a half-written file.  Writers additionally hold a *shared* ``flock`` on
``.lock`` while maintenance operations (:meth:`gc`, :meth:`clear`)
take it *exclusive* — two processes filling the same cache can run
freely in parallel, but gc never deletes an object out from under a
writer who is about to point at it.  Because identical content yields
identical bytes at identical paths, concurrent writers racing on the
same artifact are harmless whichever ``os.replace`` lands last.

The store never raises on a damaged *read* — damage degrades to a miss
and a ``corrupt`` counter tick.  A store root created by a different
(newer) schema raises :class:`StoreError` rather than guessing.
"""

from __future__ import annotations

import json
import os
import tempfile
import threading
import time
from collections import Counter
from pathlib import Path
from typing import Any

from repro.store.common import (
    STORE_SCHEMA,
    StoreError,
    canonical_json,
    digest_bytes,
)

try:
    import fcntl
except ImportError:  # pragma: no cover - non-POSIX platforms
    fcntl = None


#: How long a store operation waits for the advisory lock by default.
DEFAULT_LOCK_TIMEOUT_S = 30.0

_LOCK_RETRY_S = 0.01


class _Lock:
    """Advisory flock on the store's ``.lock`` file (no-op without fcntl).

    Acquisition is bounded: instead of blocking indefinitely behind a
    wedged holder (a client that died with the exclusive lock, an NFS
    hiccup), the lock is retried non-blocking until *timeout_s* runs
    out, then a :class:`StoreError` names the lock file so the caller —
    in particular the long-lived ``repro serve`` daemon — fails one
    request instead of hanging every worker forever.
    """

    def __init__(self, path: Path, exclusive: bool,
                 timeout_s: float | None = DEFAULT_LOCK_TIMEOUT_S) -> None:
        self.path = path
        self.exclusive = exclusive
        self.timeout_s = timeout_s
        self._fd: int | None = None

    def __enter__(self) -> "_Lock":
        if fcntl is None:  # pragma: no cover - non-POSIX platforms
            return self
        fd = os.open(self.path, os.O_RDWR | os.O_CREAT, 0o644)
        flags = fcntl.LOCK_EX if self.exclusive else fcntl.LOCK_SH
        if self.timeout_s is None:
            fcntl.flock(fd, flags)
            self._fd = fd
            return self
        deadline = time.monotonic() + self.timeout_s
        while True:
            try:
                fcntl.flock(fd, flags | fcntl.LOCK_NB)
                self._fd = fd
                return self
            except OSError:
                if time.monotonic() >= deadline:
                    os.close(fd)
                    kind = "exclusive" if self.exclusive else "shared"
                    raise StoreError(
                        f"timed out after {self.timeout_s:.1f}s waiting "
                        f"for the {kind} store lock at {self.path}; "
                        "another process may be holding it wedged"
                    ) from None
                time.sleep(_LOCK_RETRY_S)

    def __exit__(self, *exc: Any) -> None:
        if self._fd is not None:
            fcntl.flock(self._fd, fcntl.LOCK_UN)
            os.close(self._fd)
            self._fd = None


class ArtifactStore:
    """A content-addressed design library rooted at *root*.

    Creating the instance initialises the directory layout and schema
    marker if absent; opening a root written by an unknown schema
    raises :class:`StoreError`.

    *lock_timeout_s* bounds every wait on the advisory ``.lock``: a
    holder wedged past it surfaces as a :class:`StoreError` instead of
    blocking the caller forever (``None`` restores unbounded waits).

    One instance may be shared by many threads: object/pointer I/O is
    already safe (atomic writes, advisory locks) and the in-memory
    ``counters`` increment under an internal lock, so concurrent flow
    stages — the ``repro serve`` scheduler runs many jobs against one
    store — never lose hits or misses to racing read-modify-writes.
    """

    def __init__(self, root: str | Path,
                 lock_timeout_s: float | None = DEFAULT_LOCK_TIMEOUT_S,
                 ) -> None:
        self.root = Path(root)
        self.objects_dir = self.root / "objects"
        self.stages_dir = self.root / "stages"
        self.journals_dir = self.root / "journals"
        self.lock_timeout_s = lock_timeout_s
        self._lock_path = self.root / ".lock"
        self._marker = self.root / "store.json"
        self.counters: dict[str, Counter] = {
            "hit": Counter(), "miss": Counter(),
            "store": Counter(), "corrupt": Counter(),
        }
        self._counter_lock = threading.Lock()
        self.objects_dir.mkdir(parents=True, exist_ok=True)
        self.stages_dir.mkdir(parents=True, exist_ok=True)
        if self._marker.exists():
            try:
                marker = json.loads(self._marker.read_text())
                schema = marker.get("schema")
            except (OSError, ValueError):
                schema = None
            if schema != STORE_SCHEMA:
                raise StoreError(
                    f"store at {self.root} has schema {schema!r}, "
                    f"this build expects {STORE_SCHEMA!r}"
                )
        else:
            self._atomic_write(
                self._marker,
                canonical_json({"schema": STORE_SCHEMA}).encode(),
            )

    # ------------------------------------------------------------------
    # low-level plumbing
    # ------------------------------------------------------------------
    @staticmethod
    def _atomic_write(path: Path, data: bytes) -> None:
        path.parent.mkdir(parents=True, exist_ok=True)
        fd, tmp = tempfile.mkstemp(dir=path.parent, prefix=".tmp-")
        try:
            with os.fdopen(fd, "wb") as handle:
                handle.write(data)
            os.replace(tmp, path)
        except BaseException:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise

    def _object_path(self, digest: str) -> Path:
        return self.objects_dir / digest[:2] / f"{digest}.json"

    def journal_path(self, name: str) -> Path:
        """Where a campaign journal named *name* lives.

        Journals are append-only in-progress state, not artifacts: they
        sit beside the CAS (never inside ``objects/``/``stages/``) so
        :meth:`gc`, :meth:`verify` and :meth:`clear` leave them alone
        while ``--resume`` can find them by campaign tag.
        """
        self.journals_dir.mkdir(parents=True, exist_ok=True)
        return self.journals_dir / f"{name}.jsonl"

    def _pointer_path(self, stage: str, key: str) -> Path:
        return self.stages_dir / stage / f"{key}.json"

    def _count(self, event: str, stage: str) -> None:
        with self._counter_lock:
            self.counters[event][stage] += 1

    def counter_totals(self) -> dict[str, int]:
        """Per-event totals over all stages, read atomically."""
        with self._counter_lock:
            return {event: sum(counter.values())
                    for event, counter in self.counters.items()}

    def _flock(self, exclusive: bool) -> _Lock:
        return _Lock(self._lock_path, exclusive, self.lock_timeout_s)

    # ------------------------------------------------------------------
    # objects
    # ------------------------------------------------------------------
    def put_object(self, doc: Any) -> str:
        """Store *doc* by content; returns its digest.  Idempotent."""
        data = canonical_json(doc).encode("utf-8")
        digest = digest_bytes(data)
        path = self._object_path(digest)
        if not path.exists():
            with self._flock(exclusive=False):
                self._atomic_write(path, data)
        return digest

    def get_object(self, digest: str) -> Any | None:
        """Load an object by digest, verifying its content hash.

        Returns ``None`` (after removing the damaged file) if the blob
        is missing, unreadable, or fails verification — a corrupted
        entry degrades to a recompute, never to a wrong artifact.
        """
        path = self._object_path(digest)
        try:
            data = path.read_bytes()
        except OSError:
            return None
        if digest_bytes(data) != digest:
            self._discard(path)
            return None
        try:
            return json.loads(data)
        except ValueError:
            self._discard(path)
            return None

    @staticmethod
    def _discard(path: Path) -> None:
        try:
            path.unlink()
        except OSError:
            pass

    # ------------------------------------------------------------------
    # stage pointers
    # ------------------------------------------------------------------
    def probe(self, stage: str, key: str) -> str | None:
        """The object digest cached for (*stage*, *key*), if any.

        Only reads the pointer — the object itself is not touched, so
        probing is cheap even for multi-megabyte artifacts.  A damaged
        pointer is dropped and reported as a miss.
        """
        path = self._pointer_path(stage, key)
        try:
            pointer = json.loads(path.read_bytes())
        except OSError:
            return None
        except ValueError:
            self._discard(path)
            self._count("corrupt", stage)
            return None
        if (not isinstance(pointer, dict)
                or pointer.get("schema") != STORE_SCHEMA
                or not isinstance(pointer.get("object"), str)):
            self._discard(path)
            self._count("corrupt", stage)
            return None
        return pointer["object"]

    def put_stage(self, stage: str, key: str, digest: str) -> None:
        """Point (*stage*, *key*) at an already-stored object."""
        pointer = canonical_json(
            {"schema": STORE_SCHEMA, "stage": stage, "object": digest}
        ).encode("utf-8")
        with self._flock(exclusive=False):
            self._atomic_write(self._pointer_path(stage, key), pointer)

    def store(self, stage: str, key: str, doc: Any) -> str:
        """Store an artifact and its stage pointer; returns the digest."""
        digest = self.put_object(doc)
        self.put_stage(stage, key, digest)
        self._count("store", stage)
        return digest

    def load(self, stage: str, key: str) -> Any | None:
        """Pointer probe + verified object load in one step."""
        digest = self.probe(stage, key)
        if digest is None:
            return None
        doc = self.get_object(digest)
        if doc is None:
            self._discard(self._pointer_path(stage, key))
            self._count("corrupt", stage)
        return doc

    # ------------------------------------------------------------------
    # maintenance
    # ------------------------------------------------------------------
    def _iter_pointers(self):
        for stage_dir in sorted(self.stages_dir.iterdir()):
            if stage_dir.is_dir():
                for path in sorted(stage_dir.glob("*.json")):
                    yield stage_dir.name, path

    def _iter_objects(self):
        for shard in sorted(self.objects_dir.iterdir()):
            if shard.is_dir():
                for path in sorted(shard.glob("*.json")):
                    yield path

    def stats(self) -> dict:
        """Entry/object counts and on-disk size of the store."""
        stages: dict[str, int] = {}
        for stage, _path in self._iter_pointers():
            stages[stage] = stages.get(stage, 0) + 1
        objects = list(self._iter_objects())
        return {
            "root": str(self.root),
            "stages": dict(sorted(stages.items())),
            "entries": sum(stages.values()),
            "objects": len(objects),
            "bytes": sum(path.stat().st_size for path in objects),
        }

    def gc(self, max_age_s: float | None = None) -> dict:
        """Drop dangling pointers and unreferenced objects.

        With *max_age_s*, stage pointers untouched for longer are
        expired first; objects no pointer references are then deleted.
        Runs under the exclusive lock so concurrent writers are safe.
        """
        removed_pointers = 0
        removed_objects = 0
        with self._flock(exclusive=True):
            now = time.time()
            live: set[str] = set()
            for stage, path in self._iter_pointers():
                digest = self.probe(stage, path.stem)
                if digest is None:
                    removed_pointers += 1  # probe dropped a corrupt pointer
                    continue
                if ((max_age_s is not None
                        and now - path.stat().st_mtime > max_age_s)
                        or not self._object_path(digest).exists()):
                    self._discard(path)
                    removed_pointers += 1
                else:
                    live.add(digest)
            for path in self._iter_objects():
                if path.stem not in live:
                    self._discard(path)
                    removed_objects += 1
        return {"removed_entries": removed_pointers,
                "removed_objects": removed_objects}

    def verify(self, repair: bool = False) -> dict:
        """Rehash every object and resolve every pointer.

        Returns counts of checked/corrupt objects and checked/dangling
        pointers.  With ``repair=True`` damaged objects and dangling
        pointers are removed (so the next build recomputes them);
        otherwise they are only reported.
        """
        objects = corrupt = 0
        for path in self._iter_objects():
            objects += 1
            data = path.read_bytes()
            if digest_bytes(data) != path.stem:
                corrupt += 1
                if repair:
                    self._discard(path)
        pointers = dangling = 0
        for stage, path in self._iter_pointers():
            pointers += 1
            digest = self.probe(stage, path.stem)
            bad = digest is None or not self._object_path(digest).exists()
            if digest is None:
                dangling += 1  # probe already dropped the corrupt pointer
            elif bad:
                dangling += 1
                if repair:
                    self._discard(path)
        return {"objects": objects, "corrupt_objects": corrupt,
                "entries": pointers, "dangling_entries": dangling,
                "ok": corrupt == 0 and dangling == 0}

    def clear(self) -> None:
        """Remove every object and pointer (the ``--cold`` path)."""
        with self._flock(exclusive=True):
            for _stage, path in self._iter_pointers():
                self._discard(path)
            for path in self._iter_objects():
                self._discard(path)

    def __repr__(self) -> str:
        return f"ArtifactStore({str(self.root)!r})"
