"""Non-invasive fault-injection hooks for both simulators.

The fault-free simulators stay untouched on their hot paths: RTL
injection goes through the public ``registers``/``register_value``/
``poke_register`` accessors of :class:`~repro.rtl.simulate.RtlSimulator`,
and gate-level injection subclasses :class:`~repro.netlist.sim
.GateSimulator` to clamp *forced* (stuck-at) nets at the three points
where net values are written — input drive, combinational evaluation and
flop commit.

Both injectors speak the same small protocol the campaign engine
(:mod:`repro.fault.campaign`) consumes:

``step(entry)``            advance one cycle, return the outputs;
``snapshot()/restore(s)``  checkpoint and rewind simulator state;
``inject(fault)``          apply one :class:`~repro.fault.campaign.Fault`;
``clear_faults()``         release stuck-at forcing;
``seu_targets()``          deterministic ``(name, width)`` state bits;
``net_targets()``          deterministic net names for stuck-at/transient
                           faults (empty at RTL level).
"""

from __future__ import annotations

from typing import Mapping

from repro.netlist.circuit import Circuit, Net, NetlistError
from repro.netlist.sim import GateSimulator
from repro.rtl.ir import Register, RtlError
from repro.rtl.simulate import RtlSimulator


class FaultInjectionError(ValueError):
    """Raised for ill-formed faults (unknown target, bad bit index...)."""


def _unique_names(pairs):
    """Disambiguate duplicate names with ``#k``, then sort by name.

    The sort matters: register/net collection order can vary across
    *processes* (hash-randomized iteration inside the synthesis flow),
    and fault targets are addressed by name so that seeded fault lists
    — and hence campaign reports — are byte-identical between runs.
    """
    seen: dict[str, int] = {}
    result = []
    for name, payload in pairs:
        count = seen.get(name, 0)
        seen[name] = count + 1
        result.append((name if count == 0 else f"{name}#{count}", payload))
    result.sort(key=lambda pair: pair[0])
    return result


# ======================================================================
# RTL level
# ======================================================================
class RtlFaultInjector:
    """SEU injection on :class:`RtlSimulator` register state."""

    flow = "rtl"

    def __init__(self, sim: RtlSimulator) -> None:
        self.sim = sim
        self._by_name: dict[str, Register] = dict(
            _unique_names((reg.name, reg) for reg in sim.registers())
        )

    # -- campaign protocol --------------------------------------------
    def step(self, entry: Mapping[str, int]) -> dict[str, int]:
        return self.sim.step(**dict(entry))

    def snapshot(self) -> tuple:
        return (dict(self.sim.state), self.sim.cycle, dict(self.sim._inputs))

    def restore(self, snap: tuple) -> None:
        state, cycle, inputs = snap
        self.sim.state = dict(state)
        self.sim.cycle = cycle
        self.sim._inputs = dict(inputs)

    def seu_targets(self) -> list[tuple[str, int]]:
        return [(name, reg.spec.width)
                for name, reg in self._by_name.items()]

    def net_targets(self) -> list[str]:
        return []

    def fault_collapse_map(self) -> dict[tuple[str, str], tuple[str, str]]:
        """No structural collapsing at RTL level (no gate graph)."""
        return {}

    def inject(self, fault) -> None:
        if fault.kind != "seu":
            raise FaultInjectionError(
                f"RTL injection supports 'seu' faults only, got "
                f"{fault.kind!r}"
            )
        self.flip_register(fault.target, fault.bit)

    def clear_faults(self) -> None:
        """SEUs are one-shot state flips; nothing persists."""

    # -- direct API ----------------------------------------------------
    def flip_register(self, name: str, bit: int) -> int:
        """Flip one bit of a register; returns the new raw contents."""
        reg = self._by_name.get(name)
        if reg is None:
            raise FaultInjectionError(f"no register named {name!r}")
        if not 0 <= bit < reg.spec.width:
            raise FaultInjectionError(
                f"bit {bit} out of range for {name!r} "
                f"(width {reg.spec.width})"
            )
        raw = self.sim.register_value(reg) ^ (1 << bit)
        self.sim.poke_register(reg, raw)
        return raw


# ======================================================================
# gate level
# ======================================================================
class FaultableGateSimulator(GateSimulator):
    """Gate simulator with stuck-at forcing and transient net flips.

    Forced nets are clamped at the three points where the base simulator
    writes net values — input drive, combinational evaluation and flop
    commit — under *every* evaluation backend: the event engine clamps
    in ``_eval``/``drive``/the commit loop, the compiled engine runs its
    generated ``settle_forced`` variant and re-applies the clamps after
    the generated commit, and the bitparallel engine does the same with
    per-slot ``(keep, value)`` lane masks so each lane can hold its own
    stuck-at fault (:meth:`force_net_lane`).  The fault-free hot path is
    untouched because clamping only happens in this subclass, and only
    while a force is active.  Forced slots are keyed by value-list slot
    (see :class:`~repro.netlist.sim.GateSimulator`).

    Transient flips (:meth:`flip_net`) on combinational or input nets
    are *one-cycle* glitches: the inverted value is clamped through
    exactly one following step — so the flops sample it once — and
    healed before the next cycle.  The clamp makes the semantics
    backend-uniform; previously the event engine let a glitch persist
    until the driver's cone next changed while a compiled settle healed
    it before anything sampled it, so the same transient fault could
    classify differently (or on the final stimulus cycle be dropped
    outright / act stuck through the drain) depending on the backend.
    Flop-output flips are state upsets and persist until the next
    commit overwrites them, identically under every backend.
    """

    #: Lane steps with an unchanged force set before the wide engine
    #: recompiles the settle with the clamps baked in as literals
    #: (:meth:`~repro.netlist.sim._CompiledEngine.specialize_forced`).
    #: High enough that the stimulus phase, where lanes activate every
    #: few cycles, almost never compiles; low enough that a long drain
    #: amortizes the one-time compile within a few dozen steps.
    SPEC_AFTER = 32

    def __init__(self, circuit: Circuit, backend: str = "event") -> None:
        # Before super().__init__: the base constructor settles the
        # circuit through our clamped _eval, which reads these.
        self._forced: dict[int, int] = {}
        #: bitparallel: slot -> (keep, value) lane masks; the settled
        #: expression becomes ``expr & keep | value``.
        self._force_masks: dict[int, tuple[int, int]] = {}
        #: One-cycle transient clamps: slot -> glitch value, healed
        #: after the next committed step.
        self._transient: dict[int, int] = {}
        #: Wide-settle specialization state: once the same force set has
        #: been lane-stepped SPEC_AFTER times in a row, the engine
        #: recompiles the settle with the clamps baked in as literals.
        self._forces_version = 0
        self._spec_version = -1
        self._spec_streak = 0
        self._spec_settle = None
        super().__init__(circuit, backend=backend)
        self._flop_q_set = frozenset(self._flop_q)
        self._in_bit: dict[int, tuple[str, int]] = {
            net_slot: (name, k)
            for name, slots in self._in_slots.items()
            for k, net_slot in enumerate(slots)
        }

    def _slot_of(self, net: Net) -> int:
        net_slot = self._slot.get(net.uid)
        if net_slot is None:
            raise FaultInjectionError(
                f"net {net.name!r} does not belong to circuit "
                f"{self.circuit.name!r}"
            )
        if net.uid in self._const_uids:
            raise NetlistError(
                f"refusing to fault constant net {net.name!r}: it is "
                "shared by every cell consuming that constant, so "
                "forcing or flipping it would corrupt unrelated logic; "
                "target the consuming cells' output nets instead"
            )
        return net_slot

    # -- forcing -------------------------------------------------------
    def _any_fault(self) -> bool:
        return bool(self._forced or self._force_masks or self._transient)

    def _scalar_forces(self) -> dict[int, int]:
        """The slot clamps for the scalar generated ``settle_forced``."""
        if self._transient:
            return {**self._transient, **self._forced}
        return self._forced

    def _lane_forces(self) -> dict[int, tuple[int, int]]:
        """The ``(keep, value)`` clamps for the wide ``settle_forced``."""
        if self._transient:
            forces = {net_slot: (0, glitch)
                      for net_slot, glitch in self._transient.items()}
            forces.update(self._force_masks)
            return forces
        return self._force_masks

    def force_net(self, net: Net, value: int) -> None:
        """Stuck-at: hold *net* at *value* until :meth:`release_all`."""
        net_slot = self._slot_of(net)
        self._ensure_settled()
        value &= 1
        self._forced[net_slot] = value
        self._forces_version += 1
        if self.backend == "bitparallel":
            self._force_masks[net_slot] = (0, value and self._lane_mask)
        if self._values[net_slot] != value:
            self._values[net_slot] = value
            if self._compiled is not None:
                self._stale = True
            else:
                self._propagate([net_slot])

    def force_net_lane(self, net: Net, value: int, lane: int) -> None:
        """Stuck-at in one lane of a lane-parallel (bitparallel) run.

        The lane's bit of *net* is clamped to *value* through drive,
        settle and commit while the other lanes evaluate freely; the
        clamp also applies immediately so a forced flop output diverges
        in its injection cycle exactly like a scalar :meth:`force_net`.
        """
        net_slot = self._slot_of(net)
        if not 0 <= lane < self._lanes:
            raise FaultInjectionError(
                f"lane {lane} outside the {self._lanes} active lane(s)"
            )
        bit = 1 << lane
        value_bit = bit if value & 1 else 0
        keep, val = self._force_masks.get(net_slot,
                                          (self._lane_mask, 0))
        self._force_masks[net_slot] = (keep & ~bit, val & ~bit | value_bit)
        self._forces_version += 1
        self._values[net_slot] = self._values[net_slot] & ~bit | value_bit
        self._stale = True

    def flip_net(self, net: Net) -> None:
        """Transient upset: invert the current value of *net* once.

        Flop outputs (a state SEU) stay inverted until the next clock
        commit overwrites them.  Combinational and input nets glitch for
        exactly one cycle: the inverted value is clamped through the
        next step — surviving that step's input drive and settle, so the
        flops sample it once — and healed before the following cycle.
        Identical under every backend (see the class docstring).
        """
        net_slot = self._slot_of(net)
        self._ensure_settled()
        glitch = self._values[net_slot] ^ 1
        if net_slot not in self._flop_q_set:
            self._transient[net_slot] = glitch
            self._forces_version += 1
        self._values[net_slot] = glitch
        if self._compiled is not None:
            self._stale = True
        else:
            self._propagate([net_slot])

    def release_all(self) -> None:
        """Remove every force and pending glitch; re-settle the circuit."""
        if not self._any_fault():
            return
        self._restore_glitched_inputs()
        self._forced.clear()
        self._force_masks.clear()
        self._transient.clear()
        self._forces_version += 1
        # Recompute from scratch: forced values may have latched into
        # arbitrary downstream state, so settle every cell once.  Flop
        # contents corrupted while the force was active stay corrupted —
        # removing a physical fault does not repair the state it caused.
        self._settle_all()

    def _restore_glitched_inputs(self) -> None:
        """Put glitched primary-input slots back to their driven bits.

        A settle only recomputes cell outputs, so a transient on an
        input net must be healed from the stored bus values.
        """
        values = self._values
        for net_slot in self._transient:
            in_bit = self._in_bit.get(net_slot)
            if in_bit is not None:
                name, k = in_bit
                values[net_slot] = \
                    (self._inputs[name] >> k) & 1 and self._lane_mask

    def _heal_transients(self) -> None:
        """End-of-step healing: one-cycle glitches expire here."""
        self._restore_glitched_inputs()
        self._transient.clear()
        self._forces_version += 1
        if self._compiled is not None:
            self._stale = True
        else:
            self._settle_all()

    # -- clamped write points -----------------------------------------
    def _settle_all(self) -> None:
        if self._compiled is not None and self._any_fault():
            self._n_settles += 1
            if self.backend == "bitparallel":
                self._compiled.settle_forced(self._values,
                                             self._lane_forces())
            else:
                self._compiled.settle_forced(self._values,
                                             self._scalar_forces())
            self._stale = False
            return
        super()._settle_all()

    def _eval(self, cell) -> bool:
        out = self._cell_out[cell.uid]
        forced = self._forced.get(out)
        if forced is None:
            forced = self._transient.get(out)
        if forced is not None:
            if self._values[out] == forced:
                return False
            self._values[out] = forced
            return True
        return super()._eval(cell)

    def drive(self, **buses: int) -> list[int]:
        dirty = super().drive(**buses)
        values = self._values
        if self._transient:  # forces win over glitches, so clamp first
            for net_slot, glitch in self._transient.items():
                if values[net_slot] != glitch:
                    values[net_slot] = glitch
                    dirty.append(net_slot)
        if self.backend == "bitparallel":
            for net_slot, (keep, val) in self._force_masks.items():
                clamped = values[net_slot] & keep | val
                if values[net_slot] != clamped:
                    values[net_slot] = clamped
                    dirty.append(net_slot)
        elif self._forced:
            for net_slot, value in self._forced.items():
                if values[net_slot] != value:
                    values[net_slot] = value
                    dirty.append(net_slot)
        return dirty

    def _step_event(self, buses) -> dict[str, int]:
        if not self._any_fault():
            return super()._step_event(buses)
        dirty = self.drive(**buses)
        if dirty:
            self._propagate(dirty)
        outputs = self.peek_outputs()
        values = self._values
        forced = self._forced
        sampled = [values[d] for d in self._flop_d]
        changed: list[int] = []
        for q, d_value in zip(self._flop_q, sampled):
            d_value = forced.get(q, d_value)
            if values[q] != d_value:
                values[q] = d_value
                changed.append(q)
        if changed:
            self._propagate(changed)
        self.cycle += 1
        if self._transient:
            self._heal_transients()
        return outputs

    def _step_compiled(self, buses) -> dict[str, int]:
        if not self._any_fault():
            return super()._step_compiled(buses)
        self.drive(**buses)  # re-applies input clamps
        engine = self._compiled
        values = self._values
        if self.backend == "bitparallel":
            engine.settle_forced(values, self._lane_forces())
        else:
            engine.settle_forced(values, self._scalar_forces())
        self._n_settles += 1
        outputs = engine.peek(values)
        engine.commit(values)
        self._n_fast_commits += 1
        if self.backend == "bitparallel":  # clamp committed flops
            for net_slot, (keep, val) in self._force_masks.items():
                values[net_slot] = values[net_slot] & keep | val
        else:
            for net_slot, value in self._forced.items():
                values[net_slot] = value
        self._stale = True
        self.cycle += 1
        if self._transient:
            self._heal_transients()
        return outputs

    def restore_state(self, snap: tuple) -> None:
        self._forced.clear()
        self._force_masks.clear()
        self._transient.clear()
        self._forces_version += 1
        super().restore_state(snap)

    # -- lane-parallel stepping (bitparallel backend) ------------------
    def begin_lanes(self, n: int) -> None:
        if self._any_fault():
            raise NetlistError(
                "begin_lanes() needs a fault-free scalar state; release "
                "forces before widening"
            )
        super().begin_lanes(n)

    def step_lanes(self, entry: Mapping[str, int]) -> None:
        """Lane step, phase 1: drive the stimulus and settle all lanes.

        Leaves the simulator in the *pre-commit* observation state the
        scalar step samples its outputs from; read the lane reducers
        (:meth:`lanes_output_diff` & co.), then :meth:`commit_lanes`.
        ``step_hooks`` are not called — lane-packed values would corrupt
        a VCD trace.
        """
        if self._lanes == 1:
            raise NetlistError("step_lanes() needs begin_lanes() first")
        self.drive(**dict(entry))
        forces = self._lane_forces()
        if forces:
            if self._spec_version != self._forces_version:
                self._spec_version = self._forces_version
                self._spec_streak = 0
                self._spec_settle = None
            if self._spec_settle is not None:
                self._spec_settle(self._values)
            else:
                self._compiled.settle_forced(self._values, forces)
                self._spec_streak += 1
                if self._spec_streak >= self.SPEC_AFTER:
                    self._spec_settle = (
                        self._compiled.specialize_forced(forces)
                    )
        else:
            self._compiled.settle(self._values)
        self._n_settles += 1

    def commit_lanes(self) -> None:
        """Lane step, phase 2: flop commit plus post-commit clamps."""
        if self._lanes == 1:
            raise NetlistError("commit_lanes() needs begin_lanes() first")
        values = self._values
        self._compiled.commit(values)
        self._n_fast_commits += 1
        for net_slot, (keep, val) in self._force_masks.items():
            values[net_slot] = values[net_slot] & keep | val
        self._stale = True
        self.cycle += 1
        self._n_steps += 1

    # -- lane reducers (read between step_lanes and commit_lanes) ------
    def lanes_output_diff(self, reference: Mapping[str, int],
                          names) -> int:
        """Bitmask of lanes whose named outputs differ from *reference*."""
        values = self._values
        mask = self._lane_mask
        acc = 0
        for name in names:
            ref = reference.get(name) or 0
            for k, net_slot in enumerate(self._out_slots.get(name, ())):
                if (ref >> k) & 1:
                    acc |= mask ^ values[net_slot]
                else:
                    acc |= values[net_slot]
        return acc

    def lanes_detect_rise(self, reference: Mapping[str, int],
                          signals) -> int:
        """Bitmask of lanes where a detect signal rose above *reference*.

        Mirrors the scalar classifier's ``sample and not reference``: a
        signal whose golden reference is already truthy cannot rise.
        """
        values = self._values
        acc = 0
        for sig in signals:
            if reference.get(sig):
                continue
            for net_slot in self._out_slots.get(sig, ()):
                acc |= values[net_slot]
        return acc

    def lanes_done(self, done_signal: str, done_value: int) -> int:
        """Bitmask of lanes whose done-signal equals *done_value*."""
        slots = self._out_slots.get(done_signal)
        if slots is None or done_value >> len(slots):
            return 0
        values = self._values
        mask = self._lane_mask
        eq = mask
        for k, net_slot in enumerate(slots):
            if (done_value >> k) & 1:
                eq &= values[net_slot]
            else:
                eq &= mask ^ values[net_slot]
        return eq

    def lane_state_snapshot(self) -> list[int]:
        """Copy of the wide slot state, for steady-state cycle detection.

        After :meth:`commit_lanes` the slot values (with the constant
        forcing masks) fully determine every future lane value under a
        fixed input, so two equal snapshots imply identical evolution
        forever — the basis of the batch drain's periodicity shortcut.
        """
        return list(self._values)

    def lane_state_matches(self, snapshot: list[int]) -> bool:
        """Exact equality against a :meth:`lane_state_snapshot` copy."""
        return self._values == snapshot


class GateFaultInjector:
    """Campaign adapter for :class:`FaultableGateSimulator`.

    SEUs target flop output (state) bits; stuck-at-0/1 and transient
    flips target combinational cell outputs and primary inputs.
    """

    flow = "netlist"

    def __init__(self, sim: FaultableGateSimulator) -> None:
        if not isinstance(sim, FaultableGateSimulator):
            raise TypeError("GateFaultInjector needs a FaultableGateSimulator")
        self.sim = sim
        circuit = sim.circuit
        self._state_nets: dict[str, Net] = dict(_unique_names(
            (flop.pins["q"].name, flop.pins["q"]) for flop in circuit.flops()
        ))
        comb_outs = [
            (cell.pins[cell.ctype.outputs[0]].name,
             cell.pins[cell.ctype.outputs[0]])
            for cell in circuit.comb_cells()
            if not cell.ctype.name.startswith("TIE")
        ]
        primary = [
            (net.name, net)
            for nets in circuit.input_buses.values() for net in nets
        ]
        self._comb_nets: dict[str, Net] = dict(
            _unique_names(comb_outs + primary)
        )

    # -- campaign protocol --------------------------------------------
    def step(self, entry: Mapping[str, int]) -> dict[str, int]:
        return self.sim.step(**dict(entry))

    def snapshot(self) -> tuple:
        return self.sim.snapshot_state()

    def restore(self, snap: tuple) -> None:
        # FaultableGateSimulator.restore_state also releases any active
        # stuck-at forcing before rewinding the value store.
        self.sim.restore_state(snap)

    def seu_targets(self) -> list[tuple[str, int]]:
        return [(name, 1) for name in self._state_nets]

    def net_targets(self) -> list[str]:
        return list(self._comb_nets)

    def addressable_nets(self) -> dict[str, Net]:
        """Target name → the net :meth:`inject` would resolve it to.

        Mirrors the lookup precedence of :meth:`inject` for stuck-at and
        flip faults — combinational names shadow state names — so the
        quiescence profiler and the fault-collapsing canonicalizer
        reason about exactly the nets a campaign would clamp.
        """
        nets = dict(self._state_nets)
        nets.update(self._comb_nets)
        return nets

    def fault_collapse_map(self) -> dict[tuple[str, str], tuple[str, str]]:
        """``(target, kind)`` → equivalent representative ``(target, kind)``.

        Built from the structural equivalence classes of
        :func:`repro.analyze.netlist.collapse_faults`: members of one
        class force identical circuit behavior, so the campaign engine
        simulates the representative and copies its record to the
        others.  Representatives are the lexicographic minimum of each
        class so the choice is deterministic across processes.  Class
        members whose net is not addressable by name (shadowed by a
        duplicate) are left out — they must be simulated directly.
        Computed once per injector and cached.
        """
        cached = getattr(self, "_collapse_map", None)
        if cached is not None:
            return cached
        from repro.analyze.netlist import collapse_faults

        name_of: dict[int, str] = {
            net.uid: name for name, net in self.addressable_nets().items()
        }
        mapping: dict[tuple[str, str], tuple[str, str]] = {}
        equivalence = collapse_faults(self.sim.circuit).equivalence
        for members in equivalence.classes().values():
            named = sorted(
                (name_of[uid], kind)
                for uid, kind in members if uid in name_of
            )
            if len(named) < 2:
                continue
            rep = named[0]
            for member in named[1:]:
                mapping[member] = rep
        self._collapse_map = mapping
        return mapping

    def inject(self, fault) -> None:
        if fault.kind == "seu":
            net = self._state_nets.get(fault.target)
            if net is None:
                raise FaultInjectionError(
                    f"no state (flop output) net named {fault.target!r}"
                )
            self.sim.flip_net(net)
            return
        net = self._comb_nets.get(fault.target) \
            or self._state_nets.get(fault.target)
        if net is None:
            raise FaultInjectionError(f"no net named {fault.target!r}")
        if fault.kind == "sa0":
            self.sim.force_net(net, 0)
        elif fault.kind == "sa1":
            self.sim.force_net(net, 1)
        elif fault.kind == "flip":
            self.sim.flip_net(net)
        else:
            raise FaultInjectionError(f"unknown fault kind {fault.kind!r}")

    def clear_faults(self) -> None:
        self.sim.release_all()

    # -- lane-parallel (PPSFP) surface --------------------------------
    @property
    def lane_capacity(self) -> int:
        """Stuck-at faults one lane-parallel pass can carry (0 = none)."""
        if self.sim.backend == "bitparallel":
            return self.sim.LANE_CAPACITY
        return 0

    def resolve_stuck(self, fault) -> Net:
        """The net a stuck-at *fault* clamps, validated like inject().

        Raises exactly where :meth:`inject` would — unknown targets,
        constant nets — so the campaign scheduler can divert unpackable
        faults to the scalar path up front.
        """
        if fault.kind not in ("sa0", "sa1"):
            raise FaultInjectionError(
                f"only stuck-at faults pack into lanes, got {fault.kind!r}"
            )
        net = self._comb_nets.get(fault.target) \
            or self._state_nets.get(fault.target)
        if net is None:
            raise FaultInjectionError(f"no net named {fault.target!r}")
        self.sim._slot_of(net)  # rejects constant nets
        return net

    def begin_lanes(self, n: int) -> None:
        self.sim.begin_lanes(n)

    def end_lanes(self) -> None:
        self.sim.end_lanes()

    def force_lane(self, fault, lane: int) -> None:
        """Apply one stuck-at fault to one lane."""
        net = self.resolve_stuck(fault)
        self.sim.force_net_lane(net, 1 if fault.kind == "sa1" else 0, lane)

    def step_lanes(self, entry: Mapping[str, int]) -> None:
        self.sim.step_lanes(entry)

    def commit_lanes(self) -> None:
        self.sim.commit_lanes()

    def lanes_output_diff(self, reference, names) -> int:
        return self.sim.lanes_output_diff(reference, names)

    def lanes_detect_rise(self, reference, signals) -> int:
        return self.sim.lanes_detect_rise(reference, signals)

    def lanes_done(self, done_signal, done_value) -> int:
        return self.sim.lanes_done(done_signal, done_value)

    def lane_state_snapshot(self) -> list[int]:
        return self.sim.lane_state_snapshot()

    def lane_state_matches(self, snapshot) -> bool:
        return self.sim.lane_state_matches(snapshot)
