"""Non-invasive fault-injection hooks for both simulators.

The fault-free simulators stay untouched on their hot paths: RTL
injection goes through the public ``registers``/``register_value``/
``poke_register`` accessors of :class:`~repro.rtl.simulate.RtlSimulator`,
and gate-level injection subclasses :class:`~repro.netlist.sim
.GateSimulator` to clamp *forced* (stuck-at) nets at the three points
where net values are written — input drive, combinational evaluation and
flop commit.

Both injectors speak the same small protocol the campaign engine
(:mod:`repro.fault.campaign`) consumes:

``step(entry)``            advance one cycle, return the outputs;
``snapshot()/restore(s)``  checkpoint and rewind simulator state;
``inject(fault)``          apply one :class:`~repro.fault.campaign.Fault`;
``clear_faults()``         release stuck-at forcing;
``seu_targets()``          deterministic ``(name, width)`` state bits;
``net_targets()``          deterministic net names for stuck-at/transient
                           faults (empty at RTL level).
"""

from __future__ import annotations

from typing import Mapping

from repro.netlist.circuit import Circuit, Net, NetlistError
from repro.netlist.sim import GateSimulator
from repro.rtl.ir import Register, RtlError
from repro.rtl.simulate import RtlSimulator


class FaultInjectionError(ValueError):
    """Raised for ill-formed faults (unknown target, bad bit index...)."""


def _unique_names(pairs):
    """Disambiguate duplicate names with ``#k``, then sort by name.

    The sort matters: register/net collection order can vary across
    *processes* (hash-randomized iteration inside the synthesis flow),
    and fault targets are addressed by name so that seeded fault lists
    — and hence campaign reports — are byte-identical between runs.
    """
    seen: dict[str, int] = {}
    result = []
    for name, payload in pairs:
        count = seen.get(name, 0)
        seen[name] = count + 1
        result.append((name if count == 0 else f"{name}#{count}", payload))
    result.sort(key=lambda pair: pair[0])
    return result


# ======================================================================
# RTL level
# ======================================================================
class RtlFaultInjector:
    """SEU injection on :class:`RtlSimulator` register state."""

    flow = "rtl"

    def __init__(self, sim: RtlSimulator) -> None:
        self.sim = sim
        self._by_name: dict[str, Register] = dict(
            _unique_names((reg.name, reg) for reg in sim.registers())
        )

    # -- campaign protocol --------------------------------------------
    def step(self, entry: Mapping[str, int]) -> dict[str, int]:
        return self.sim.step(**dict(entry))

    def snapshot(self) -> tuple:
        return (dict(self.sim.state), self.sim.cycle, dict(self.sim._inputs))

    def restore(self, snap: tuple) -> None:
        state, cycle, inputs = snap
        self.sim.state = dict(state)
        self.sim.cycle = cycle
        self.sim._inputs = dict(inputs)

    def seu_targets(self) -> list[tuple[str, int]]:
        return [(name, reg.spec.width)
                for name, reg in self._by_name.items()]

    def net_targets(self) -> list[str]:
        return []

    def fault_collapse_map(self) -> dict[tuple[str, str], tuple[str, str]]:
        """No structural collapsing at RTL level (no gate graph)."""
        return {}

    def inject(self, fault) -> None:
        if fault.kind != "seu":
            raise FaultInjectionError(
                f"RTL injection supports 'seu' faults only, got "
                f"{fault.kind!r}"
            )
        self.flip_register(fault.target, fault.bit)

    def clear_faults(self) -> None:
        """SEUs are one-shot state flips; nothing persists."""

    # -- direct API ----------------------------------------------------
    def flip_register(self, name: str, bit: int) -> int:
        """Flip one bit of a register; returns the new raw contents."""
        reg = self._by_name.get(name)
        if reg is None:
            raise FaultInjectionError(f"no register named {name!r}")
        if not 0 <= bit < reg.spec.width:
            raise FaultInjectionError(
                f"bit {bit} out of range for {name!r} "
                f"(width {reg.spec.width})"
            )
        raw = self.sim.register_value(reg) ^ (1 << bit)
        self.sim.poke_register(reg, raw)
        return raw


# ======================================================================
# gate level
# ======================================================================
class FaultableGateSimulator(GateSimulator):
    """Gate simulator with stuck-at forcing and transient net flips.

    Forced nets are clamped at the three points where the base simulator
    writes net values — input drive, combinational evaluation and flop
    commit — under *both* evaluation backends: the event engine clamps
    in ``_eval``/``drive``/the commit loop, the compiled engine runs its
    generated ``settle_forced`` variant and re-applies the clamps after
    the generated commit.  The fault-free hot path is untouched because
    clamping only happens in this subclass, and only while a force is
    active.  Forced slots are keyed by value-list slot (see
    :class:`~repro.netlist.sim.GateSimulator`).
    """

    def __init__(self, circuit: Circuit, backend: str = "event") -> None:
        # Before super().__init__: the base constructor settles the
        # circuit through our clamped _eval, which reads _forced.
        self._forced: dict[int, int] = {}
        super().__init__(circuit, backend=backend)

    def _slot_of(self, net: Net) -> int:
        net_slot = self._slot.get(net.uid)
        if net_slot is None:
            raise FaultInjectionError(
                f"net {net.name!r} does not belong to circuit "
                f"{self.circuit.name!r}"
            )
        if net.uid in self._const_uids:
            raise NetlistError(
                f"refusing to fault constant net {net.name!r}: it is "
                "shared by every cell consuming that constant, so "
                "forcing or flipping it would corrupt unrelated logic; "
                "target the consuming cells' output nets instead"
            )
        return net_slot

    # -- forcing -------------------------------------------------------
    def force_net(self, net: Net, value: int) -> None:
        """Stuck-at: hold *net* at *value* until :meth:`release_all`."""
        net_slot = self._slot_of(net)
        self._ensure_settled()
        value &= 1
        self._forced[net_slot] = value
        if self._values[net_slot] != value:
            self._values[net_slot] = value
            self._propagate([net_slot])

    def flip_net(self, net: Net) -> None:
        """Transient upset: invert the current value of *net* once.

        The glitch persists until the driving cell is next re-evaluated:
        for flop outputs (a state SEU) that is the next clock commit
        under either backend; for combinational nets the event backend
        heals the glitch when the driver's cone next changes, while the
        compiled backend's full re-settle heals it at the next step.
        """
        net_slot = self._slot_of(net)
        self._ensure_settled()
        self._values[net_slot] ^= 1
        self._propagate([net_slot])

    def release_all(self) -> None:
        """Remove every stuck-at force and re-settle the circuit."""
        if not self._forced:
            return
        self._forced.clear()
        # Recompute from scratch: forced values may have latched into
        # arbitrary downstream state, so settle every cell once.  Flop
        # contents corrupted while the force was active stay corrupted —
        # removing a physical fault does not repair the state it caused.
        self._settle_all()

    # -- clamped write points -----------------------------------------
    def _settle_all(self) -> None:
        if self._compiled is not None and self._forced:
            self._n_settles += 1
            self._compiled.settle_forced(self._values, self._forced)
            self._stale = False
            return
        super()._settle_all()

    def _eval(self, cell) -> bool:
        out = self._cell_out[cell.uid]
        forced = self._forced.get(out)
        if forced is not None:
            if self._values[out] == forced:
                return False
            self._values[out] = forced
            return True
        return super()._eval(cell)

    def drive(self, **buses: int) -> list[int]:
        dirty = super().drive(**buses)
        if self._forced:
            for net_slot, value in self._forced.items():
                if self._values[net_slot] != value:
                    self._values[net_slot] = value
                    dirty.append(net_slot)
        return dirty

    def _step_event(self, buses) -> dict[str, int]:
        if not self._forced:
            return super()._step_event(buses)
        dirty = self.drive(**buses)
        if dirty:
            self._propagate(dirty)
        outputs = self.peek_outputs()
        values = self._values
        forced = self._forced
        sampled = [values[d] for d in self._flop_d]
        changed: list[int] = []
        for q, d_value in zip(self._flop_q, sampled):
            d_value = forced.get(q, d_value)
            if values[q] != d_value:
                values[q] = d_value
                changed.append(q)
        if changed:
            self._propagate(changed)
        self.cycle += 1
        return outputs

    def _step_compiled(self, buses) -> dict[str, int]:
        if not self._forced:
            return super()._step_compiled(buses)
        self.drive(**buses)  # re-applies input clamps
        engine = self._compiled
        values = self._values
        forced = self._forced
        engine.settle_forced(values, forced)
        self._n_settles += 1
        outputs = engine.peek(values)
        engine.commit(values)
        self._n_fast_commits += 1
        for net_slot, value in forced.items():  # clamp committed flops
            values[net_slot] = value
        self._stale = True
        self.cycle += 1
        return outputs

    def restore_state(self, snap: tuple) -> None:
        self._forced.clear()
        super().restore_state(snap)


class GateFaultInjector:
    """Campaign adapter for :class:`FaultableGateSimulator`.

    SEUs target flop output (state) bits; stuck-at-0/1 and transient
    flips target combinational cell outputs and primary inputs.
    """

    flow = "netlist"

    def __init__(self, sim: FaultableGateSimulator) -> None:
        if not isinstance(sim, FaultableGateSimulator):
            raise TypeError("GateFaultInjector needs a FaultableGateSimulator")
        self.sim = sim
        circuit = sim.circuit
        self._state_nets: dict[str, Net] = dict(_unique_names(
            (flop.pins["q"].name, flop.pins["q"]) for flop in circuit.flops()
        ))
        comb_outs = [
            (cell.pins[cell.ctype.outputs[0]].name,
             cell.pins[cell.ctype.outputs[0]])
            for cell in circuit.comb_cells()
            if not cell.ctype.name.startswith("TIE")
        ]
        primary = [
            (net.name, net)
            for nets in circuit.input_buses.values() for net in nets
        ]
        self._comb_nets: dict[str, Net] = dict(
            _unique_names(comb_outs + primary)
        )

    # -- campaign protocol --------------------------------------------
    def step(self, entry: Mapping[str, int]) -> dict[str, int]:
        return self.sim.step(**dict(entry))

    def snapshot(self) -> tuple:
        return self.sim.snapshot_state()

    def restore(self, snap: tuple) -> None:
        # FaultableGateSimulator.restore_state also releases any active
        # stuck-at forcing before rewinding the value store.
        self.sim.restore_state(snap)

    def seu_targets(self) -> list[tuple[str, int]]:
        return [(name, 1) for name in self._state_nets]

    def net_targets(self) -> list[str]:
        return list(self._comb_nets)

    def addressable_nets(self) -> dict[str, Net]:
        """Target name → the net :meth:`inject` would resolve it to.

        Mirrors the lookup precedence of :meth:`inject` for stuck-at and
        flip faults — combinational names shadow state names — so the
        quiescence profiler and the fault-collapsing canonicalizer
        reason about exactly the nets a campaign would clamp.
        """
        nets = dict(self._state_nets)
        nets.update(self._comb_nets)
        return nets

    def fault_collapse_map(self) -> dict[tuple[str, str], tuple[str, str]]:
        """``(target, kind)`` → equivalent representative ``(target, kind)``.

        Built from the structural equivalence classes of
        :func:`repro.analyze.netlist.collapse_faults`: members of one
        class force identical circuit behavior, so the campaign engine
        simulates the representative and copies its record to the
        others.  Representatives are the lexicographic minimum of each
        class so the choice is deterministic across processes.  Class
        members whose net is not addressable by name (shadowed by a
        duplicate) are left out — they must be simulated directly.
        Computed once per injector and cached.
        """
        cached = getattr(self, "_collapse_map", None)
        if cached is not None:
            return cached
        from repro.analyze.netlist import collapse_faults

        name_of: dict[int, str] = {
            net.uid: name for name, net in self.addressable_nets().items()
        }
        mapping: dict[tuple[str, str], tuple[str, str]] = {}
        equivalence = collapse_faults(self.sim.circuit).equivalence
        for members in equivalence.classes().values():
            named = sorted(
                (name_of[uid], kind)
                for uid, kind in members if uid in name_of
            )
            if len(named) < 2:
                continue
            rep = named[0]
            for member in named[1:]:
                mapping[member] = rep
        self._collapse_map = mapping
        return mapping

    def inject(self, fault) -> None:
        if fault.kind == "seu":
            net = self._state_nets.get(fault.target)
            if net is None:
                raise FaultInjectionError(
                    f"no state (flop output) net named {fault.target!r}"
                )
            self.sim.flip_net(net)
            return
        net = self._comb_nets.get(fault.target) \
            or self._state_nets.get(fault.target)
        if net is None:
            raise FaultInjectionError(f"no net named {fault.target!r}")
        if fault.kind == "sa0":
            self.sim.force_net(net, 0)
        elif fault.kind == "sa1":
            self.sim.force_net(net, 1)
        elif fault.kind == "flip":
            self.sim.flip_net(net)
        else:
            raise FaultInjectionError(f"unknown fault kind {fault.kind!r}")

    def clear_faults(self) -> None:
        self.sim.release_all()
