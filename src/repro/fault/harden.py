"""Netlist hardening primitives: TMR voters and parity-protected state.

Both transforms run on an optimized :class:`~repro.netlist.circuit
.Circuit` and only *add* standard-library cells, so the result stays a
plain netlist — simulatable, timeable and placeable like any other.

``tmr_harden``
    Flop-level triple modular redundancy: every selected flip-flop is
    triplicated (the copies share the original D cone) and its output net
    is re-driven by a two-level AND/OR majority voter.  A transient upset
    in any single copy is out-voted the same cycle and overwritten by the
    shared next-state logic on the following edge — SEUs on state become
    *masked* outcomes.
``add_parity_guards``
    Parity-protected register groups: flops are grouped by register stem
    (``path/reg[3]`` → ``path/reg``); each group gets one extra parity
    flop fed by the XOR of the group's D pins and a checker XORing the
    group's Q pins against it.  The OR of all group checkers is exposed
    as a 1-bit ``parity_err`` output — a single state upset becomes a
    *detected* outcome.
"""

from __future__ import annotations

from repro.netlist.cells import AND2, DFF, OR2, XOR2
from repro.netlist.circuit import Cell, Circuit, Net, NetlistError


def majority_voter(circuit: Circuit, a: Net, b: Net, c: Net,
                   out: Net, name: str) -> list[Cell]:
    """Drive *out* with ``maj(a, b, c) = ab | ac | bc``; returns cells."""
    if out.driver is not None:
        raise NetlistError(
            f"majority voter output net {out.name!r} already driven"
        )
    ab = circuit.new_net(f"{name}/ab")
    ac = circuit.new_net(f"{name}/ac")
    bc = circuit.new_net(f"{name}/bc")
    ab_ac = circuit.new_net(f"{name}/ab_ac")
    return [
        circuit.add_cell(f"{name}/and_ab", AND2, i0=a, i1=b, y=ab),
        circuit.add_cell(f"{name}/and_ac", AND2, i0=a, i1=c, y=ac),
        circuit.add_cell(f"{name}/and_bc", AND2, i0=b, i1=c, y=bc),
        circuit.add_cell(f"{name}/or_hi", OR2, i0=ab, i1=ac, y=ab_ac),
        circuit.add_cell(f"{name}/or_maj", OR2, i0=ab_ac, i1=bc, y=out),
    ]


def tmr_harden(circuit: Circuit,
               flops: list[Cell] | None = None) -> int:
    """Triplicate *flops* (default: all) behind majority voters.

    Returns the number of flip-flops hardened.  The original flop keeps
    its name; copies and voter cells get ``__tmr``-suffixed names so
    area reports still attribute them to the owning module path.
    """
    selected = list(circuit.flops()) if flops is None else list(flops)
    for flop in selected:
        if flop.ctype is not DFF:
            raise NetlistError(
                f"cannot TMR-harden non-DFF cell {flop.name!r}"
            )
        q_net = flop.pins["q"]
        d_net = flop.pins["d"]
        # Retarget the original flop onto a private copy net, freeing the
        # fan-out-facing net for the voter to drive.
        q_a = circuit.new_net(f"{flop.name}__tmr_qa")
        q_a.driver = (flop, "q")
        flop.pins["q"] = q_a
        q_net.driver = None
        q_b = circuit.new_net(f"{flop.name}__tmr_qb")
        q_c = circuit.new_net(f"{flop.name}__tmr_qc")
        circuit.add_cell(f"{flop.name}__tmr_b", DFF, d=d_net, q=q_b)
        circuit.add_cell(f"{flop.name}__tmr_c", DFF, d=d_net, q=q_c)
        majority_voter(circuit, q_a, q_b, q_c, q_net,
                       f"{flop.name}__tmr_vote")
    return len(selected)


def _xor_tree(circuit: Circuit, nets: list[Net], name: str) -> Net:
    """Balanced XOR reduction of *nets* (len >= 1)."""
    layer = list(nets)
    level = 0
    while len(layer) > 1:
        nxt: list[Net] = []
        for k in range(0, len(layer) - 1, 2):
            out = circuit.new_net(f"{name}/x{level}_{k // 2}")
            circuit.add_cell(f"{name}/xor{level}_{k // 2}", XOR2,
                             i0=layer[k], i1=layer[k + 1], y=out)
            nxt.append(out)
        if len(layer) % 2:
            nxt.append(layer[-1])
        layer = nxt
        level += 1
    return layer[0]


def _register_stem(flop_name: str) -> str:
    """Group key for a flop: its name with any trailing ``[k]`` stripped."""
    stem, bracket, _ = flop_name.rpartition("[")
    return stem if bracket else flop_name


def add_parity_guards(circuit: Circuit,
                      flops: list[Cell] | None = None,
                      output_name: str = "parity_err") -> int:
    """Add per-register parity flops and expose their OR as an output.

    Returns the number of guarded register groups.  Must run *before*
    :func:`tmr_harden` if both are applied, so the checker reads the
    voted state nets.
    """
    selected = list(circuit.flops()) if flops is None else list(flops)
    groups: dict[str, list[Cell]] = {}
    for flop in selected:
        groups.setdefault(_register_stem(flop.name), []).append(flop)
    error_nets: list[Net] = []
    for stem, members in groups.items():
        d_parity = _xor_tree(circuit, [f.pins["d"] for f in members],
                             f"{stem}__par_d")
        parity_q = circuit.new_net(f"{stem}__par_q")
        circuit.add_cell(f"{stem}__par_ff", DFF, d=d_parity, q=parity_q)
        q_parity = _xor_tree(circuit, [f.pins["q"] for f in members],
                             f"{stem}__par_q_tree")
        err = circuit.new_net(f"{stem}__par_err")
        circuit.add_cell(f"{stem}__par_check", XOR2,
                         i0=q_parity, i1=parity_q, y=err)
        error_nets.append(err)
    if not error_nets:
        return 0
    any_err = error_nets[0]
    for k, err in enumerate(error_nets[1:]):
        merged = circuit.new_net(f"{output_name}/or{k}")
        circuit.add_cell(f"{output_name}/or{k}", OR2,
                         i0=any_err, i1=err, y=merged)
        any_err = merged
    circuit.mark_output(output_name, [any_err])
    return len(groups)


def harden_circuit(circuit: Circuit, mode: str = "tmr+parity") -> Circuit:
    """Apply a named hardening recipe in place; returns the circuit.

    ``"tmr"``         triplicated state, majority voters (masks SEUs);
    ``"parity"``      parity groups + ``parity_err`` (detects SEUs);
    ``"tmr+parity"``  both — parity first so it checks voted state.
    """
    if mode not in ("tmr", "parity", "tmr+parity"):
        raise NetlistError(f"unknown hardening mode {mode!r}")
    # Snapshot the original state flops: guards and copies added by one
    # transform must not become targets of the other.
    flops = list(circuit.flops())
    if "parity" in mode:
        add_parity_guards(circuit, flops)
    if "tmr" in mode:
        tmr_harden(circuit, flops)
    return circuit
