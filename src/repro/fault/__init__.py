"""Simulation-based fault injection (SBFI) and hardening.

The automotive setting of the paper makes transient upsets (SEUs) and
manufacturing stuck-at faults first-class concerns; this subsystem adds a
DAVOS-style campaign layer on top of the two fault-free simulators:

* :mod:`repro.fault.inject` — non-invasive injection hooks: SEU bit flips
  on :class:`~repro.rtl.simulate.RtlSimulator` register state, stuck-at
  and transient net faults on a :class:`FaultableGateSimulator` subclass
  of the gate simulator.
* :mod:`repro.fault.campaign` — deterministic seeded fault lists, golden
  run capture with per-cycle checkpoints, per-fault replay and outcome
  classification (*masked / sdc / detected / hang*), JSON reports.
* :mod:`repro.fault.profile` — golden-trace quiescence profiling: one
  instrumented golden pass proves stuck-at faults masked so the
  campaign can synthesize their records (``collapse=True``).
* :mod:`repro.fault.harden` — netlist hardening primitives: flop-level
  TMR with majority voters and parity-protected register groups.
* :mod:`repro.fault.scenarios` — the bundled ExpoCU campaign behind the
  ``repro inject`` CLI.

The watchdog half of the hardening story lives with the shared objects
themselves (:mod:`repro.osss.shared`, ``watchdog_rounds``).
"""

from repro.fault.campaign import (
    CampaignConfig,
    CampaignError,
    CampaignResult,
    Fault,
    FaultRecord,
    OUTCOMES,
    collapse_fault,
    generate_fault_list,
    run_campaign,
    stuck_at_universe,
)
from repro.fault.harden import (
    add_parity_guards,
    harden_circuit,
    majority_voter,
    tmr_harden,
)
from repro.fault.inject import (
    FaultableGateSimulator,
    GateFaultInjector,
    RtlFaultInjector,
)
from repro.fault.profile import QuiescenceProfile, quiescence_profile
from repro.fault.scenarios import (
    expocu_campaign,
    expocu_injector,
    expocu_stimulus,
)

__all__ = [
    "CampaignConfig",
    "CampaignError",
    "CampaignResult",
    "Fault",
    "FaultRecord",
    "FaultableGateSimulator",
    "GateFaultInjector",
    "OUTCOMES",
    "QuiescenceProfile",
    "RtlFaultInjector",
    "add_parity_guards",
    "collapse_fault",
    "expocu_campaign",
    "expocu_injector",
    "expocu_stimulus",
    "generate_fault_list",
    "harden_circuit",
    "majority_voter",
    "quiescence_profile",
    "run_campaign",
    "stuck_at_universe",
    "tmr_harden",
]
