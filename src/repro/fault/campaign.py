"""Fault-injection campaigns: fault lists, golden runs, classification.

A campaign replays one deterministic stimulus once fault-free (the
*golden run*, checkpointed at every injection cycle) and then once per
fault, restoring the checkpoint at the fault's cycle, injecting, and
comparing the observed outputs against the golden trace.  Every fault is
classified into exactly one outcome:

``masked``    no observed output ever diverged and the run completed;
``sdc``       silent data corruption — outputs diverged, nothing fired;
``detected``  a designated detection signal rose where the golden run's
              was low — during the stimulus *or* the post-stimulus
              drain — or the simulator itself raised on the fault;
``hang``      the done-signal never reached its quiescent value within
              the drain budget (cycle-budget watchdog).

Precedence when several apply: ``hang`` > ``detected`` > ``sdc``.  The
taxonomy and the checkpoint-replay structure follow simulation-based
fault injection practice (DAVOS); determinism is end-to-end — the same
seed yields byte-identical reports.

Scaling: the fault list is deduplicated before replay (identical faults
are simulated once and their record shared), and ``run_campaign(...,
jobs=N, injector_factory=...)`` shards the unique faults across *N*
worker processes.  Each worker rebuilds the injector and its golden
checkpoints from the seeded scenario, so the merged report is
byte-identical to the sequential run (guarded by a cross-worker golden
consistency check).
"""

from __future__ import annotations

import functools
import json
import multiprocessing
import random
import time
from dataclasses import dataclass, field
from typing import Any, Callable, Mapping, Sequence

from repro.exec.deadline import DeadlineExceeded, time_limit
from repro.exec.journal import CampaignJournal, fault_key
from repro.exec.pool import (
    MetaMismatchError,
    PoolError,
    SupervisedPool,
    TaskPickleError,
)
from repro.obs.profiler import NULL_TRACER, Tracer
from repro.store.common import digest_doc
from repro.store.serialize import (
    deserialize_fault_record,
    serialize_fault_record,
)

#: The closed outcome taxonomy, in report order.
OUTCOMES = ("masked", "sdc", "detected", "hang")

#: Fault kinds per flow (SEU everywhere; net faults are gate-level).
RTL_KINDS = ("seu",)
GATE_KINDS = ("seu", "sa0", "sa1", "flip")


class CampaignError(RuntimeError):
    """The campaign could not run to completion as configured.

    Raised for execution-infrastructure failures — an injector factory
    that does not pickle under the active start method, worker golden
    runs that disagree, or a journal that belongs to a different
    campaign.  Classification outcomes (including quarantined faults)
    are never errors; they are reported in the result.
    """


@dataclass(frozen=True)
class Fault:
    """One injection: *kind* at *target*, bit *bit*, before cycle *cycle*."""

    kind: str    # "seu" | "sa0" | "sa1" | "flip"
    target: str  # register name (rtl) or net name (netlist)
    bit: int     # bit index within the register; 0 for single nets
    cycle: int   # stimulus index at whose boundary the fault appears

    def as_dict(self) -> dict[str, Any]:
        return {"kind": self.kind, "target": self.target,
                "bit": self.bit, "cycle": self.cycle}


@dataclass
class FaultRecord:
    """A fault plus its classified outcome."""

    fault: Fault
    outcome: str
    first_divergence: int | None = None
    detail: str = ""

    def as_dict(self) -> dict[str, Any]:
        record = self.fault.as_dict()
        record["outcome"] = self.outcome
        record["first_divergence"] = self.first_divergence
        if self.detail:
            record["detail"] = self.detail
        return record


@dataclass
class CampaignConfig:
    """What the campaign drives, observes and classifies against.

    Parameters
    ----------
    reset_name / reset_cycles:
        The reset input and how many cycles it is held before the
        stimulus starts (the golden snapshot is taken after release).
    observed:
        Output names compared against the golden trace; ``None`` means
        every output.
    detect_signals:
        Outputs that signal *detection* (parity errors, ack errors...):
        a 1 where the golden run had 0 classifies the fault as detected.
        Monitored during the stimulus and during the drain phase (a
        detector may first fire after the last stimulus cycle).
    done_signal / done_value:
        Quiescence test for hang detection: after the stimulus the design
        gets up to *drain_budget* extra cycles of *idle_input* to bring
        this output to this value.  ``None`` disables hang detection.
    """

    reset_name: str = "reset"
    reset_cycles: int = 2
    observed: Sequence[str] | None = None
    detect_signals: Sequence[str] = ()
    done_signal: str | None = None
    done_value: int = 0
    drain_budget: int = 2000
    idle_input: Mapping[str, int] = field(default_factory=dict)


@dataclass
class CampaignResult:
    """Everything one campaign produced, JSON-serializable."""

    design: str
    flow: str
    hardening: str
    seed: int
    cycles: int
    observed: list[str]
    detect_signals: list[str]
    golden_selfcheck: str
    golden_done: bool
    golden_drain_cycles: int
    records: list[FaultRecord]
    #: Static-analysis extras from ``run_campaign(collapse=True)``.
    #: Deliberately NOT part of :meth:`as_dict`: the serialized report
    #: must stay byte-identical to the uncollapsed oracle's.
    collapse: dict[str, int] | None = None
    net_scores: dict[str, float] | None = None
    #: Faults quarantined by the execution layer (wall-clock deadline
    #: exhausted after retries).  Serialized as an ``"errors"`` section
    #: only when non-empty, so clean runs stay byte-identical.
    errors: list[dict[str, Any]] = field(default_factory=list)
    #: Resilience counters (respawns, requeues, timeouts, journal hits)
    #: from the execution layer; NOT part of :meth:`as_dict`.
    exec_stats: dict[str, int] | None = None

    @property
    def outcomes(self) -> dict[str, int]:
        counts = {outcome: 0 for outcome in OUTCOMES}
        for record in self.records:
            counts[record.outcome] += 1
        return counts

    def outcome_rates(self) -> dict[str, float]:
        """Outcome shares over the faults actually simulated.

        The denominator is ``len(self.records)`` — the faults that were
        classified — *not* the full fault-list length: quarantined
        faults (the ``errors`` section) were never classified, so
        counting them in the denominator would understate every rate.
        Totals always reconcile: ``len(records) + len(errors)`` equals
        the injected fault-list length.  All zeros when nothing was
        simulated.
        """
        total = len(self.records)
        if not total:
            return {outcome: 0.0 for outcome in OUTCOMES}
        counts = self.outcomes
        return {outcome: counts[outcome] / total for outcome in OUTCOMES}

    def objectives(self, drain_budget: int | None = None) -> dict[str, Any]:
        """Robustness/cost objectives for design-space exploration.

        ``sdc_rate`` / ``detected_rate`` are the outcome shares;
        ``sim_cycles`` is a deterministic campaign-cost proxy counted in
        simulated cycles, not wall time, so it is identical across
        backends and job counts: the golden run (stimulus plus its drain)
        plus, per classified fault, the re-simulated tail from the
        injection cycle and the drain phase (a hang consumes the full
        *drain_budget*; anything else drains like the golden run).
        """
        rates = self.outcome_rates()
        drain = self.golden_drain_cycles
        hang_drain = drain if drain_budget is None else drain_budget
        sim_cycles = self.cycles + drain
        for record in self.records:
            sim_cycles += self.cycles - record.fault.cycle
            sim_cycles += hang_drain if record.outcome == "hang" else drain
        return {
            "sdc_rate": round(rates["sdc"], 9),
            "detected_rate": round(rates["detected"], 9),
            "sim_cycles": sim_cycles,
        }

    def as_dict(self) -> dict[str, Any]:
        doc = {
            "schema": "repro-fault-campaign/v1",
            "design": self.design,
            "flow": self.flow,
            "hardening": self.hardening,
            "seed": self.seed,
            "cycles": self.cycles,
            "observed": list(self.observed),
            "detect_signals": list(self.detect_signals),
            "golden": {
                "selfcheck": self.golden_selfcheck,
                "done": self.golden_done,
                "drain_cycles": self.golden_drain_cycles,
            },
            "injected": len(self.records),
            "outcomes": self.outcomes,
            "faults": [record.as_dict() for record in self.records],
        }
        if self.errors:
            doc["errors"] = self.errors
        return doc

    def to_json(self) -> str:
        return json.dumps(self.as_dict(), indent=2) + "\n"

    def sdc_ranking(self, limit: int | None = None) -> list[tuple[str, float]]:
        """SDC-prone nets ranked by SCOAP observability, best first.

        Targets whose stuck-at/flip faults classified as silent data
        corruption, ordered by ascending observability score (a low CO
        means the net's value reaches the outputs easily, so its
        corruption is the most likely to slip through undetected).
        Needs the ``net_scores`` attached by ``collapse=True`` runs;
        returns ``[]`` otherwise.
        """
        if self.net_scores is None:
            return []
        prone: dict[str, float] = {}
        for record in self.records:
            if record.outcome != "sdc":
                continue
            score = self.net_scores.get(record.fault.target)
            if score is not None:
                prone[record.fault.target] = score
        ranked = sorted(prone.items(), key=lambda item: (item[1], item[0]))
        return ranked[:limit] if limit is not None else ranked

    def summary_rows(self) -> list[dict[str, Any]]:
        """One table row (for ``repro.eval.format_table``)."""
        counts = self.outcomes
        return [{
            "design": self.design, "flow": self.flow,
            "hardening": self.hardening, "faults": len(self.records),
            **counts,
        }]

    def __repr__(self) -> str:
        counts = self.outcomes
        body = ", ".join(f"{k}={v}" for k, v in counts.items())
        return (f"CampaignResult({self.design!r}, {self.flow}, "
                f"{self.hardening}, {body})")


def collapse_fault(fault: Fault,
                   cmap: Mapping[tuple[str, str], tuple[str, str]]) -> Fault:
    """The class representative of *fault* under an equivalence map.

    Equivalence is structural, so canonicalization preserves the
    injection cycle and bit; faults outside any class map to themselves.
    """
    rep = cmap.get((fault.target, fault.kind))
    if rep is None:
        return fault
    return Fault(rep[1], rep[0], fault.bit, fault.cycle)


def generate_fault_list(injector, n: int, cycles: int, seed: int,
                        kinds: Sequence[str] | None = None,
                        collapse: bool = False) -> list[Fault]:
    """Seeded, deterministic fault list: target × cycle × bit.

    Targets are drawn from the injector's deterministic enumerations;
    injection cycles are uniform over ``[1, cycles)`` so every fault has
    at least one post-reset cycle before it and one stimulus cycle after.

    With ``collapse=True`` every stuck-at fault is replaced by its
    structural equivalence-class representative
    (:meth:`fault_collapse_map`), shrinking the list a campaign has to
    simulate while covering the same fault classes.  Note the sampled
    *sites* change under collapsing; to keep a report byte-identical to
    the uncollapsed oracle, leave the list alone and pass
    ``collapse=True`` to :func:`run_campaign` instead.
    """
    if kinds is None:
        kinds = RTL_KINDS if injector.flow == "rtl" else GATE_KINDS
    seu = injector.seu_targets()
    nets = injector.net_targets()
    kinds = tuple(k for k in kinds
                  if k == "seu" and seu or k != "seu" and nets)
    if n > 0 and not kinds:
        raise ValueError("no fault targets available for the chosen kinds")
    rng = random.Random(seed)
    faults: list[Fault] = []
    for _ in range(n):
        kind = kinds[rng.randrange(len(kinds))]
        if kind == "seu":
            target, width = seu[rng.randrange(len(seu))]
            bit = rng.randrange(width)
        else:
            target, bit = nets[rng.randrange(len(nets))], 0
        # A one-cycle stimulus leaves no post-reset cycle to draw from:
        # inject at cycle 0 instead of sampling cycle 1, which
        # run_campaign would reject as outside the stimulus.
        cycle = rng.randrange(1, cycles) if cycles > 1 else 0
        faults.append(Fault(kind, target, bit, cycle))
    if collapse:
        cmap = injector.fault_collapse_map()
        if cmap:
            faults = [collapse_fault(fault, cmap) for fault in faults]
    return faults


def stuck_at_universe(injector, cycle: int = 1) -> list[Fault]:
    """The classical full stuck-at fault list: sa0/sa1 on every net.

    One injection cycle for the whole list (stuck-at faults are
    permanent; *cycle* chooses how much of the stimulus they overlap).
    This is the universe fault collapsing is measured against.
    """
    return [Fault(kind, target, 0, cycle)
            for target in injector.net_targets()
            for kind in ("sa0", "sa1")]


def _observed_names(outputs: Mapping[str, int],
                    config: CampaignConfig) -> list[str]:
    if config.observed is not None:
        return list(config.observed)
    return sorted(outputs)


def _drain(injector, config: CampaignConfig,
           detect_reference: list[dict[str, int]] | None = None,
           ) -> tuple[bool, int, list[dict[str, int]], bool]:
    """Step idle input until the done-signal quiesces.

    Returns ``(done, cycles, detect_trace, detected)``: the per-cycle
    detect-signal samples (the golden run's trace becomes the reference
    for fault replays) and, when *detect_reference* is given, whether a
    detect signal rose where the reference had 0 — the drain-phase half
    of the ``detected`` classification.  A fault drain outlasting the
    reference is compared against the reference's final cycle.
    """
    if config.done_signal is None:
        return True, 0, [], False
    idle = {config.reset_name: 0, **dict(config.idle_input)}
    trace: list[dict[str, int]] = []
    detected = False
    done = False
    cycles = 0
    while cycles < config.drain_budget + 1:
        outputs = injector.step(idle)
        if config.detect_signals:
            sample = {sig: outputs.get(sig) or 0
                      for sig in config.detect_signals}
            trace.append(sample)
            if detect_reference is not None and not detected:
                k = min(cycles, len(detect_reference) - 1)
                reference = detect_reference[k] if k >= 0 else {}
                detected = any(
                    sample[sig] and not reference.get(sig)
                    for sig in config.detect_signals
                )
        cycles += 1
        if outputs.get(config.done_signal) == config.done_value:
            done = True
            break
    return done, cycles, trace, detected


@dataclass
class _GoldenRun:
    """Everything a fault replay compares against."""

    snapshots: dict[int, tuple]
    trace: list[dict[str, int]]
    done: bool
    drain_cycles: int
    detect_trace: list[dict[str, int]]
    observed: list[str]
    selfcheck: str


def _golden_run(injector, stimulus: Sequence[Mapping[str, int]],
                config: CampaignConfig, snap_cycles: set[int]) -> _GoldenRun:
    """Reset, golden run with checkpoints, drain, and the self-check."""
    for _ in range(config.reset_cycles):
        injector.step({config.reset_name: 1})
    base = injector.snapshot()
    snapshots: dict[int, tuple] = {}
    trace: list[dict[str, int]] = []
    for cycle, entry in enumerate(stimulus):
        if cycle in snap_cycles:
            snapshots[cycle] = injector.snapshot()
        trace.append(injector.step(entry))
    done, drain_cycles, detect_trace, _ = _drain(injector, config)
    observed = _observed_names(trace[0], config)

    # Golden self-check: restore+replay must reproduce the trace.
    injector.restore(base)
    selfcheck = "masked"
    for cycle, entry in enumerate(stimulus):
        outputs = injector.step(entry)
        if any(outputs.get(k) != trace[cycle].get(k) for k in observed):
            selfcheck = "sdc"
            break
    return _GoldenRun(snapshots, trace, done, drain_cycles, detect_trace,
                      observed, selfcheck)


def _classify(injector, fault: Fault,
              stimulus: Sequence[Mapping[str, int]], golden: _GoldenRun,
              config: CampaignConfig) -> FaultRecord:
    """Restore the fault's checkpoint, inject, replay the tail, classify."""
    injector.restore(golden.snapshots[fault.cycle])
    first_divergence: int | None = None
    detected = False
    detail = ""
    hang = False
    try:
        injector.inject(fault)
        for cycle in range(fault.cycle, len(stimulus)):
            outputs = injector.step(stimulus[cycle])
            reference = golden.trace[cycle]
            if first_divergence is None and any(
                outputs.get(k) != reference.get(k) for k in golden.observed
            ):
                first_divergence = cycle
            if not detected and any(
                outputs.get(k) and not reference.get(k)
                for k in config.detect_signals
            ):
                detected = True
        if golden.done:
            done, _, _, drain_detected = _drain(
                injector, config, golden.detect_trace
            )
            hang = not done
            detected = detected or drain_detected
    except DeadlineExceeded:
        # A wall-clock deadline is an execution-infrastructure event,
        # not a simulator detection — let the supervisor retry or
        # quarantine instead of misfiling the fault as "detected".
        raise
    except Exception as exc:  # simulator flagged the fault itself
        detected = True
        detail = f"{type(exc).__name__}: {exc}"
    finally:
        injector.clear_faults()
    if hang:
        outcome = "hang"
    elif detected:
        outcome = "detected"
    elif first_divergence is not None:
        outcome = "sdc"
    else:
        outcome = "masked"
    return FaultRecord(fault, outcome, first_divergence, detail)


def _classify_batch(injector, faults: Sequence[Fault],
                    stimulus: Sequence[Mapping[str, int]],
                    golden: _GoldenRun,
                    config: CampaignConfig) -> list[FaultRecord]:
    """Classify up to ``lane_capacity`` stuck-at faults in one replay.

    Bit-parallel (PPSFP) counterpart of :func:`_classify`: the replay
    restores the earliest checkpoint of the batch, widens the simulator
    to one lane per fault, and activates each lane's stuck-at clamp at
    that fault's own injection cycle — a lane before its cycle tracks
    the golden run exactly (the golden self-check guarantees replay
    determinism), so it accumulates no spurious divergence.  Divergence,
    detect-signal rises and done-signal quiescence are reduced to lane
    bitmasks per cycle, mirroring the scalar classifier's sampling
    points (outputs observed pre-commit; drain detection sampled on the
    cycle quiescence is reached) so each lane's record is byte-identical
    to its scalar classification.  Faults must be pre-validated with
    ``injector.resolve_stuck`` — a lane fault can then never raise, so
    the scalar classifier's exception-means-detected path has no batch
    counterpart.
    """
    n = len(faults)
    base = min(fault.cycle for fault in faults)
    by_cycle: dict[int, list[tuple[int, Fault]]] = {}
    for lane, fault in enumerate(faults):
        by_cycle.setdefault(fault.cycle, []).append((lane, fault))
    all_lanes = (1 << n) - 1
    first_divergence: list[int | None] = [None] * n
    diff_seen = 0
    detected = 0
    hang = 0
    injector.restore(golden.snapshots[base])
    try:
        injector.begin_lanes(n)
        for cycle in range(base, len(stimulus)):
            for lane, fault in by_cycle.get(cycle, ()):
                injector.force_lane(fault, lane)
            injector.step_lanes(stimulus[cycle])
            reference = golden.trace[cycle]
            diff = injector.lanes_output_diff(reference, golden.observed)
            fresh = diff & ~diff_seen
            while fresh:
                lane = (fresh & -fresh).bit_length() - 1
                first_divergence[lane] = cycle
                fresh &= fresh - 1
            diff_seen |= diff
            if config.detect_signals:
                detected |= injector.lanes_detect_rise(
                    reference, config.detect_signals
                )
            injector.commit_lanes()
        # No done-signal means the scalar drain declares quiescence
        # immediately (no drain steps, no hang) — mirror that here.
        if golden.done and config.done_signal is not None:
            idle = {config.reset_name: 0, **dict(config.idle_input)}
            detect_trace = golden.detect_trace
            active = all_lanes
            cycles = 0
            # Brent-style periodicity shortcut for hang lanes: the
            # drain input is constant, so once the full wide state
            # repeats with unchanged active/detected masks (and the
            # detect reference clamped to its final entry), no active
            # lane can ever quiesce or newly detect — the classification
            # is already exactly what exhausting the budget would
            # produce.  One stored snapshot, refreshed at power-of-two
            # cycle counts, detects any period within the budget.
            snapshot: list[int] | None = None
            snap_active = snap_detected = 0
            next_snap = 1
            while cycles < config.drain_budget + 1:
                injector.step_lanes(idle)
                if config.detect_signals:
                    k = min(cycles, len(detect_trace) - 1)
                    reference = detect_trace[k] if k >= 0 else {}
                    detected |= injector.lanes_detect_rise(
                        reference, config.detect_signals
                    ) & active
                done = injector.lanes_done(config.done_signal,
                                           config.done_value)
                injector.commit_lanes()
                cycles += 1
                active &= ~done
                if not active:
                    break
                if cycles >= len(detect_trace) - 1:
                    if (snapshot is not None and active == snap_active
                            and detected == snap_detected
                            and injector.lane_state_matches(snapshot)):
                        break
                    if cycles >= next_snap:
                        snapshot = injector.lane_state_snapshot()
                        snap_active, snap_detected = active, detected
                        next_snap *= 2
            hang = active
    finally:
        injector.end_lanes()
        injector.clear_faults()
    records = []
    for lane, fault in enumerate(faults):
        bit = 1 << lane
        if hang & bit:
            outcome = "hang"
        elif detected & bit:
            outcome = "detected"
        elif first_divergence[lane] is not None:
            outcome = "sdc"
        else:
            outcome = "masked"
        records.append(FaultRecord(fault, outcome, first_divergence[lane]))
    return records


def _lane_batches(injector, sim_faults: Sequence[Fault],
                  pending: Sequence[int]) -> tuple[list[list[int]],
                                                   list[int]]:
    """Split *pending* fault indices into lane batches and a scalar rest.

    Only permanent stuck-at faults pack into lanes; transients (seu,
    flip) are one-shot events whose healing is inherently scalar, and
    faults whose target does not resolve must go through the scalar
    classifier to reproduce its exception-means-detected record.
    Batchable faults are sorted target-major (then bit, kind, cycle)
    before chunking at the injector's lane capacity: faults on the same
    or structurally nearby nets tend to classify alike, so in
    particular the hang-prone ones cluster into the same batch — one
    batch pays the full drain budget instead of every batch carrying a
    straggler lane.
    """
    batchable: list[int] = []
    rest: list[int] = []
    for k in pending:
        fault = sim_faults[k]
        if fault.kind in ("sa0", "sa1"):
            try:
                injector.resolve_stuck(fault)
            except Exception:
                rest.append(k)
            else:
                batchable.append(k)
        else:
            rest.append(k)
    batchable.sort(key=lambda k: (sim_faults[k].target, sim_faults[k].bit,
                                  sim_faults[k].kind, sim_faults[k].cycle))
    capacity = injector.lane_capacity
    batches = [batchable[i:i + capacity]
               for i in range(0, len(batchable), capacity)]
    return batches, rest


def _golden_meta(injector, golden: _GoldenRun) -> dict[str, Any]:
    """The injector-independent golden facts every shard must agree on."""
    return {
        "flow": injector.flow,
        "design": getattr(injector, "design", injector.flow),
        "observed": list(golden.observed),
        "selfcheck": golden.selfcheck,
        "done": golden.done,
        "drain_cycles": golden.drain_cycles,
    }


def _sim_stats(injector) -> dict[str, Any] | None:
    """The injector's simulator work counters, when it exposes them."""
    sim = getattr(injector, "sim", None)
    stats = getattr(sim, "stats", None)
    return stats() if callable(stats) else None


def _outcome_tally(records: Sequence[FaultRecord]) -> dict[str, int]:
    counts = {outcome: 0 for outcome in OUTCOMES}
    for record in records:
        counts[record.outcome] += 1
    return counts


def _run_shard(payload: tuple) -> dict[str, Any]:
    """Worker: rebuild the injector, rerun the golden run, classify a shard.

    Module-level so it pickles under every multiprocessing start method.
    Each shard measures its own wall time and work counters so the
    parent can roll them up as per-shard trace spans.
    """
    injector_factory, stimulus, faults, config = payload
    start = time.perf_counter()
    injector = injector_factory()
    snap_cycles = {fault.cycle for fault in faults} | {0}
    golden = _golden_run(injector, stimulus, config, snap_cycles)
    golden_s = time.perf_counter() - start
    records = [_classify(injector, fault, stimulus, golden, config)
               for fault in faults]
    total_s = time.perf_counter() - start
    return {
        "meta": _golden_meta(injector, golden),
        "records": records,
        "profile": {
            "seconds": total_s,
            "golden_s": golden_s,
            "faults": len(faults),
            "outcomes": _outcome_tally(records),
            "sim_stats": _sim_stats(injector),
        },
    }


def _mp_context():
    """Fork where available (cheap, inherits sys.path), else spawn.

    Retained alongside :func:`_run_shard` as the pre-supervision
    execution engine: ``benchmarks/bench_resilience_overhead.py`` uses
    the pair as the baseline the supervised pool is measured against.
    """
    try:
        return multiprocessing.get_context("fork")
    except ValueError:  # pragma: no cover - non-POSIX platforms
        return multiprocessing.get_context("spawn")


class _CampaignSession:
    """Per-worker campaign state for the supervised pool.

    Built once per worker process (injector + checkpointed golden run),
    then classifies one fault per ``run`` call.  ``meta`` is the
    cross-worker consistency contract: every worker must reproduce the
    identical golden run or the campaign refuses to merge shards.
    Module-level so ``functools.partial`` over it pickles under every
    multiprocessing start method.
    """

    def __init__(self, injector_factory, stimulus, snap_cycles, config):
        self.injector = injector_factory()
        self.stimulus = stimulus
        self.config = config
        self.golden = _golden_run(self.injector, stimulus,
                                  config, set(snap_cycles))
        self.meta = _golden_meta(self.injector, self.golden)

    def run(self, task: Fault | tuple) -> FaultRecord | list[FaultRecord]:
        if isinstance(task, tuple):  # lane batch → one record per fault
            try:
                return _classify_batch(self.injector, list(task),
                                       self.stimulus, self.golden,
                                       self.config)
            except Exception:
                # A lane-parallel surprise must never cost the batch its
                # classification: fall back to the scalar oracle.
                self.injector.clear_faults()
                return [_classify(self.injector, fault, self.stimulus,
                                  self.golden, self.config)
                        for fault in task]
        return _classify(self.injector, task, self.stimulus, self.golden,
                         self.config)

    def stats(self) -> dict[str, Any] | None:
        return _sim_stats(self.injector)


def _campaign_fingerprint(design: str, hardening: str, seed: int,
                          stimulus: Sequence[Mapping[str, int]],
                          config: CampaignConfig,
                          faults: Sequence[Fault]) -> str:
    """Digest of everything that determines a campaign's report.

    Binds a journal to one exact campaign: any change to the stimulus,
    fault list or configuration yields a different fingerprint, so
    stale journals are discarded instead of replayed into the wrong
    report.  Collapse mode is deliberately *not* part of the digest:
    collapse is classification-preserving, so a record journaled by a
    plain run is byte-for-byte the record a collapsed run would emit
    (and vice versa) — one journal serves both modes of the same
    campaign.  Mappings are serialized as sorted item lists to stay
    independent of dict insertion order.
    """
    return digest_doc({
        "design": design,
        "hardening": hardening,
        "seed": seed,
        "stimulus": [sorted(entry.items()) for entry in stimulus],
        "config": {
            "reset_name": config.reset_name,
            "reset_cycles": config.reset_cycles,
            "observed": (None if config.observed is None
                         else list(config.observed)),
            "detect_signals": list(config.detect_signals),
            "done_signal": config.done_signal,
            "done_value": config.done_value,
            "drain_budget": config.drain_budget,
            "idle_input": sorted(config.idle_input.items()),
        },
        "faults": [fault.as_dict() for fault in faults],
    })


def run_campaign(
    injector,
    stimulus: Sequence[Mapping[str, int]],
    faults: Sequence[Fault],
    config: CampaignConfig | None = None,
    *,
    design: str = "",
    hardening: str = "none",
    seed: int = 0,
    jobs: int = 1,
    injector_factory: Callable[[], Any] | None = None,
    collapse: bool = False,
    tracer: Tracer | None = None,
    fault_timeout: float | None = None,
    max_retries: int = 1,
    journal: str | None = None,
    resume: bool = False,
    start_method: str | None = None,
) -> CampaignResult:
    """Golden run + per-fault replay + classification (see module doc).

    With ``jobs > 1`` the deduplicated fault list runs on a
    :class:`~repro.exec.pool.SupervisedPool` of worker processes;
    *injector_factory* (a picklable zero-argument callable) rebuilds
    the injector in each worker, and *injector* may then be ``None``.
    The merged report is byte-identical to the ``jobs=1`` run, and it
    stays byte-identical when workers crash mid-campaign: the dead
    worker's in-flight fault is re-queued onto a respawned worker.
    When workers cannot be spawned at all the campaign degrades to
    in-process sequential execution with a one-line warning.

    *fault_timeout* puts a wall-clock deadline (seconds) on each fault
    replay, complementing the cycle budget: a fault that overruns is
    retried up to *max_retries* times (on a fresh worker when
    parallel), then quarantined into the result's ``errors`` section —
    never misclassified, never able to stall the campaign.

    *journal* names a crash-safe append-only checkpoint file
    (``repro-journal/v1``); with ``resume=True`` faults already
    recorded by a previous (possibly killed) run of the *same*
    campaign are restored instead of re-simulated, and the final
    report is byte-identical to an uninterrupted run.  The journal is
    fingerprint-bound: any change to the campaign starts fresh.

    With ``collapse=True`` (gate flow) the static netlist analysis cuts
    the simulated set in two ways before any replay happens: each fault
    is canonicalized to its structural equivalence-class representative
    (:mod:`repro.analyze.netlist`), and stuck-at faults proven masked by
    one instrumented golden pass (:mod:`repro.fault.profile`) have their
    records synthesized outright.  Both reductions are
    classification-preserving, so the result — including the serialized
    report — is byte-identical to the uncollapsed run; the extra
    ``collapse`` stats and per-net ``net_scores`` ride on the result
    object only.  At RTL level ``collapse=True`` is a no-op.

    With a :class:`~repro.obs.profiler.Tracer`, the campaign records a
    ``campaign`` root span with a ``golden`` child, one span per unique
    fault replay (sequential) or one rollup span per worker
    (``jobs > 1``), plus faults/sec throughput, per-outcome tallies,
    the simulator's work counters and the resilience counters
    (respawns, re-queues, timeouts, journal hits — also on the
    result's ``exec_stats``) as span metadata.
    """
    tracer = tracer or NULL_TRACER
    config = config or CampaignConfig()
    stimulus = [{config.reset_name: 0, **dict(entry)} for entry in stimulus]
    if not stimulus:
        raise ValueError("campaign needs a non-empty stimulus")
    for fault in faults:
        if not 0 <= fault.cycle < len(stimulus):
            raise ValueError(
                f"fault cycle {fault.cycle} outside the "
                f"{len(stimulus)}-cycle stimulus"
            )
    if jobs > 1 and injector_factory is None:
        raise ValueError(
            "run_campaign(jobs>1) needs a picklable injector_factory so "
            "worker processes can rebuild the injector"
        )
    if resume and journal is None:
        raise ValueError(
            "run_campaign(resume=True) needs a journal path to resume from"
        )
    max_retries = max(0, int(max_retries))

    # Identical faults replay identically (determinism guarantee), so
    # simulate each unique fault once and share its record.
    unique: list[Fault] = []
    index_of: dict[Fault, int] = {}
    for fault in faults:
        if fault not in index_of:
            index_of[fault] = len(unique)
            unique.append(fault)

    # Static pre-campaign reduction (collapse=True): canonicalize each
    # fault to its equivalence-class representative and prove stuck-at
    # faults masked from one instrumented golden pass; only what
    # survives is simulated.
    canonical = unique
    masked_flags = [False] * len(unique)
    collapse_stats: dict[str, int] | None = None
    net_scores: dict[str, float] | None = None
    if collapse:
        if injector is None:
            injector = injector_factory()
        cmap = injector.fault_collapse_map()
        canonical = [collapse_fault(fault, cmap) for fault in unique]
        from repro.fault.profile import quiescence_profile

        with tracer.span("quiescence-profile") as profile_span:
            profile = quiescence_profile(injector, stimulus, config)
        profile_span.annotate(targets=len(profile.quiet),
                              sample_points=profile.sample_points)
        masked_flags = [profile.masks(fault) for fault in canonical]
        if getattr(injector, "flow", None) == "netlist":
            from repro.analyze.netlist import scoap_analysis

            testability = scoap_analysis(injector.sim.circuit)
            net_scores = {
                name: testability.co[net.uid]
                for name, net in injector.addressable_nets().items()
            }
    sim_faults: list[Fault] = []
    sim_index: dict[Fault, int] = {}
    for fault, masked in zip(canonical, masked_flags):
        if masked or fault in sim_index:
            continue
        sim_index[fault] = len(sim_faults)
        sim_faults.append(fault)
    if collapse:
        collapse_stats = {
            "faults": len(faults),
            "unique": len(unique),
            "equivalence_merged": len(unique) - len(set(canonical)),
            "quiescence_pruned": sum(masked_flags),
            "simulated": len(sim_faults),
        }

    # Checkpoint/resume: restore already-journaled records, simulate
    # only what remains.  The journal stays open for the whole run so
    # every fresh record is durable the moment it is classified.
    sim_records: list[FaultRecord | None] = [None] * len(sim_faults)
    sim_failures: dict[int, dict[str, str]] = {}
    journal_hits = 0
    jrnl: CampaignJournal | None = None
    journal_meta: dict[str, Any] | None = None
    try:
        if journal is not None:
            fingerprint = _campaign_fingerprint(design, hardening, seed,
                                                stimulus, config, faults)
            jrnl = CampaignJournal(journal, fingerprint).open(resume=resume)
            journal_meta = jrnl.meta
            canonical_entries: dict[str, dict[str, Any]] = {}
            if collapse and jrnl.entries:
                # A journal written by a plain run keys its records by
                # the original fault ids; index every entry under its
                # equivalence-class representative too, so a collapsed
                # resume can reuse a member's record for the class it
                # now simulates.  Classification is class-invariant —
                # the property collapse's byte-identity rests on — so
                # any member's record stands in for the representative.
                for doc in jrnl.entries.values():
                    entry_fault = Fault(
                        doc["fault"]["kind"], doc["fault"]["target"],
                        int(doc["fault"]["bit"]), int(doc["fault"]["cycle"]),
                    )
                    rep_key = fault_key(
                        collapse_fault(entry_fault, cmap).as_dict()
                    )
                    canonical_entries.setdefault(rep_key, doc)
            for k, fault in enumerate(sim_faults):
                key = fault_key(fault.as_dict())
                doc = jrnl.entries.get(key)
                if doc is None:
                    doc = canonical_entries.get(key)
                if doc is not None:
                    record = deserialize_fault_record(doc)
                    if record.fault != fault:
                        record = FaultRecord(fault, record.outcome,
                                             record.first_divergence,
                                             record.detail)
                    sim_records[k] = record
                    journal_hits += 1
        pending = [k for k, record in enumerate(sim_records)
                   if record is None]

        jobs = max(1, min(int(jobs), max(1, len(pending))))
        exec_stats: dict[str, int] = {
            "jobs": jobs,
            "simulated": len(pending),
            "journal_hits": journal_hits,
            "timeouts": 0,
            "timeout_retries": 0,
            "quarantined": 0,
            "lane_batches": 0,
        }

        # Bit-parallel lane packing (PPSFP): after collapse has
        # canonicalized the list, pack permanent stuck-at faults into
        # lanes so one replay classifies up to ``lane_capacity`` of
        # them.  Per-fault wall-clock deadlines keep their scalar
        # quarantine semantics, so batching steps aside when a
        # *fault_timeout* is set; with ``jobs > 1`` the parent needs an
        # *injector* (not just the factory) to plan the batches —
        # without one every fault stays scalar.
        if pending and jobs == 1 and injector is None:
            injector = injector_factory()
        lane_cap = getattr(injector, "lane_capacity", 0)
        batches: list[list[int]] = []
        scalar_pending = list(pending)
        if pending and lane_cap > 1 and fault_timeout is None:
            batches, scalar_pending = _lane_batches(injector,
                                                    sim_faults, pending)
            exec_stats["lane_batches"] = len(batches)
        meta = journal_meta

        def check_meta(fresh_meta: Mapping[str, Any]) -> None:
            if journal_meta is not None and dict(fresh_meta) != journal_meta:
                raise CampaignError(
                    "the journal's golden-run metadata does not match this "
                    "campaign's golden run; refusing to resume into a "
                    "different report"
                )
            if jrnl is not None:
                jrnl.set_meta(fresh_meta)

        campaign_ctx = tracer.span("campaign", hardening=hardening,
                                   seed=seed, faults=len(faults),
                                   unique_faults=len(unique),
                                   simulated=len(sim_faults),
                                   jobs=jobs, cycles=len(stimulus))
        with campaign_ctx as campaign_span:
            if pending and jobs > 1:
                snap_cycles = tuple(sorted(
                    {sim_faults[k].cycle for k in pending} | {0}
                ))
                session_factory = functools.partial(
                    _CampaignSession, injector_factory, stimulus,
                    snap_cycles, config,
                )
                pool = SupervisedPool(
                    session_factory, jobs,
                    task_timeout=fault_timeout,
                    max_retries=max_retries,
                    start_method=start_method,
                    tracer=tracer,
                )

                # A task is one scalar fault or one lane batch (a tuple
                # of faults classified in a single bit-parallel replay);
                # task_map resolves each task back to its sim indices.
                task_map: list[list[int]] = [list(batch)
                                             for batch in batches]
                tasks: list[Any] = [
                    tuple(sim_faults[k] for k in batch)
                    for batch in batches
                ]
                for k in scalar_pending:
                    task_map.append([k])
                    tasks.append(sim_faults[k])

                def on_result(i: int, result: Any) -> None:
                    records = (result if isinstance(result, list)
                               else [result])
                    for k, record in zip(task_map[i], records):
                        sim_records[k] = record
                        if jrnl is not None:
                            jrnl.append_record(
                                serialize_fault_record(record)
                            )

                with tracer.span("shards") as shard_span:
                    try:
                        outcome = pool.run(
                            tasks,
                            on_result=on_result, on_meta=check_meta,
                        )
                    except TaskPickleError as exc:
                        raise CampaignError(
                            "run_campaign(jobs>1) needs an injector_factory "
                            "that pickles under the active start method: "
                            f"{exc}"
                        ) from exc
                    except MetaMismatchError as exc:
                        raise CampaignError(
                            "parallel campaign shards disagree on the "
                            "golden run; the injector factory is not "
                            "deterministic across processes"
                        ) from exc
                    except PoolError as exc:
                        raise CampaignError(str(exc)) from exc
                if shard_span.dur:
                    shard_span.annotate(
                        faults_per_s=round(len(pending) / shard_span.dur, 2)
                    )
                meta = outcome.meta if outcome.meta is not None else meta
                exec_stats.update(pool.stats)
                exec_stats["simulated"] = len(pending)
                exec_stats["journal_hits"] = journal_hits
                for i, failure in outcome.failures.items():
                    for k in task_map[i]:
                        sim_failures[k] = failure
            elif pending or meta is None:
                # Sequential replay — also the path a full resume with a
                # meta-less journal takes, just to rebuild the golden
                # facts the report header needs.
                if injector is None:
                    injector = injector_factory()
                snap_cycles = {sim_faults[k].cycle for k in pending} | {0}
                with tracer.span("golden") as golden_span:
                    golden = _golden_run(injector, stimulus, config,
                                         snap_cycles)
                golden_span.annotate(selfcheck=golden.selfcheck,
                                     done=golden.done,
                                     drain_cycles=golden.drain_cycles)
                fresh_meta = _golden_meta(injector, golden)
                check_meta(fresh_meta)
                meta = fresh_meta
                replayed: list[FaultRecord] = []
                with tracer.span("replay") as replay_span:
                    for batch in batches:
                        batch_faults = [sim_faults[k] for k in batch]
                        label = (f"lanes[{len(batch)}]"
                                 f"@{min(f.cycle for f in batch_faults)}")
                        with tracer.span(label) as batch_span:
                            try:
                                batch_records = _classify_batch(
                                    injector, batch_faults, stimulus,
                                    golden, config,
                                )
                            except Exception:
                                injector.clear_faults()
                                batch_records = [
                                    _classify(injector, fault, stimulus,
                                              golden, config)
                                    for fault in batch_faults
                                ]
                            batch_span.annotate(
                                faults=len(batch),
                                outcomes=_outcome_tally(batch_records),
                            )
                        for k, record in zip(batch, batch_records):
                            replayed.append(record)
                            sim_records[k] = record
                            if jrnl is not None:
                                jrnl.append_record(
                                    serialize_fault_record(record)
                                )
                    for k in scalar_pending:
                        fault = sim_faults[k]
                        label = (f"{fault.kind}:{fault.target}"
                                 f"[{fault.bit}]@{fault.cycle}")
                        record: FaultRecord | None = None
                        detail = ""
                        with tracer.span(label) as fault_span:
                            for attempt in range(max_retries + 1):
                                try:
                                    with time_limit(fault_timeout,
                                                    label=label):
                                        record = _classify(
                                            injector, fault, stimulus,
                                            golden, config,
                                        )
                                    break
                                except DeadlineExceeded as exc:
                                    exec_stats["timeouts"] += 1
                                    detail = str(exc)
                                    if attempt < max_retries:
                                        exec_stats["timeout_retries"] += 1
                        if record is None:
                            fault_span.annotate(outcome="timed_out")
                            exec_stats["quarantined"] += 1
                            sim_failures[k] = {"error": "timed_out",
                                               "detail": detail}
                        else:
                            fault_span.annotate(outcome=record.outcome)
                            replayed.append(record)
                            sim_records[k] = record
                            if jrnl is not None:
                                jrnl.append_record(
                                    serialize_fault_record(record)
                                )
                replay_span.annotate(
                    faults=len(pending),
                    outcomes=_outcome_tally(replayed),
                )
                if replay_span.dur:
                    replay_span.annotate(
                        faults_per_s=round(len(pending) / replay_span.dur, 2)
                    )
                stats = _sim_stats(injector)
                if stats is not None:
                    campaign_span.annotate(sim_stats=stats)
            # else: full resume — every record and the golden metadata
            # came from the journal; nothing to simulate.
            if collapse:
                # Expand representative records back over the full list:
                # a synthesized masked record for pruned faults, the
                # shared record object where the fault was its own
                # representative, and a rewrap carrying the original
                # fault otherwise.  Quarantined representatives stay
                # ``None`` and surface in the errors section below.
                unique_records: list[FaultRecord | None] = []
                for fault, rep, masked in zip(unique, canonical,
                                              masked_flags):
                    if masked:
                        unique_records.append(FaultRecord(fault, "masked"))
                        continue
                    record = sim_records[sim_index[rep]]
                    if record is None or rep == fault:
                        unique_records.append(record)
                    else:
                        unique_records.append(FaultRecord(
                            fault, record.outcome,
                            record.first_divergence, record.detail,
                        ))
                if jrnl is not None:
                    # Journal the expanded records too — not just the
                    # representatives — so a later resume of the same
                    # campaign (collapsed or plain) finds every fault
                    # under its own key.  append_record dedups by key,
                    # so representatives are not re-written.
                    for record in unique_records:
                        if record is not None:
                            jrnl.append_record(
                                serialize_fault_record(record)
                            )
                campaign_span.annotate(
                    collapse=collapse_stats,
                    expanded_records=sum(
                        1 for record in unique_records if record is not None
                    ),
                )
            else:
                unique_records = sim_records
            campaign_span.annotate(design=design or meta["design"],
                                   flow=meta["flow"],
                                   resilience=dict(exec_stats))

        records: list[FaultRecord] = []
        errors: list[dict[str, Any]] = []
        for fault in faults:
            u = index_of[fault]
            record = unique_records[u]
            if record is None:
                failure = sim_failures.get(
                    sim_index[canonical[u]],
                    {"error": "timed_out", "detail": ""},
                )
                errors.append({"fault": fault.as_dict(),
                               "error": failure["error"],
                               "detail": failure["detail"]})
            else:
                records.append(record)
    finally:
        if jrnl is not None:
            jrnl.close()

    return CampaignResult(
        design=design or meta["design"],
        flow=meta["flow"],
        hardening=hardening,
        seed=seed,
        cycles=len(stimulus),
        observed=meta["observed"],
        detect_signals=list(config.detect_signals),
        golden_selfcheck=meta["selfcheck"],
        golden_done=meta["done"],
        golden_drain_cycles=meta["drain_cycles"],
        records=records,
        collapse=collapse_stats,
        net_scores=net_scores,
        errors=errors,
        exec_stats=exec_stats,
    )
