"""Fault-injection campaigns: fault lists, golden runs, classification.

A campaign replays one deterministic stimulus once fault-free (the
*golden run*, checkpointed at every injection cycle) and then once per
fault, restoring the checkpoint at the fault's cycle, injecting, and
comparing the observed outputs against the golden trace.  Every fault is
classified into exactly one outcome:

``masked``    no observed output ever diverged and the run completed;
``sdc``       silent data corruption — outputs diverged, nothing fired;
``detected``  a designated detection signal rose where the golden run's
              was low, or the simulator itself raised on the fault;
``hang``      the done-signal never reached its quiescent value within
              the drain budget (cycle-budget watchdog).

Precedence when several apply: ``hang`` > ``detected`` > ``sdc``.  The
taxonomy and the checkpoint-replay structure follow simulation-based
fault injection practice (DAVOS); determinism is end-to-end — the same
seed yields byte-identical reports.
"""

from __future__ import annotations

import json
import random
from dataclasses import dataclass, field
from typing import Any, Mapping, Sequence

#: The closed outcome taxonomy, in report order.
OUTCOMES = ("masked", "sdc", "detected", "hang")

#: Fault kinds per flow (SEU everywhere; net faults are gate-level).
RTL_KINDS = ("seu",)
GATE_KINDS = ("seu", "sa0", "sa1", "flip")


@dataclass(frozen=True)
class Fault:
    """One injection: *kind* at *target*, bit *bit*, before cycle *cycle*."""

    kind: str    # "seu" | "sa0" | "sa1" | "flip"
    target: str  # register name (rtl) or net name (netlist)
    bit: int     # bit index within the register; 0 for single nets
    cycle: int   # stimulus index at whose boundary the fault appears

    def as_dict(self) -> dict[str, Any]:
        return {"kind": self.kind, "target": self.target,
                "bit": self.bit, "cycle": self.cycle}


@dataclass
class FaultRecord:
    """A fault plus its classified outcome."""

    fault: Fault
    outcome: str
    first_divergence: int | None = None
    detail: str = ""

    def as_dict(self) -> dict[str, Any]:
        record = self.fault.as_dict()
        record["outcome"] = self.outcome
        record["first_divergence"] = self.first_divergence
        if self.detail:
            record["detail"] = self.detail
        return record


@dataclass
class CampaignConfig:
    """What the campaign drives, observes and classifies against.

    Parameters
    ----------
    reset_name / reset_cycles:
        The reset input and how many cycles it is held before the
        stimulus starts (the golden snapshot is taken after release).
    observed:
        Output names compared against the golden trace; ``None`` means
        every output.
    detect_signals:
        Outputs that signal *detection* (parity errors, ack errors...):
        a 1 where the golden run had 0 classifies the fault as detected.
    done_signal / done_value:
        Quiescence test for hang detection: after the stimulus the design
        gets up to *drain_budget* extra cycles of *idle_input* to bring
        this output to this value.  ``None`` disables hang detection.
    """

    reset_name: str = "reset"
    reset_cycles: int = 2
    observed: Sequence[str] | None = None
    detect_signals: Sequence[str] = ()
    done_signal: str | None = None
    done_value: int = 0
    drain_budget: int = 2000
    idle_input: Mapping[str, int] = field(default_factory=dict)


@dataclass
class CampaignResult:
    """Everything one campaign produced, JSON-serializable."""

    design: str
    flow: str
    hardening: str
    seed: int
    cycles: int
    observed: list[str]
    detect_signals: list[str]
    golden_selfcheck: str
    golden_done: bool
    golden_drain_cycles: int
    records: list[FaultRecord]

    @property
    def outcomes(self) -> dict[str, int]:
        counts = {outcome: 0 for outcome in OUTCOMES}
        for record in self.records:
            counts[record.outcome] += 1
        return counts

    def as_dict(self) -> dict[str, Any]:
        return {
            "schema": "repro-fault-campaign/v1",
            "design": self.design,
            "flow": self.flow,
            "hardening": self.hardening,
            "seed": self.seed,
            "cycles": self.cycles,
            "observed": list(self.observed),
            "detect_signals": list(self.detect_signals),
            "golden": {
                "selfcheck": self.golden_selfcheck,
                "done": self.golden_done,
                "drain_cycles": self.golden_drain_cycles,
            },
            "injected": len(self.records),
            "outcomes": self.outcomes,
            "faults": [record.as_dict() for record in self.records],
        }

    def to_json(self) -> str:
        return json.dumps(self.as_dict(), indent=2) + "\n"

    def summary_rows(self) -> list[dict[str, Any]]:
        """One table row (for ``repro.eval.format_table``)."""
        counts = self.outcomes
        return [{
            "design": self.design, "flow": self.flow,
            "hardening": self.hardening, "faults": len(self.records),
            **counts,
        }]

    def __repr__(self) -> str:
        counts = self.outcomes
        body = ", ".join(f"{k}={v}" for k, v in counts.items())
        return (f"CampaignResult({self.design!r}, {self.flow}, "
                f"{self.hardening}, {body})")


def generate_fault_list(injector, n: int, cycles: int, seed: int,
                        kinds: Sequence[str] | None = None) -> list[Fault]:
    """Seeded, deterministic fault list: target × cycle × bit.

    Targets are drawn from the injector's deterministic enumerations;
    injection cycles are uniform over ``[1, cycles)`` so every fault has
    at least one post-reset cycle before it and one stimulus cycle after.
    """
    if kinds is None:
        kinds = RTL_KINDS if injector.flow == "rtl" else GATE_KINDS
    seu = injector.seu_targets()
    nets = injector.net_targets()
    kinds = tuple(k for k in kinds
                  if k == "seu" and seu or k != "seu" and nets)
    if n > 0 and not kinds:
        raise ValueError("no fault targets available for the chosen kinds")
    rng = random.Random(seed)
    faults: list[Fault] = []
    for _ in range(n):
        kind = kinds[rng.randrange(len(kinds))]
        if kind == "seu":
            target, width = seu[rng.randrange(len(seu))]
            bit = rng.randrange(width)
        else:
            target, bit = nets[rng.randrange(len(nets))], 0
        faults.append(Fault(kind, target, bit,
                            rng.randrange(1, max(cycles, 2))))
    return faults


def _observed_names(outputs: Mapping[str, int],
                    config: CampaignConfig) -> list[str]:
    if config.observed is not None:
        return list(config.observed)
    return sorted(outputs)


def _drain(injector, config: CampaignConfig) -> tuple[bool, int]:
    """Step idle input until the done-signal quiesces; (done, cycles)."""
    if config.done_signal is None:
        return True, 0
    idle = {config.reset_name: 0, **dict(config.idle_input)}
    outputs = injector.step(idle)
    for extra in range(config.drain_budget):
        if outputs.get(config.done_signal) == config.done_value:
            return True, extra + 1
        outputs = injector.step(idle)
    return (outputs.get(config.done_signal) == config.done_value,
            config.drain_budget + 1)


def run_campaign(
    injector,
    stimulus: Sequence[Mapping[str, int]],
    faults: Sequence[Fault],
    config: CampaignConfig | None = None,
    *,
    design: str = "",
    hardening: str = "none",
    seed: int = 0,
) -> CampaignResult:
    """Golden run + per-fault replay + classification (see module doc)."""
    config = config or CampaignConfig()
    stimulus = [{config.reset_name: 0, **dict(entry)} for entry in stimulus]
    if not stimulus:
        raise ValueError("campaign needs a non-empty stimulus")
    for fault in faults:
        if not 0 <= fault.cycle < len(stimulus):
            raise ValueError(
                f"fault cycle {fault.cycle} outside the "
                f"{len(stimulus)}-cycle stimulus"
            )

    # ---- reset, then golden run with checkpoints ---------------------
    for _ in range(config.reset_cycles):
        injector.step({config.reset_name: 1})
    base = injector.snapshot()
    snap_cycles = {fault.cycle for fault in faults} | {0}
    snapshots: dict[int, tuple] = {}
    golden: list[dict[str, int]] = []
    for cycle, entry in enumerate(stimulus):
        if cycle in snap_cycles:
            snapshots[cycle] = injector.snapshot()
        golden.append(injector.step(entry))
    golden_done, golden_drain = _drain(injector, config)
    observed = _observed_names(golden[0], config)

    # ---- golden self-check: restore+replay must reproduce the trace --
    injector.restore(base)
    selfcheck = "masked"
    for cycle, entry in enumerate(stimulus):
        outputs = injector.step(entry)
        if any(outputs.get(k) != golden[cycle].get(k) for k in observed):
            selfcheck = "sdc"
            break

    # ---- per-fault replay -------------------------------------------
    records: list[FaultRecord] = []
    for fault in faults:
        injector.restore(snapshots[fault.cycle])
        first_divergence: int | None = None
        detected = False
        detail = ""
        hang = False
        try:
            injector.inject(fault)
            for cycle in range(fault.cycle, len(stimulus)):
                outputs = injector.step(stimulus[cycle])
                reference = golden[cycle]
                if first_divergence is None and any(
                    outputs.get(k) != reference.get(k) for k in observed
                ):
                    first_divergence = cycle
                if not detected and any(
                    outputs.get(k) and not reference.get(k)
                    for k in config.detect_signals
                ):
                    detected = True
            if golden_done:
                done, _ = _drain(injector, config)
                hang = not done
        except Exception as exc:  # simulator flagged the fault itself
            detected = True
            detail = f"{type(exc).__name__}: {exc}"
        finally:
            injector.clear_faults()
        if hang:
            outcome = "hang"
        elif detected:
            outcome = "detected"
        elif first_divergence is not None:
            outcome = "sdc"
        else:
            outcome = "masked"
        records.append(FaultRecord(fault, outcome, first_divergence, detail))

    return CampaignResult(
        design=design or getattr(injector, "design", injector.flow),
        flow=injector.flow,
        hardening=hardening,
        seed=seed,
        cycles=len(stimulus),
        observed=observed,
        detect_signals=list(config.detect_signals),
        golden_selfcheck=selfcheck,
        golden_done=golden_done,
        golden_drain_cycles=golden_drain,
        records=records,
    )
