"""The bundled fault-injection scenario: campaigns on the ExpoCU.

This is what ``repro inject`` runs: the paper's auto-exposure control
unit is synthesized through the OSSS flow, one deterministic camera
frame is driven through it, and seeded faults are injected at the RTL
or gate level — optionally after hardening the netlist with the
primitives from :mod:`repro.fault.harden`.
"""

from __future__ import annotations

import functools
import random
from typing import Mapping

from repro.fault.campaign import (
    CampaignConfig,
    CampaignResult,
    generate_fault_list,
    run_campaign,
)
from repro.fault.harden import harden_circuit
from repro.fault.inject import (
    FaultableGateSimulator,
    GateFaultInjector,
    RtlFaultInjector,
)
from repro.rtl.simulate import RtlSimulator

#: The ExpoCU's functional outputs, compared cycle-by-cycle against the
#: golden trace (hardening may add detection outputs on top).
EXPOCU_OBSERVED = (
    "scl", "sda_out", "sda_oe", "exposure", "gain", "mean",
    "too_dark", "too_bright", "ctrl_busy",
)

#: Inputs held during reset and post-stimulus drain.
EXPOCU_IDLE = dict(pix=0, pix_valid=0, line_strobe=0, frame_strobe=0,
                   sda_in=1)


def expocu_stimulus(seed: int, frames: int = 1, side: int = 8,
                    idle: int = 120) -> list[dict[str, int]]:
    """Deterministic camera-frame stimulus (same shape as claim R6)."""
    rng = random.Random(seed)
    stim: list[dict[str, int]] = []
    for _ in range(frames):
        stim.append(dict(EXPOCU_IDLE, frame_strobe=1))
        stim.append(dict(EXPOCU_IDLE, frame_strobe=1))
        for _ in range(side):
            stim.append(dict(EXPOCU_IDLE, line_strobe=1))
            for _ in range(side):
                stim.append(dict(EXPOCU_IDLE, pix=rng.randint(0, 255),
                                 pix_valid=1))
        stim.extend(dict(EXPOCU_IDLE) for _ in range(idle))
    return stim


def _build_expocu_rtl(side: int):
    from repro.expocu import ExpoCU
    from repro.hdl import Clock, NS, Signal
    from repro.synth.modulegen import synthesize
    from repro.types import Bit
    from repro.types.spec import bit

    # I2C_DIVIDER=2 (instead of the demo's 4) halves the post-frame I²C
    # transaction: every fault replay must simulate to quiescence for
    # hang classification, so the transaction length is the campaign's
    # cost driver.  The architecture under test is identical.
    dut = ExpoCU[side, side, 128, 2]("expocu", Clock("clk", 10 * NS),
                                     Signal("rst", bit(), Bit(1)))
    return synthesize(dut, observe_children=False)


def expocu_injector(flow: str, hardening: str = "none", side: int = 8,
                    backend: str = "event"):
    """Build the ExpoCU and wrap it in the flow's fault injector.

    *backend* selects the gate-level evaluation engine
    (:class:`~repro.netlist.sim.GateSimulator`): ``"event"``, the
    code-generated ``"compiled"`` fast path, or ``"bitparallel"`` —
    the lane-packed evaluator that lets the campaign classify up to 64
    stuck-at faults per replay.
    """
    if flow == "rtl" and backend != "event":
        raise ValueError(
            "the compiled evaluator backend operates on the netlist flow "
            "(--flow netlist); RTL injection is always event-driven"
        )
    rtl = _build_expocu_rtl(side)
    if flow == "rtl":
        if hardening != "none":
            raise ValueError(
                "hardening operates on the netlist flow "
                "(--flow netlist); the RTL flow is always unhardened"
            )
        return RtlFaultInjector(RtlSimulator(rtl))
    if flow == "netlist":
        from repro.netlist.opt import optimize
        from repro.netlist.techmap import map_module

        circuit = map_module(rtl)
        optimize(circuit)
        if hardening != "none":
            harden_circuit(circuit, hardening)
        return GateFaultInjector(
            FaultableGateSimulator(circuit, backend=backend)
        )
    raise ValueError(f"unknown flow {flow!r} (expected 'rtl' or 'netlist')")


def expocu_config(hardening: str = "none",
                  drain_budget: int = 4000) -> CampaignConfig:
    """Campaign configuration for the ExpoCU scenario."""
    detect = ("parity_err",) if "parity" in hardening else ()
    return CampaignConfig(
        reset_name="reset",
        reset_cycles=2,
        observed=EXPOCU_OBSERVED,
        detect_signals=detect,
        done_signal="ctrl_busy",
        done_value=0,
        drain_budget=drain_budget,
        idle_input=dict(EXPOCU_IDLE),
    )


def expocu_campaign(
    flow: str = "rtl",
    faults: int = 50,
    seed: int = 1,
    hardening: str = "none",
    side: int = 8,
    stimulus: list[Mapping[str, int]] | None = None,
    jobs: int = 1,
    backend: str = "event",
    collapse: bool = False,
    tracer=None,
    fault_timeout: float | None = None,
    max_retries: int = 1,
    journal: str | None = None,
    resume: bool = False,
) -> CampaignResult:
    """Run the bundled ExpoCU campaign; fully deterministic per seed.

    ``jobs > 1`` shards the fault list across supervised worker
    processes, each of which rebuilds the injector from this factory —
    the report stays byte-identical to the sequential run, including
    when workers crash and their faults are re-queued.
    ``backend="compiled"`` swaps the netlist flow onto the
    code-generated gate evaluator; ``backend="bitparallel"`` adds lane
    packing on top, classifying up to 64 stuck-at faults per replay
    (transients fall back to scalar lanes) with, again, a
    byte-identical report.  ``collapse=True`` (netlist flow)
    statically reduces the simulated set via fault equivalence and
    quiescence pruning — the report stays byte-identical, with
    collapse stats and per-net observability scores attached to the
    result.  *fault_timeout*/*max_retries* bound each replay in
    wall-clock seconds with retry-then-quarantine semantics, and
    *journal*/*resume* checkpoint the campaign for crash-safe resume
    (see :func:`repro.fault.campaign.run_campaign`).  *tracer* (a
    :class:`repro.obs.Tracer`) profiles injector construction and the
    campaign (``repro inject --profile``).
    """
    from repro.obs.profiler import NULL_TRACER

    tracer = tracer or NULL_TRACER
    factory = functools.partial(expocu_injector, flow, hardening, side,
                                backend)
    with tracer.span("build_injector", flow=flow, backend=backend,
                     hardening=hardening):
        injector = factory()
    if stimulus is None:
        stimulus = expocu_stimulus(seed, frames=1, side=side)
    fault_list = generate_fault_list(injector, faults, len(stimulus), seed)
    return run_campaign(
        injector, stimulus, fault_list, expocu_config(hardening),
        design=f"ExpoCU[{side},{side}]", hardening=hardening, seed=seed,
        jobs=jobs, injector_factory=factory, collapse=collapse,
        tracer=tracer, fault_timeout=fault_timeout,
        max_retries=max_retries, journal=journal, resume=resume,
    )
