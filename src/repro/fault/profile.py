"""Golden-trace quiescence profiling for stuck-at fault pruning.

The observation DAVOS's ``SBFI_Profiler`` exploits: clamping a net to a
value it already holds changes nothing.  If the golden run's settled
value of net *n* equals *v* at every point the campaign could observe a
difference — from the fault's injection cycle through the end of the
post-stimulus drain — then ``sa``-*v* on *n* at that cycle is provably
``masked`` and its record can be synthesized without simulating it.

One instrumented golden run samples every net at the two per-cycle
points that matter:

* **A points** — mid-cycle, after the cycle's inputs are driven and the
  combinational logic has settled but before the flop commit.  This is
  where :meth:`~repro.netlist.sim.GateSimulator.step` peeks the outputs
  and samples the flop D pins, so any clamp/golden mismatch here can
  become a divergence.
* **B points** — after the flop commit has settled.  These only
  matter for flop-output (state) nets, whose clamp rewrites committed
  state the moment the fault's checkpoint is restored; sampling them
  for every net is conservative.

Combinational values are a pure function of (flop state, inputs), so a
clamp that agrees with golden at an A point cannot perturb that cycle,
and a state clamp that agrees at the enclosing B points cannot perturb
the committed state.  The first *safe* injection cycle for sa-*v* on a
net is therefore ``max(last_bad_B + 2, last_bad_A + 1)`` where
``last_bad_X`` is the last sample index at which the golden value
differed from *v* (the post-reset base state counts as B index -1:
restoring the cycle-0 checkpoint re-materializes it).

Only permanent stuck-at faults on the gate flow are prunable; ``seu``
and ``flip`` are one-shot perturbations whose effect is not captured by
value agreement, so :meth:`QuiescenceProfile.masks` never claims them.
"""

from __future__ import annotations

from typing import Mapping, Sequence

from repro.fault.campaign import CampaignConfig, Fault


class QuiescenceProfile:
    """Per-target first-safe-cycle tables for sa0/sa1 pruning."""

    __slots__ = ("quiet", "sample_points")

    def __init__(self, quiet: dict[str, tuple[int, int]],
                 sample_points: int) -> None:
        #: target name → ``(first safe sa0 cycle, first safe sa1 cycle)``.
        self.quiet = quiet
        #: How many A/B samples backed the tables (for reporting).
        self.sample_points = sample_points

    def masks(self, fault: Fault) -> bool:
        """True when *fault* is provably masked under this stimulus."""
        if fault.kind not in ("sa0", "sa1"):
            return False
        bounds = self.quiet.get(fault.target)
        if bounds is None:
            return False
        return fault.cycle >= bounds[0 if fault.kind == "sa0" else 1]

    def __repr__(self) -> str:
        return (f"QuiescenceProfile(targets={len(self.quiet)}, "
                f"sample_points={self.sample_points})")


def _settle_driven(sim, entry: Mapping[str, int]) -> None:
    """Drive *entry* and settle to the A-point fixpoint without stepping.

    Idempotent with the step that follows: the step's own drive finds
    the inputs already set and changes nothing.
    """
    dirty = sim.drive(**dict(entry))
    if sim._compiled is not None:
        sim._settle_all()
    elif dirty:
        sim._propagate(dirty)


def quiescence_profile(injector, stimulus: Sequence[Mapping[str, int]],
                       config: CampaignConfig) -> QuiescenceProfile:
    """Run one instrumented golden pass and build the pruning tables.

    *stimulus* must already be normalized the way
    :func:`~repro.fault.campaign.run_campaign` replays it (reset bit
    merged into every entry).  The injector is snapshotted on entry and
    restored on exit, so the campaign's real golden run afterwards sees
    a pristine simulator.

    Only meaningful for the gate flow; any other injector yields an
    empty profile that prunes nothing.
    """
    if getattr(injector, "flow", None) != "netlist":
        return QuiescenceProfile({}, 0)
    sim = injector.sim
    base = injector.snapshot()
    try:
        for _ in range(config.reset_cycles):
            injector.step({config.reset_name: 1})

        n_slots = len(sim._values)
        last_a0 = [-1] * n_slots  # last A index where the value was 0
        last_a1 = [-1] * n_slots
        last_b0 = [-2] * n_slots  # last B index (base state is B = -1)
        last_b1 = [-2] * n_slots
        samples = 0

        def sample(last0: list[int], last1: list[int], t: int) -> None:
            sim._ensure_settled()
            for slot, value in enumerate(sim._values):
                if value:
                    last1[slot] = t
                else:
                    last0[slot] = t

        sample(last_b0, last_b1, -1)
        samples += 1
        t = 0
        for entry in stimulus:
            _settle_driven(sim, entry)
            sample(last_a0, last_a1, t)
            injector.step(entry)
            sample(last_b0, last_b1, t)
            samples += 2
            t += 1
        if config.done_signal is not None:
            idle = {config.reset_name: 0, **dict(config.idle_input)}
            for _ in range(config.drain_budget + 1):
                _settle_driven(sim, idle)
                sample(last_a0, last_a1, t)
                outputs = injector.step(idle)
                sample(last_b0, last_b1, t)
                samples += 2
                t += 1
                if outputs.get(config.done_signal) == config.done_value:
                    break

        quiet: dict[str, tuple[int, int]] = {}
        slot_of = sim._slot
        for name, net in injector.addressable_nets().items():
            slot = slot_of.get(net.uid)
            if slot is None:
                continue
            # sa0 is unsafe while the golden value is still sometimes 1.
            quiet[name] = (
                max(last_b1[slot] + 2, last_a1[slot] + 1),
                max(last_b0[slot] + 2, last_a0[slot] + 1),
            )
        return QuiescenceProfile(quiet, samples)
    finally:
        injector.restore(base)
