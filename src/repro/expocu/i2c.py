"""I²C bus master (paper §2, §12).

The module behind the paper's development-effort anecdote (*"The
implementation of a complete I²C master module e.g. took a single day"*).
Written behaviorally in the OSSS style: the bit-level protocol lives in
small generator helpers (``yield from self._half_bit()``, ``_send_byte``)
that the behavioral synthesizer inlines into one FSM — the paper's point
that *"especially in the implementation of controlling functionality the
behavioral description has advantages versus RTL coding"*.

Transfer format (write-only register access, the ExpoCU's need):
START · device address + W · ACK · register address · ACK · data · ACK ·
STOP.  SDA is modeled open-drain: ``sda_out``/``sda_oe`` outward,
``sda_in`` for the slave's acknowledge.
"""

from __future__ import annotations

from repro.hdl import Input, Module, Output
from repro.osss import template
from repro.types import Bit, Unsigned
from repro.types.spec import bit, unsigned


@template("DIVIDER")
class I2cMaster(Module):
    """Write-only I²C master with a templated clock divider.

    Template parameter ``DIVIDER`` is the number of system-clock cycles per
    quarter SCL period (the paper's 66 MHz system clock with DIVIDER=41
    gives a ~400 kHz bus).
    """

    start = Input(bit())
    dev_addr = Input(unsigned(7))
    reg_addr = Input(unsigned(8))
    data = Input(unsigned(8))
    sda_in = Input(bit())
    scl = Output(bit())
    sda_out = Output(bit())
    sda_oe = Output(bit())
    busy = Output(bit())
    done = Output(bit())
    ack_error = Output(bit())

    def __init__(self, name, clk, rst):
        super().__init__(name)
        self.cthread(self.run, clock=clk, reset=rst)

    # ------------------------------------------------------------------
    # behavioral helpers (inlined by the synthesizer)
    # ------------------------------------------------------------------
    def _quarter(self):
        """Wait one quarter of an SCL period."""
        pause = Unsigned(16, 0)
        while pause < self.DIVIDER:
            pause = (pause + 1).resized(16)
            yield

    def _clock_pulse(self):
        """Raise and lower SCL around the currently driven SDA value."""
        yield from self._quarter()
        self.scl.write(Bit(1))
        yield from self._quarter()
        yield from self._quarter()
        self.scl.write(Bit(0))
        yield from self._quarter()

    def _send_byte(self, byte):
        """Shift one byte out MSB-first; returns the slave's ACK bit."""
        index = Unsigned(4, 0)
        while index < 8:
            self.sda_oe.write(Bit(1))
            self.sda_out.write(byte.bit(7))
            byte = (byte << 1).resized(8)
            yield from self._clock_pulse()
            index = (index + 1).resized(4)
        # Acknowledge slot: release SDA, sample while SCL is high.
        self.sda_oe.write(Bit(0))
        yield from self._quarter()
        self.scl.write(Bit(1))
        yield from self._quarter()
        ack_bit = self.sda_in.read()
        yield from self._quarter()
        self.scl.write(Bit(0))
        yield from self._quarter()
        return ack_bit

    # ------------------------------------------------------------------
    # main protocol engine
    # ------------------------------------------------------------------
    def run(self):
        """Idle until ``start``; run one full write transfer."""
        self.scl.write(Bit(1))
        self.sda_out.write(Bit(1))
        self.sda_oe.write(Bit(1))
        self.busy.write(Bit(0))
        self.done.write(Bit(0))
        self.ack_error.write(Bit(0))
        yield
        while True:
            if not self.start.read():
                self.done.write(Bit(0))
                yield
                continue
            self.busy.write(Bit(1))
            self.done.write(Bit(0))
            self.ack_error.write(Bit(0))
            device = self.dev_addr.read()
            register = self.reg_addr.read()
            payload = self.data.read()
            # START: SDA falls while SCL is high.
            self.sda_oe.write(Bit(1))
            self.sda_out.write(Bit(1))
            self.scl.write(Bit(1))
            yield from self._quarter()
            self.sda_out.write(Bit(0))
            yield from self._quarter()
            self.scl.write(Bit(0))
            yield from self._quarter()
            # Address byte: 7-bit device address + write bit (0).
            address_byte = (device.resized(8) << 1).resized(8)
            nack1 = yield from self._send_byte(address_byte)
            nack2 = yield from self._send_byte(register)
            nack3 = yield from self._send_byte(payload)
            if nack1 | nack2 | nack3:
                self.ack_error.write(Bit(1))
            # STOP: SDA rises while SCL is high.
            self.sda_oe.write(Bit(1))
            self.sda_out.write(Bit(0))
            yield from self._quarter()
            self.scl.write(Bit(1))
            yield from self._quarter()
            self.sda_out.write(Bit(1))
            yield from self._quarter()
            self.busy.write(Bit(0))
            self.done.write(Bit(1))
            yield
