"""Synthetic camera and scene model (testbench substitute, DESIGN.md §2).

The paper evaluated the ExpoCU against a real CMOS imager; this module is
the simulated stand-in: a deterministic scene (LCG-generated brightness
field), a sensor response ``pixel = clip(scene · exposure · gain / 2^13)``
with optional quantized noise, a pixel/line/frame strobe generator, and an
I²C slave that decodes the ExpoCU's register writes (0x10 exposure, 0x11
gain) — closing the same control loop the real hardware closes.

This model is testbench-only (never synthesized), so it uses full Python.
"""

from __future__ import annotations

from repro.hdl import Input, Module, Output
from repro.types import Bit, Unsigned
from repro.types.spec import bit, unsigned

#: I²C register map of the simulated imager.
REG_EXPOSURE = 0x10
REG_GAIN = 0x11
#: Default 7-bit device address.
CAMERA_ADDR = 0x21


def make_scene(width: int, height: int, mean: int, seed: int = 1,
               spread: int = 60) -> list[int]:
    """Deterministic brightness field with the requested mean (LCG)."""
    state = seed & 0x7FFFFFFF or 1
    values = []
    for _ in range(width * height):
        state = (1103515245 * state + 12345) & 0x7FFFFFFF
        offset = (state >> 16) % (2 * spread + 1) - spread
        values.append(max(0, min(255, mean + offset)))
    return values


class CameraModel(Module):
    """Scene + sensor + strobe generator + I²C slave (testbench only).

    Parameters
    ----------
    width, height:
        Frame geometry in pixels.
    scene_mean:
        Mean brightness of the generated scene (before exposure).
    blanking:
        Idle cycles between lines and frames.
    noise:
        If nonzero, adds a deterministic ±noise dither to each pixel.
    """

    pix = Output(unsigned(8))
    pix_valid = Output(bit())
    line_strobe = Output(bit())
    frame_strobe = Output(bit())
    scl = Input(bit())
    sda_master = Input(bit())
    sda_oe = Input(bit())
    sda_in = Output(bit())

    def __init__(self, name, clk, rst, width=16, height=16,
                 scene_mean=110, blanking=6, noise=0, seed=1):
        super().__init__(name)
        self.width = width
        self.height = height
        self.noise = noise
        self.scene = make_scene(width, height, scene_mean, seed)
        #: Sensor registers, written over I²C by the ExpoCU.
        self.exposure = 128
        self.gain = 64
        self.blanking = blanking
        self.frames_sent = 0
        self.register_log: list[tuple[int, int]] = []
        self.cthread(self.stream, clock=clk, reset=rst)
        self.cthread(self.i2c_slave, clock=clk, reset=rst)

    # ------------------------------------------------------------------
    # sensor model
    # ------------------------------------------------------------------
    def sensor_value(self, index: int) -> int:
        """Pixel response: scene × exposure × gain / 2^13, clipped."""
        raw = self.scene[index] * self.exposure * self.gain
        value = raw >> 13
        if self.noise:
            dither = ((index * 2654435761) >> 8) % (2 * self.noise + 1)
            value += dither - self.noise
        return max(0, min(255, value))

    def mean_pixel(self) -> float:
        """Current frame-average pixel value (for test assertions)."""
        total = sum(self.sensor_value(i)
                    for i in range(self.width * self.height))
        return total / (self.width * self.height)

    # ------------------------------------------------------------------
    # video timing
    # ------------------------------------------------------------------
    def stream(self):
        """Frame loop: frame strobe, then lines of valid pixels."""
        self.pix.write(Unsigned(8, 0))
        self.pix_valid.write(Bit(0))
        self.line_strobe.write(Bit(0))
        self.frame_strobe.write(Bit(0))
        yield
        while True:
            # Frame strobe: two cycles high so the synchronizer sees it.
            self.frame_strobe.write(Bit(1))
            yield
            yield
            self.frame_strobe.write(Bit(0))
            for _ in range(self.blanking):
                yield
            for row in range(self.height):
                self.line_strobe.write(Bit(1))
                yield
                yield
                self.line_strobe.write(Bit(0))
                for col in range(self.width):
                    index = row * self.width + col
                    self.pix.write(Unsigned(8, self.sensor_value(index)))
                    self.pix_valid.write(Bit(1))
                    yield
                self.pix_valid.write(Bit(0))
                for _ in range(self.blanking):
                    yield
            self.frames_sent += 1

    # ------------------------------------------------------------------
    # I²C slave
    # ------------------------------------------------------------------
    def _sda_level(self) -> int:
        """Resolved SDA as the slave sees it (open-drain pull-up)."""
        if int(self.sda_oe.read()):
            return int(self.sda_master.read())
        return 1

    def i2c_slave(self):
        """Bit-level I²C write decoder driving the sensor registers."""
        self.sda_in.write(Bit(1))
        prev_scl = 1
        prev_sda = 1
        receiving = False
        bits = 0
        shift = 0
        byte_index = 0
        reg_addr = None
        yield
        while True:
            scl = int(self.scl.read())
            sda = self._sda_level()
            if receiving and scl and prev_scl and prev_sda and not sda:
                pass  # repeated start (not used by the master)
            if not receiving:
                if prev_scl and scl and prev_sda and not sda:
                    receiving = True
                    bits = 0
                    shift = 0
                    byte_index = 0
                    reg_addr = None
            else:
                # STOP: SDA rises while SCL high.
                if prev_scl and scl and not prev_sda and sda:
                    receiving = False
                    self.sda_in.write(Bit(1))
                elif scl and not prev_scl:
                    # Rising edge: either a data bit or the ACK slot.
                    if bits < 8:
                        shift = ((shift << 1) | sda) & 0xFF
                        bits += 1
                        if bits == 8:
                            # Prepare ACK: drive SDA low for the ack bit.
                            self.sda_in.write(Bit(0))
                    else:
                        # Ack slot just sampled by the master.
                        pass
                elif not scl and prev_scl:
                    # Falling edge after the ack slot: book the byte.
                    if bits == 8:
                        bits = 9
                    elif bits == 9:
                        self.sda_in.write(Bit(1))
                        if byte_index == 0:
                            pass  # address byte; we accept any address
                        elif byte_index == 1:
                            reg_addr = shift
                        elif byte_index == 2 and reg_addr is not None:
                            self._write_register(reg_addr, shift)
                        byte_index += 1
                        bits = 0
                        shift = 0
            prev_scl = scl
            prev_sda = sda
            yield

    def _write_register(self, reg: int, value: int) -> None:
        self.register_log.append((reg, value))
        if reg == REG_EXPOSURE:
            self.exposure = max(1, value)
        elif reg == REG_GAIN:
            self.gain = max(1, value)
