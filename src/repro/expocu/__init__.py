"""The ExpoCU design example (paper §2), OSSS style, plus the camera model."""

from repro.expocu.alu import ALU_CLASSES, AluAdd, AluMax, AluMul, AluOp, AluSub, PolyAluUnit
from repro.expocu.camera import CAMERA_ADDR, REG_EXPOSURE, REG_GAIN, CameraModel, make_scene
from repro.expocu.expoparams import ExpoParamsUnit, SharedMultiplier
from repro.expocu.histogram import HistogramBins, HistogramUnit
from repro.expocu.i2c import I2cMaster
from repro.expocu.resetctl import ResetCtl
from repro.expocu.syncreg import CamSync, SyncRegister
from repro.expocu.threshold import ThresholdUnit
from repro.expocu.top import ExpoCU

__all__ = [
    "ALU_CLASSES",
    "AluAdd",
    "AluMax",
    "AluMul",
    "AluOp",
    "AluSub",
    "CAMERA_ADDR",
    "CamSync",
    "CameraModel",
    "ExpoCU",
    "ExpoParamsUnit",
    "HistogramBins",
    "HistogramUnit",
    "I2cMaster",
    "PolyAluUnit",
    "REG_EXPOSURE",
    "REG_GAIN",
    "ResetCtl",
    "SharedMultiplier",
    "SyncRegister",
    "ThresholdUnit",
    "make_scene",
]
