"""Reset control (paper §2).

Stretches the external reset into a clean synchronous system reset: after
the external reset deasserts, the internal reset stays asserted for a
templated number of cycles so every ExpoCU unit starts from a settled
state.
"""

from __future__ import annotations

from repro.hdl import Module, Output
from repro.osss import template
from repro.types import Bit, Unsigned
from repro.types.spec import bit, unsigned


@template("STRETCH")
class ResetCtl(Module):
    """Synchronous reset stretcher.

    The thread itself is reset by the *external* reset; once released it
    counts ``STRETCH`` cycles before dropping the internal ``sys_reset``.
    """

    sys_reset = Output(bit())

    def __init__(self, name, clk, ext_reset):
        super().__init__(name)
        self.cthread(self.stretch, clock=clk, reset=ext_reset)

    def stretch(self):
        """Hold ``sys_reset`` for STRETCH cycles after external release."""
        count = Unsigned(8, 0)
        self.sys_reset.write(Bit(1))
        yield
        while count < self.STRETCH:
            count = (count + 1).resized(8)
            self.sys_reset.write(Bit(1))
            yield
        while True:
            self.sys_reset.write(Bit(0))
            yield
