"""Camera data synchronization (paper §2, Fig. 2–5).

``SyncRegister`` is the paper's running example: a templated shift register
that captures an asynchronous camera line each clock and exposes edge
detection on the sampled history.  ``CamSync`` instantiates it exactly like
the paper's ``SC_MODULE(sync)`` (Fig. 4/5): one register per camera strobe,
reset in the prologue, ``write``/``rising_edge`` in the clocked loop.
"""

from __future__ import annotations

from repro.hdl import Input, Module, Output
from repro.osss import HwClass, template
from repro.types import Bit, BitVector
from repro.types.spec import bit, bits


@template("REGSIZE", "RESETVALUE")
class SyncRegister(HwClass):
    """A templated synchronizer/history register (paper Fig. 2–3).

    Template parameters
    -------------------
    REGSIZE:
        Number of history bits (synchronization depth).
    RESETVALUE:
        Initial/reset contents.
    """

    @classmethod
    def layout(cls):
        return {"value": bits(cls.REGSIZE)}

    def construct(self) -> None:
        self.value = BitVector(self.REGSIZE, self.RESETVALUE)

    def reset(self) -> None:
        """Reload the reset value (paper Fig. 5 reset section)."""
        self.value = BitVector(self.REGSIZE, self.RESETVALUE)

    def write(self, new_value: bit()) -> None:
        """Shift in one new sample; bit 0 is the newest (paper Fig. 7)."""
        shifted = self.value.range(self.REGSIZE - 2, 0)
        self.value = shifted.concat(Bit(new_value))

    def read_bit(self, index: int = 0) -> bit():
        """The sample captured *index* clocks ago."""
        return self.value.bit(index)

    def rising_edge(self, index: int = 0) -> bit():
        """1 when the history shows a 0→1 transition at *index*."""
        return self.value.bit(index) & ~self.value.bit(index + 1)

    def falling_edge(self, index: int = 0) -> bit():
        """1 when the history shows a 1→0 transition at *index*."""
        return ~self.value.bit(index) & self.value.bit(index + 1)

    def stable_high(self) -> bit():
        """1 when every captured sample is 1 (glitch filter)."""
        return self.value.reduce_and()

    def __eq__(self, other) -> bit():  # paper Fig. 11
        """Whole-object comparison (overloaded ``operator ==``)."""
        if isinstance(other, SyncRegister._template_base_):
            return self.value == other.value
        return NotImplemented

    def __hash__(self):
        return hash(("SyncRegister", self.value))


class CamSync(Module):
    """Synchronizes the camera strobes into the system clock domain.

    Inputs are the raw camera-side line/frame strobes and pixel-valid
    flag; outputs are clean, one-cycle pulses plus a two-stage-synchronized
    pixel-valid level.  This is the paper's ``sync`` module scaled to the
    ExpoCU's needs.
    """

    pix_valid = Input(bit())
    line_strobe = Input(bit())
    frame_strobe = Input(bit())
    pix_valid_sync = Output(bit())
    line_start = Output(bit())
    frame_start = Output(bit())

    #: Synchronizer depth (history bits per strobe).
    DEPTH = 4

    def __init__(self, name, clk, rst):
        super().__init__(name)
        self.valid_reg = SyncRegister[self.DEPTH, 0]()
        self.line_reg = SyncRegister[self.DEPTH, 0]()
        self.frame_reg = SyncRegister[self.DEPTH, 0]()
        self.cthread(self.sync_input, clock=clk, reset=rst)

    def sync_input(self):
        """Sample all strobes each clock; flag rising edges (Fig. 5)."""
        self.valid_reg.reset()
        self.line_reg.reset()
        self.frame_reg.reset()
        self.pix_valid_sync.write(Bit(0))
        self.line_start.write(Bit(0))
        self.frame_start.write(Bit(0))
        yield
        while True:
            self.valid_reg.write(self.pix_valid.read())
            self.line_reg.write(self.line_strobe.read())
            self.frame_reg.write(self.frame_strobe.read())
            self.pix_valid_sync.write(self.valid_reg.read_bit(1))
            self.line_start.write(self.line_reg.rising_edge(1))
            self.frame_start.write(self.frame_reg.rising_edge(1))
            yield
