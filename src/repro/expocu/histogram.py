"""Histogram acquisition (paper §2).

The ExpoCU's dataflow-dominated stage: every valid pixel is binned into an
eight-bin luminance histogram held in a :class:`HistogramBins` hardware
object; at each frame start the accumulated histogram is latched to the
outputs and cleared.  This module meets the paper's "cycle time of one
clock" constraint — one pixel is absorbed per clock.
"""

from __future__ import annotations

from repro.hdl import Input, Module, Output
from repro.osss import HwClass, template
from repro.types import Unsigned
from repro.types.spec import bit, unsigned


@template("COUNT_BITS")
class HistogramBins(HwClass):
    """Eight luminance-histogram counters as one hardware object.

    Template parameter ``COUNT_BITS`` sizes each saturating counter; for a
    W×H frame it must satisfy ``2**COUNT_BITS > W*H``.
    """

    @classmethod
    def layout(cls):
        return {f"bin{i}": unsigned(cls.COUNT_BITS) for i in range(8)}

    def clear(self) -> None:
        """Zero all bins (start of frame)."""
        self.bin0 = Unsigned(self.COUNT_BITS, 0)
        self.bin1 = Unsigned(self.COUNT_BITS, 0)
        self.bin2 = Unsigned(self.COUNT_BITS, 0)
        self.bin3 = Unsigned(self.COUNT_BITS, 0)
        self.bin4 = Unsigned(self.COUNT_BITS, 0)
        self.bin5 = Unsigned(self.COUNT_BITS, 0)
        self.bin6 = Unsigned(self.COUNT_BITS, 0)
        self.bin7 = Unsigned(self.COUNT_BITS, 0)

    def add(self, index: unsigned(3)) -> None:
        """Increment the bin selected by the pixel's top three bits."""
        if index == 0:
            self.bin0 = (self.bin0 + 1).resized(self.COUNT_BITS)
        elif index == 1:
            self.bin1 = (self.bin1 + 1).resized(self.COUNT_BITS)
        elif index == 2:
            self.bin2 = (self.bin2 + 1).resized(self.COUNT_BITS)
        elif index == 3:
            self.bin3 = (self.bin3 + 1).resized(self.COUNT_BITS)
        elif index == 4:
            self.bin4 = (self.bin4 + 1).resized(self.COUNT_BITS)
        elif index == 5:
            self.bin5 = (self.bin5 + 1).resized(self.COUNT_BITS)
        elif index == 6:
            self.bin6 = (self.bin6 + 1).resized(self.COUNT_BITS)
        else:
            self.bin7 = (self.bin7 + 1).resized(self.COUNT_BITS)

    def get(self, index: int):
        """Read one bin by compile-time index (latching loop unrolls)."""
        if index == 0:
            return self.bin0
        if index == 1:
            return self.bin1
        if index == 2:
            return self.bin2
        if index == 3:
            return self.bin3
        if index == 4:
            return self.bin4
        if index == 5:
            return self.bin5
        if index == 6:
            return self.bin6
        return self.bin7


@template("COUNT_BITS", PIX_BITS=8)
class HistogramUnit(Module):
    """Per-frame luminance histogram acquisition.

    One pixel per clock; at ``frame_start`` the bins latch to the outputs,
    ``hist_valid`` pulses for one cycle and the accumulators clear.
    """

    pix = Input(unsigned(8))
    pix_valid = Input(bit())
    frame_start = Input(bit())
    hist_valid = Output(bit())

    # Latched histogram outputs (declared per template width below).

    def __init__(self, name, clk, rst):
        super().__init__(name)
        for i in range(8):
            self.add_port(f"hist{i}", unsigned(self.COUNT_BITS), "out")
        self.bins = HistogramBins[self.COUNT_BITS]()
        self.cthread(self.acquire, clock=clk, reset=rst)

    def acquire(self):
        """Bin pixels; latch and clear at each frame start."""
        self.bins.clear()
        self.hist_valid.write(0)
        self.hist0.write(Unsigned(self.COUNT_BITS, 0))
        self.hist1.write(Unsigned(self.COUNT_BITS, 0))
        self.hist2.write(Unsigned(self.COUNT_BITS, 0))
        self.hist3.write(Unsigned(self.COUNT_BITS, 0))
        self.hist4.write(Unsigned(self.COUNT_BITS, 0))
        self.hist5.write(Unsigned(self.COUNT_BITS, 0))
        self.hist6.write(Unsigned(self.COUNT_BITS, 0))
        self.hist7.write(Unsigned(self.COUNT_BITS, 0))
        yield
        while True:
            if self.frame_start.read():
                self.hist0.write(self.bins.get(0))
                self.hist1.write(self.bins.get(1))
                self.hist2.write(self.bins.get(2))
                self.hist3.write(self.bins.get(3))
                self.hist4.write(self.bins.get(4))
                self.hist5.write(self.bins.get(5))
                self.hist6.write(self.bins.get(6))
                self.hist7.write(self.bins.get(7))
                self.hist_valid.write(1)
                self.bins.clear()
            else:
                self.hist_valid.write(0)
                if self.pix_valid.read():
                    self.bins.add(self.pix.read().range(7, 5).to_unsigned())
            yield
