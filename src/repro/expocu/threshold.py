"""Threshold calculation (paper §2).

Consumes a latched histogram, computes the frame's approximate mean
luminance (constant-weight multiply-accumulate over the bin centers,
normalized by the power-of-two pixel count) and compares it against the
templated dark/bright thresholds.  A one-cycle ``stats_valid`` pulse hands
the statistics to the parameter calculation.
"""

from __future__ import annotations

from repro.hdl import Input, Module, Output
from repro.types import Bit, Unsigned
from repro.osss import template
from repro.types.spec import bit, unsigned


@template("COUNT_BITS", "FRAME_PIXELS", LOW_T=64, HIGH_T=192)
class ThresholdUnit(Module):
    """Frame statistics: mean luminance plus exposure-range flags.

    Template parameters
    -------------------
    COUNT_BITS:
        Histogram counter width (must match the histogram unit).
    FRAME_PIXELS:
        Pixels per frame; **must be a power of two** so the mean reduces to
        a shift (the paper's VHDL flow made the same choice).
    LOW_T / HIGH_T:
        Under-/over-exposure mean thresholds.
    """

    hist_valid = Input(bit())
    mean = Output(unsigned(8))
    too_dark = Output(bit())
    too_bright = Output(bit())
    stats_valid = Output(bit())

    #: Bin luminance centers for the 8 × 32-value bins.
    BIN_CENTERS = (16, 48, 80, 112, 144, 176, 208, 240)

    def __init__(self, name, clk, rst):
        super().__init__(name)
        if self.FRAME_PIXELS & (self.FRAME_PIXELS - 1):
            raise ValueError("FRAME_PIXELS must be a power of two")
        for i in range(8):
            self.add_port(f"hist{i}", unsigned(self.COUNT_BITS), "in")
        self.cthread(self.calculate, clock=clk, reset=rst)

    def calculate(self):
        """Weighted MAC over the bins, one bin per cycle, then normalize."""
        self.mean.write(Unsigned(8, 0))
        self.too_dark.write(Bit(0))
        self.too_bright.write(Bit(0))
        self.stats_valid.write(Bit(0))
        yield
        while True:
            if self.hist_valid.read():
                total = Unsigned(24, 0)
                accum = Unsigned(32, 0)
                for i in range(8):
                    weight = self.BIN_CENTERS[i]
                    count = self.hist_bus(i).read()
                    total = (total + count).resized(24)
                    accum = (accum + count * weight).resized(32)
                    yield
                shift = self.log2_pixels()
                mean = (accum >> shift).resized(8)
                self.mean.write(mean)
                self.too_dark.write(Bit(1) if mean < self.LOW_T else Bit(0))
                self.too_bright.write(
                    Bit(1) if mean > self.HIGH_T else Bit(0)
                )
                self.stats_valid.write(Bit(1))
                yield
                self.stats_valid.write(Bit(0))
            else:
                yield

    def hist_bus(self, index: int):
        """Compile-time selection of one histogram input port."""
        return self._ports[f"hist{index}"]

    @classmethod
    def log2_pixels(cls) -> int:
        """The normalization shift (``FRAME_PIXELS`` is a power of two)."""
        return cls.FRAME_PIXELS.bit_length() - 1
