"""The Exposure Control Unit top level (paper Fig. 1, §2).

Wires the full pipeline — camera data synchronization, histogram
acquisition, threshold calculation, parameter calculation, I²C bus control
— and adds the camera-control thread that pushes freshly computed exposure
and gain values to the imager over I²C, closing the auto-exposure loop.

Module inventory (the paper's §2 list):

=====================  =============================================
Camera data sync       :class:`repro.expocu.syncreg.CamSync`
Histogram acquisition  :class:`repro.expocu.histogram.HistogramUnit`
Threshold calculation  :class:`repro.expocu.threshold.ThresholdUnit`
Parameter calculation  :class:`repro.expocu.expoparams.ExpoParamsUnit`
I²C bus control        :class:`repro.expocu.i2c.I2cMaster`
Reset control          :class:`repro.expocu.resetctl.ResetCtl` (system
                       level; the synthesized core uses the external
                       reset directly — a documented tool workaround in
                       the spirit of the paper's §11)
=====================  =============================================
"""

from __future__ import annotations

from repro.hdl import Input, Module, Output
from repro.hdl.signal import Signal
from repro.osss import Fcfs, RoundRobin, SharedObject, StaticPriority, template
from repro.types import Bit, Unsigned
from repro.types.spec import bit, unsigned

from repro.expocu.camera import CAMERA_ADDR, REG_EXPOSURE, REG_GAIN
from repro.expocu.expoparams import ExpoParamsUnit, SharedMultiplier
from repro.expocu.histogram import HistogramUnit
from repro.expocu.i2c import I2cMaster
from repro.expocu.syncreg import CamSync
from repro.expocu.threshold import ThresholdUnit


#: Scheduler policies the ``SCHEDULER`` template parameter accepts —
#: the paper's "standard scheduler or an own one" knob, selectable per
#: specialization so design-space exploration can sweep arbitration.
SCHEDULERS = {
    "round_robin": RoundRobin,
    "static_priority": StaticPriority,
    "fcfs": Fcfs,
}


@template("FRAME_W", "FRAME_H", TARGET=128, I2C_DIVIDER=4, COUNT_BITS=12,
          SCHEDULER="round_robin")
class ExpoCU(Module):
    """The complete exposure control unit.

    Template parameters
    -------------------
    FRAME_W, FRAME_H:
        Frame geometry; ``FRAME_W * FRAME_H`` must be a power of two.
    TARGET:
        Desired mean luminance.
    I2C_DIVIDER:
        System-clock cycles per quarter SCL period.
    COUNT_BITS:
        Histogram counter width.
    SCHEDULER:
        Arbitration policy of the shared multiplier (:data:`SCHEDULERS`
        key); each policy synthesizes different arbitration hardware.
    """

    # Camera-side video interface.
    pix = Input(unsigned(8))
    pix_valid = Input(bit())
    line_strobe = Input(bit())
    frame_strobe = Input(bit())
    # I²C camera control bus.
    sda_in = Input(bit())
    scl = Output(bit())
    sda_out = Output(bit())
    sda_oe = Output(bit())
    # Status.
    exposure = Output(unsigned(8))
    gain = Output(unsigned(8))
    mean = Output(unsigned(8))
    too_dark = Output(bit())
    too_bright = Output(bit())
    ctrl_busy = Output(bit())

    def __init__(self, name, clk, rst):
        super().__init__(name)
        frame_pixels = self.FRAME_W * self.FRAME_H
        count_bits = self.COUNT_BITS

        self.sync = CamSync("sync", clk, rst)
        self.hist = HistogramUnit[count_bits]("hist", clk, rst)
        self.thresh = ThresholdUnit[count_bits, frame_pixels](
            "thresh", clk, rst
        )
        if self.SCHEDULER not in SCHEDULERS:
            raise ValueError(
                f"unknown SCHEDULER {self.SCHEDULER!r} "
                f"(choices: {sorted(SCHEDULERS)})"
            )
        scheduler = SCHEDULERS[self.SCHEDULER]()
        shared_mul = SharedObject(f"{name}_mul", SharedMultiplier(),
                                  scheduler=scheduler)
        self.params = ExpoParamsUnit[self.TARGET](
            "params", clk, rst, shared=shared_mul
        )
        self.i2c = I2cMaster[self.I2C_DIVIDER]("i2c", clk, rst)

        # ----- nets -----
        def net(label, spec):
            signal = Signal(label, spec)
            setattr(self, f"_net_{label}", signal)
            return signal

        pv_sync = net("pv_sync", bit())
        frame_start = net("frame_start_net", bit())
        line_start = net("line_start_net", bit())
        hist_valid = net("hist_valid_net", bit())
        stats_valid = net("stats_valid_net", bit())
        mean_net = net("mean_net", unsigned(8))
        expo_net = net("expo_net", unsigned(8))
        gain_net = net("gain_net", unsigned(8))
        params_valid = net("params_valid_net", bit())

        # ----- camera sync -----
        self.sync.port("pix_valid").bind(self.port("pix_valid"))
        self.sync.port("line_strobe").bind(self.port("line_strobe"))
        self.sync.port("frame_strobe").bind(self.port("frame_strobe"))
        self.sync.port("pix_valid_sync").bind(pv_sync)
        self.sync.port("line_start").bind(line_start)
        self.sync.port("frame_start").bind(frame_start)

        # ----- histogram -----
        self.hist.port("pix").bind(self.port("pix"))
        self.hist.port("pix_valid").bind(pv_sync)
        self.hist.port("frame_start").bind(frame_start)
        self.hist.port("hist_valid").bind(hist_valid)
        for i in range(8):
            bus = net(f"hist_bus{i}", unsigned(count_bits))
            self.hist.port(f"hist{i}").bind(bus)
            self.thresh.port(f"hist{i}").bind(bus)

        # ----- threshold -----
        self.thresh.port("hist_valid").bind(hist_valid)
        self.thresh.port("mean").bind(mean_net)
        self.thresh.port("too_dark").bind(self.port("too_dark"))
        self.thresh.port("too_bright").bind(self.port("too_bright"))
        self.thresh.port("stats_valid").bind(stats_valid)

        # ----- parameter calculation -----
        self.params.port("mean").bind(mean_net)
        self.params.port("stats_valid").bind(stats_valid)
        self.params.port("exposure").bind(expo_net)
        self.params.port("gain").bind(gain_net)
        self.params.port("params_valid").bind(params_valid)

        # ----- I²C -----
        i2c_start = net("i2c_start", bit())
        i2c_dev = net("i2c_dev", unsigned(7))
        i2c_reg = net("i2c_reg", unsigned(8))
        i2c_data = net("i2c_data", unsigned(8))
        i2c_busy = net("i2c_busy", bit())
        i2c_done = net("i2c_done", bit())
        self.i2c.port("start").bind(i2c_start)
        self.i2c.port("dev_addr").bind(i2c_dev)
        self.i2c.port("reg_addr").bind(i2c_reg)
        self.i2c.port("data").bind(i2c_data)
        self.i2c.port("busy").bind(i2c_busy)
        self.i2c.port("done").bind(i2c_done)
        self.i2c.port("sda_in").bind(self.port("sda_in"))
        self.i2c.port("scl").bind(self.port("scl"))
        self.i2c.port("sda_out").bind(self.port("sda_out"))
        self.i2c.port("sda_oe").bind(self.port("sda_oe"))

        # Status mirrors.
        self.mean_mirror = mean_net
        self.expo_mirror = expo_net
        self.gain_mirror = gain_net
        self.params_valid_net = params_valid

        # Camera-control thread (Fig. 1 "camera control" block).
        self.cthread(self.cam_ctrl, clock=clk, reset=rst)
        self.cmethod(
            self.mirror_status, [mean_net, expo_net, gain_net]
        )

    # ------------------------------------------------------------------
    def mirror_status(self):
        """Combinational status mirror to the top-level ports."""
        self.mean.write(self.mean_mirror.read())
        self.exposure.write(self.expo_mirror.read())
        self.gain.write(self.gain_mirror.read())

    # ------------------------------------------------------------------
    def _i2c_write(self, register, value):
        """Drive one I²C register write and wait for completion."""
        yield  # settle one cycle before asserting start
        self._net_i2c_start.write(Bit(1))
        self._net_i2c_reg.write(register)
        self._net_i2c_data.write(value)
        while not self._net_i2c_busy.read():
            yield
        self._net_i2c_start.write(Bit(0))
        while not self._net_i2c_done.read():
            yield

    def cam_ctrl(self):
        """Push new exposure/gain to the imager whenever params update."""
        self._net_i2c_start.write(Bit(0))
        self._net_i2c_reg.write(Unsigned(8, 0))
        self._net_i2c_data.write(Unsigned(8, 0))
        self._net_i2c_dev.write(Unsigned(7, CAMERA_ADDR))
        self.ctrl_busy.write(Bit(0))
        yield
        while True:
            if not self.params_valid_net.read():
                yield
                continue
            self.ctrl_busy.write(Bit(1))
            exposure = self.expo_mirror.read()
            gain = self.gain_mirror.read()
            yield from self._i2c_write(Unsigned(8, REG_EXPOSURE), exposure)
            yield from self._i2c_write(Unsigned(8, REG_GAIN), gain)
            self.ctrl_busy.write(Bit(0))
            yield
