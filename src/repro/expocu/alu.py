"""The polymorphic ALU family (paper §6).

The paper's polymorphism example: *"simply select between different ALU
instantiations (e.g. +, *, -) but keeping the same access methods"*.  Used
by the E4 benchmark and the polymorphism example application; the ExpoCU
itself keeps its datapath monomorphic, as the Bosch design did.
"""

from __future__ import annotations

from repro.hdl import Input, Module, Output
from repro.osss import HwClass, PolyVar
from repro.types import Unsigned
from repro.types.spec import unsigned


class AluOp(HwClass):
    """Common ALU interface: ``execute(a, b)`` with a result accumulator."""

    abstract = True

    @classmethod
    def layout(cls):
        return {"last_result": unsigned(16)}

    def execute(self, a: unsigned(8), b: unsigned(8)) -> unsigned(16):
        """Perform the operation; also records it in ``last_result``."""
        raise NotImplementedError

    def read_back(self) -> unsigned(16):
        """The most recent result (shared base behaviour)."""
        return self.last_result


class AluAdd(AluOp):
    """Addition unit."""

    def execute(self, a: unsigned(8), b: unsigned(8)) -> unsigned(16):
        self.last_result = (a + b).resized(16)
        return self.last_result


class AluSub(AluOp):
    """Subtraction unit (wraps modulo 2^16)."""

    def execute(self, a: unsigned(8), b: unsigned(8)) -> unsigned(16):
        self.last_result = (a - b).resized(16)
        return self.last_result


class AluMul(AluOp):
    """Multiplication unit."""

    def execute(self, a: unsigned(8), b: unsigned(8)) -> unsigned(16):
        self.last_result = a * b
        return self.last_result


class AluMax(AluOp):
    """Maximum unit (branchy override: muxes inside the inlined body)."""

    def execute(self, a: unsigned(8), b: unsigned(8)) -> unsigned(16):
        if a > b:
            self.last_result = a.resized(16)
        else:
            self.last_result = b.resized(16)
        return self.last_result


#: The dynamic-class set used by benches and examples, in tag order.
ALU_CLASSES = (AluAdd, AluSub, AluMul, AluMax)


class PolyAluUnit(Module):
    """A small module dispatching over the polymorphic ALU each cycle.

    ``op_select`` picks the dynamic class; the *same* ``execute`` interface
    runs whatever object is currently assigned — §8's tag-selected
    multiplexers in the netlist.
    """

    op_select = Input(unsigned(2))
    a = Input(unsigned(8))
    b = Input(unsigned(8))
    result = Output(unsigned(16))
    history = Output(unsigned(16))

    def __init__(self, name, clk, rst):
        super().__init__(name)
        self.alu = PolyVar(AluOp, ALU_CLASSES)
        self.cthread(self.run, clock=clk, reset=rst)

    def run(self):
        self.result.write(Unsigned(16, 0))
        self.history.write(Unsigned(16, 0))
        yield
        while True:
            select = self.op_select.read()
            if select == 0:
                self.alu.assign(AluAdd())
            elif select == 1:
                self.alu.assign(AluSub())
            elif select == 2:
                self.alu.assign(AluMul())
            else:
                self.alu.assign(AluMax())
            yield
            value = self.alu.execute(self.a.read(), self.b.read())
            self.result.write(value)
            self.history.write(self.alu.read_back())
            yield
