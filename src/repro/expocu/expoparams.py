"""Exposure parameter calculation (paper §2).

The control-flow-dominated stage with a *"budget of some thousand clock
periods"*: from the frame's mean luminance it computes the next exposure
time and analog gain.  It showcases the OSSS **global object** feature —
one guarded multiplier (:class:`SharedMultiplier`) arbitrated between the
exposure thread and the gain thread — plus a bit-serial restoring divider
written as a plain ``while``/``yield`` loop.

Algorithm (classic multiplicative AE servo):

* ``exposure' = clamp(exposure ± (|target - mean| * KP * exposure) >> 12)``
  — the proportional step is scaled by the current exposure so convergence
  is geometric, like real AE loops;
* ``gain_target = (TARGET << 6) / max(mean, 1)`` via the serial divider,
  then IIR-smoothed ``gain' = (3*gain + gain_target) >> 2`` using the
  shared multiplier again.
"""

from __future__ import annotations

from repro.hdl import Input, Module, Output
from repro.hdl.signal import Signal
from repro.osss import HwClass, SharedObject, template
from repro.types import Bit, Unsigned
from repro.types.spec import bit, unsigned


class SharedMultiplier(HwClass):
    """The guarded multiplier object (the paper's shared-ALU example §6).

    A tiny bookkeeping member counts served operations, giving the object
    real state so arbitration bugs would corrupt results visibly.
    """

    @classmethod
    def layout(cls):
        return {"op_count": unsigned(16)}

    def multiply(self, a: unsigned(16), b: unsigned(8)) -> unsigned(24):
        """16×8 unsigned multiply."""
        self.op_count = (self.op_count + 1).resized(16)
        return a * b

    def square(self, a: unsigned(8)) -> unsigned(16):
        """8-bit square (second method exercises method dispatch)."""
        self.op_count = (self.op_count + 1).resized(16)
        return a * a


@template("TARGET", KP=3, EXPOSURE_MIN=1, EXPOSURE_MAX=255)
class ExpoParamsUnit(Module):
    """Computes exposure time and gain from the frame statistics.

    Template parameters
    -------------------
    TARGET:
        Desired mean luminance (0..255).
    KP:
        Proportional constant of the exposure servo.
    EXPOSURE_MIN / EXPOSURE_MAX:
        Clamp range for the exposure register.
    """

    mean = Input(unsigned(8))
    stats_valid = Input(bit())
    exposure = Output(unsigned(8))
    gain = Output(unsigned(8))
    params_valid = Output(bit())
    busy = Output(bit())

    def __init__(self, name, clk, rst, shared: SharedObject | None = None):
        super().__init__(name)
        if shared is None:
            shared = SharedObject(f"{name}_mul", SharedMultiplier())
        self.shared = shared
        self.expo_port = shared.client_port(f"{name}_expo")
        self.gain_port = shared.client_port(f"{name}_gain")
        self.gain_go = Signal("gain_go", bit())
        self.gain_done = Signal("gain_done", bit())
        self.cthread(self.exposure_calc, clock=clk, reset=rst)
        self.cthread(self.gain_calc, clock=clk, reset=rst)

    # ------------------------------------------------------------------
    # exposure servo (client 0 of the shared multiplier)
    # ------------------------------------------------------------------
    def exposure_calc(self):
        """Proportional exposure update, multiplicative in exposure."""
        exposure = Unsigned(8, 128)
        self.exposure.write(exposure)
        self.params_valid.write(Bit(0))
        self.busy.write(Bit(0))
        self.gain_go.write(Bit(0))
        yield
        while True:
            if not self.stats_valid.read():
                self.params_valid.write(Bit(0))
                yield
                continue
            self.busy.write(Bit(1))
            self.params_valid.write(Bit(0))
            self.gain_go.write(Bit(1))
            mean = self.mean.read()
            yield
            self.gain_go.write(Bit(0))
            if mean < self.TARGET:
                error = (Unsigned(8, self.TARGET) - mean).resized(8)
                darker = Bit(0)
            else:
                error = (mean - self.TARGET).resized(8)
                darker = Bit(1)
            # step = (error * KP * exposure) >> 12, via the shared object.
            scaled = yield from self.expo_port.call(
                "multiply", error.resized(16), Unsigned(8, self.KP)
            )
            step16 = (scaled >> 4).resized(16)
            product = yield from self.expo_port.call(
                "multiply", step16, exposure
            )
            step = (product >> 8).resized(8)
            if step == 0:
                step = Unsigned(8, 1)
            if darker:
                if exposure > step:
                    exposure = (exposure - step).resized(8)
                else:
                    exposure = Unsigned(8, self.EXPOSURE_MIN)
            else:
                headroom = (Unsigned(8, self.EXPOSURE_MAX) - exposure)
                if headroom.resized(8) > step:
                    exposure = (exposure + step).resized(8)
                else:
                    exposure = Unsigned(8, self.EXPOSURE_MAX)
            if exposure < self.EXPOSURE_MIN:
                exposure = Unsigned(8, self.EXPOSURE_MIN)
            self.exposure.write(exposure)
            # Wait for the gain thread before announcing new parameters.
            while not self.gain_done.read():
                yield
            self.params_valid.write(Bit(1))
            self.busy.write(Bit(0))
            yield

    # ------------------------------------------------------------------
    # gain servo (client 1; serial divider + IIR smoothing)
    # ------------------------------------------------------------------
    def gain_calc(self):
        """gain_target = (TARGET << 6) / max(mean, 1); 16-cycle divider."""
        gain = Unsigned(8, 64)
        self.gain.write(gain)
        self.gain_done.write(Bit(0))
        yield
        while True:
            if not self.gain_go.read():
                yield
                continue
            # gain_done is level-held from the previous round; clear it now.
            self.gain_done.write(Bit(0))
            mean = self.mean.read()
            if mean == 0:
                mean = Unsigned(8, 1)
            # Restoring division: dividend / mean, one quotient bit/cycle.
            dividend = Unsigned(22, self.TARGET << 6)
            remainder = Unsigned(22, 0)
            quotient = Unsigned(22, 0)
            count = Unsigned(5, 0)
            while count < 22:
                remainder = ((remainder << 1) | dividend.bit(21)) \
                    .resized(22)
                dividend = (dividend << 1).resized(22)
                quotient = (quotient << 1).resized(22)
                if remainder >= mean.resized(22):
                    remainder = (remainder - mean.resized(22)).resized(22)
                    quotient = (quotient | 1).resized(22)
                count = (count + 1).resized(5)
                yield
            if quotient > 255:
                target_gain = Unsigned(8, 255)
            else:
                target_gain = quotient.resized(8)
            # IIR smoothing: gain = (3*gain + target) >> 2.
            tripled = yield from self.gain_port.call(
                "multiply", gain.resized(16), Unsigned(8, 3)
            )
            blended = ((tripled.resized(16)
                        + target_gain.resized(16)) >> 2).resized(8)
            gain = blended
            self.gain.write(gain)
            self.gain_done.write(Bit(1))
            yield
