"""Polymorphism synthesis (paper §8).

A :class:`~repro.osss.polymorph.PolyVar` lowers to a *tag* register plus a
state register sized for the largest registered subclass.  A virtual call
inlines every subclass's override and selects among the inlined results and
state updates with tag-compare multiplexers — §8: *"In case of
polymorphism, multiplexers are being inserted to select the function and
object."*
"""

from __future__ import annotations

import ast
from typing import Any

from repro.osss.polymorph import PolyVar
from repro.osss.state_layout import StateLayout
from repro.rtl.ir import BinOp, Const, Expr, Mux, Read, Register, Resize
from repro.synth.common import ObjectHandle, Static, SynthesisError
from repro.types.spec import unsigned


class PolyHandle:
    """A polymorphic variable bound to its tag + state registers."""

    __slots__ = ("poly", "tag_reg", "state_reg")

    def __init__(self, poly: PolyVar, tag_reg: Register,
                 state_reg: Register) -> None:
        self.poly = poly
        self.tag_reg = tag_reg
        self.state_reg = state_reg

    @property
    def subclasses(self) -> tuple[type, ...]:
        return self.poly.subclasses

    def tag_expr(self, env) -> Expr:
        return env.pending.get(self.tag_reg.uid, Read(self.tag_reg))

    def state_expr(self, env) -> Expr:
        return env.pending.get(self.state_reg.uid, Read(self.state_reg))

    def __repr__(self) -> str:
        return f"PolyHandle({self.poly.base.__name__})"


def poly_assign(interp, env, handle: PolyHandle, value: Any,
                node: ast.AST) -> None:
    """``polyvar.assign(obj)``: set tag and (padded) state."""
    if not isinstance(value, ObjectHandle):
        raise SynthesisError(
            "PolyVar.assign takes a hardware-class instance", node
        )
    try:
        tag = handle.subclasses.index(value.cls)
    except ValueError:
        raise SynthesisError(
            f"{value.cls.__name__} is not in the PolyVar subclass set "
            f"{[c.__name__ for c in handle.subclasses]}",
            node,
        )
    state = interp.object_state(env, value)
    padded = Resize(state, unsigned(handle.state_reg.width))
    env.write_carrier(handle.tag_reg,
                      Const(unsigned(handle.tag_reg.width), tag))
    env.write_carrier(handle.state_reg, padded)


def poly_dispatch(interp, env, handle: PolyHandle, method: str,
                  args: list[Any], node: ast.AST) -> Any:
    """Virtual call: inline every override, select by tag."""
    if not interp.ctx.library.has_method(handle.poly.base, method):
        raise SynthesisError(
            f"{handle.poly.base.__name__} interface has no method "
            f"{method!r}",
            node,
        )
    tag = handle.tag_expr(env)
    tag_width = handle.tag_reg.width
    merged_state: Expr | None = None
    merged_ret: Expr | None = None
    returns_value: bool | None = None
    base_state_pending = env.pending.get(handle.state_reg.uid)
    for index, cls in enumerate(handle.subclasses):
        sub_env = env.fork()
        sub_handle = ObjectHandle(handle.state_reg, cls)
        result = interp.inline_method(sub_env, sub_handle, method,
                                      list(args), node)
        new_state = sub_env.pending.get(
            handle.state_reg.uid,
            base_state_pending if base_state_pending is not None
            else Read(handle.state_reg),
        )
        foreign = set(sub_env.pending) - set(env.pending) - {
            handle.state_reg.uid
        }
        if foreign:
            raise SynthesisError(
                f"{cls.__name__}.{method} has side effects outside the "
                "object; virtual methods may only mutate self",
                node,
            )
        has_value = not (isinstance(result, Static)
                         and result.value is None)
        if returns_value is None:
            returns_value = has_value
        elif returns_value != has_value:
            raise SynthesisError(
                f"overrides of {method!r} disagree on returning a value",
                node,
            )
        is_this = BinOp("eq", tag, Const(unsigned(tag_width), index))
        if merged_state is None:
            merged_state = new_state
        else:
            merged_state = Mux(is_this, new_state, merged_state)
        if has_value:
            ret_expr = interp.as_expr(
                result, node,
                like=merged_ret if isinstance(merged_ret, Expr) else None,
            )
            if merged_ret is None:
                merged_ret = ret_expr
            else:
                if merged_ret.spec.width != ret_expr.spec.width:
                    raise SynthesisError(
                        f"overrides of {method!r} return different widths "
                        f"({merged_ret.spec.width} vs "
                        f"{ret_expr.spec.width})",
                        node,
                    )
                merged_ret = Mux(is_this, ret_expr, merged_ret)
    if merged_state is not None:
        env.write_carrier(handle.state_reg, merged_state)
    if returns_value:
        return merged_ret
    return Static(None)


def poly_layout_note(poly: PolyVar) -> dict[str, Any]:
    """Geometry record used by reports and the E4 bench."""
    return {
        "base": poly.base.__name__,
        "subclasses": [c.__name__ for c in poly.subclasses],
        "tag_bits": poly.tag_width,
        "state_bits": poly.state_width,
        "per_class_bits": {
            c.__name__: StateLayout.of(c).total_width
            for c in poly.subclasses
        },
    }
