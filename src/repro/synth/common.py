"""Shared definitions of the synthesis front end.

The synthesizable subset
------------------------

Process bodies (clocked-thread generators and combinational methods) and
hardware-class methods are ordinary Python for simulation; for synthesis
they must stay inside the subset below — everything else raises
:class:`SynthesisError` with the offending source location, mirroring how
the ODETTE analyzer rejected non-synthesizable SystemC:

* expressions over hardware values (``+ - * & | ^ ~ << >>``, comparisons,
  boolean ``and/or/not``, ``x if c else y``), hardware-type constructor
  calls with constant arguments, and the value methods of the datatypes
  (``.range``, ``.bit``, ``.concat``, ``.resized``, ``.reduce_*``,
  ``.with_bit``, ``.with_range``, conversions);
* reads/writes of ports and signals (``self.p.read()`` / ``self.p.write(e)``),
  local variables, hardware-class member access and method calls (inlined);
* ``if``/``else``; ``while`` loops (each iteration must cross a ``yield``);
  ``for`` over constant ``range(...)`` (unrolled); ``break``/``continue``
  in dynamic ``while`` loops;
* ``yield`` — the ``wait()`` of the subset — in clocked threads only;
* shared-object access ``result = yield from port.call("method", args...)``;
* integer division/modulo only by constant powers of two on unsigned values.

Not synthesizable (rejected): unbounded loops without ``yield``, dynamic
object allocation outside process-local declarations, early ``return``
(returns must be in tail position), recursion, floats, Python containers.
"""

from __future__ import annotations

import ast
from typing import Any

from repro.osss.state_layout import StateLayout
from repro.rtl.ir import Register


class SynthesisError(ValueError):
    """A construct outside the synthesizable subset.

    Carries structured fields so tooling (the static analyzer, the
    ``repro lint`` gate) can classify the violation without parsing the
    message:

    ``code``
        Stable diagnostic code (``OSS1xx`` subset, ``OSS2xx`` OO misuse,
        ``OSS3xx`` shared-object hazards); the registry lives in
        :mod:`repro.analyze.diagnostics`.
    ``where``
        The process/method context the violation was found in.
    ``lineno``
        Source line of the offending AST node, when known.

    ``str()`` keeps the historical pre-formatted shape
    (``"where: message (line N)"``) for backward compatibility.
    """

    def __init__(self, message: str, node: ast.AST | None = None,
                 where: str = "", code: str = "OSS100") -> None:
        self.message = message
        self.code = code
        self.where = where
        self.lineno: int | None = None
        if node is not None and hasattr(node, "lineno"):
            self.lineno = node.lineno
        location = f" (line {self.lineno})" if self.lineno is not None else ""
        prefix = f"{where}: " if where else ""
        super().__init__(f"{prefix}{message}{location}")


class Static:
    """A compile-time constant binding (int, bool, str, class, ...)."""

    __slots__ = ("value",)

    def __init__(self, value: Any) -> None:
        self.value = value

    def __repr__(self) -> str:
        return f"Static({self.value!r})"


class ObjectHandle:
    """A hardware-class instance bound to its packed state register."""

    __slots__ = ("carrier", "cls", "layout")

    def __init__(self, carrier: Register, cls: type) -> None:
        self.carrier = carrier
        self.cls = cls
        self.layout = StateLayout.of(cls)

    def __repr__(self) -> str:
        return f"ObjectHandle({self.cls.__name__} @ {self.carrier.name})"


class Undefined:
    """Marks a local that is only assigned on some branch."""

    __slots__ = ()

    def __repr__(self) -> str:
        return "Undefined()"


UNDEFINED = Undefined()


def contains_yield(node: ast.AST) -> bool:
    """True if *node* contains ``yield`` / ``yield from`` at this function
    level (nested function definitions would be rejected elsewhere)."""
    for child in ast.walk(node):
        if isinstance(child, (ast.Yield, ast.YieldFrom)):
            return True
    return False


def is_power_of_two(value: int) -> bool:
    """True for 1, 2, 4, 8, ..."""
    return value > 0 and (value & (value - 1)) == 0
