"""Module synthesis: kernel-level modules → RTL.

``synthesize(module)`` is the user-facing entry point of the OSSS flow: it
takes an elaborated :class:`repro.hdl.Module` (the same object that
simulates on the kernel) and produces an :class:`repro.rtl.RtlModule`:

* each clocked thread becomes an FSM (:mod:`repro.synth.behavioral`) whose
  register write-sets are folded into next-value mux trees;
* each combinational method becomes named wires;
* hardware-class instances become packed state registers
  (:mod:`repro.osss.state_layout`);
* child modules are synthesized recursively and instantiated, with port
  bindings recovered from the simulation wiring;
* shared-object client ports surface as request/ack interface ports that
  are either routed up the hierarchy or, at the synthesis root, wired to
  generated arbiters (:mod:`repro.synth.sharedgen`).

Synthesize *freshly constructed* modules: object state and signal initial
values are captured as reset values at synthesis time.
"""

from __future__ import annotations

import ast
from typing import Any, Callable

from repro.hdl.module import Module, Port
from repro.hdl.process import CMethod, CThread
from repro.hdl.signal import Clock, Signal
from repro.osss.hwclass import HwClass
from repro.osss.polymorph import PolyVar
from repro.osss.shared import ClientPort
from repro.rtl.ir import (
    BinOp,
    Const,
    Expr,
    Mux,
    Read,
    Register,
    RtlModule,
    UnaryOp,
    WireCarrier,
)
from repro.synth.behavioral import Fsm, FsmBuilder
from repro.synth.common import ObjectHandle, Static, SynthesisError
from repro.synth.design_info import DesignLibrary
from repro.synth.interp import (
    Interpreter,
    PathEnv,
    SharedPortRef,
    SignalRef,
)
from repro.types.spec import TypeSpec, bit, unsigned


class SynthesisSession:
    """State shared across one ``synthesize()`` call tree."""

    def __init__(self) -> None:
        self.library = DesignLibrary()
        from repro.synth.sharedgen import SharedMethodTable

        self._tables: dict[int, Any] = {}
        self._table_cls = SharedMethodTable

    def method_table(self, shared) -> Any:
        table = self._tables.get(id(shared.instance) ^ id(shared))
        if table is None:
            table = self._table_cls(shared, self.library)
            self._tables[id(shared.instance) ^ id(shared)] = table
        return table


class ModuleContext:
    """Synthesis state of one module."""

    def __init__(self, module: Module, session: SynthesisSession) -> None:
        self.module = module
        self.session = session
        self.library = session.library
        self.rtl = RtlModule(type(module).__name__ + "_" + module.name)
        self.reset_input = None
        #: signal uid -> callable returning the read expression
        self._signal_reads: dict[int, Callable[[], Expr]] = {}
        #: signal uid -> (carrier, writer process name)
        self._signal_writers: dict[int, tuple[Any, str]] = {}
        self._object_handles: dict[int, ObjectHandle] = {}
        self._poly_handles: dict[int, Any] = {}
        self._shared_ifaces: dict[int, Any] = {}
        self._const_signals: list[str] = []
        self._attr_of_signal: dict[int, str] = {}
        self._instances: dict[int, Any] = {}  # id(child module) -> Instance

    # ------------------------------------------------------------------
    # reset handling
    # ------------------------------------------------------------------
    def ensure_reset(self):
        if self.reset_input is None:
            self.reset_input = self.rtl.add_input("reset", bit())
            self.rtl.attributes["reset_port"] = "reset"
        return self.reset_input

    def reset_expr_for(self, thread: CThread) -> Expr | None:
        if thread.reset is None:
            return None
        carrier = self.ensure_reset()
        expr = Read(carrier)
        if thread.reset_active == 0:
            expr = UnaryOp("not", expr)
        return expr

    # ------------------------------------------------------------------
    # signals
    # ------------------------------------------------------------------
    def register_signal_reader(self, signal: Signal,
                               reader: Callable[[], Expr]) -> None:
        self._signal_reads[signal.uid] = reader

    def signal_read(self, signal: Signal, node: ast.AST) -> Expr:
        if isinstance(signal, Clock):
            raise SynthesisError(
                "reading the clock is not synthesizable; clocking is "
                "implicit",
                node, code="OSS115",
            )
        reader = self._signal_reads.get(signal.uid)
        if reader is not None:
            return reader()
        # Undriven signal: freeze its current (initial) value as a constant.
        raw = signal.spec.to_raw(signal.read())
        self._const_signals.append(signal.name)
        expr = Const(signal.spec, raw)
        self._signal_reads[signal.uid] = lambda: expr
        return expr

    def signal_writer_carrier(self, signal: Signal, process_name: str,
                              node: ast.AST):
        entry = self._signal_writers.get(signal.uid)
        if entry is None:
            raise SynthesisError(
                f"signal {signal.name!r} written outside the pre-scanned "
                "set; write signals as self.<attr>.write(...)",
                node,
            )
        carrier, writer = entry
        if writer != process_name:
            raise SynthesisError(
                f"signal {signal.name!r} is driven by {writer!r} and "
                f"{process_name!r}; a signal may have one driver",
                node, code="OSS114",
            )
        return carrier

    # ------------------------------------------------------------------
    # objects / polymorphism / shared
    # ------------------------------------------------------------------
    def object_handle(self, obj: HwClass, name_hint: str) -> ObjectHandle:
        handle = self._object_handles.get(id(obj))
        if handle is None:
            from repro.osss.state_layout import StateLayout

            layout = StateLayout.of(type(obj))
            initial = layout.pack(obj).raw
            reg = self.rtl.add_register(
                name_hint, unsigned(layout.total_width), initial
            )
            handle = ObjectHandle(reg, type(obj))
            self._object_handles[id(obj)] = handle
        return handle

    def poly_handle(self, poly: PolyVar, name_hint: str):
        handle = self._poly_handles.get(id(poly))
        if handle is None:
            from repro.synth.polygen import PolyHandle

            tag, state_raw = poly.pack()
            tag_reg = self.rtl.add_register(
                f"{name_hint}_tag", unsigned(poly.tag_width), tag
            )
            state_reg = self.rtl.add_register(
                f"{name_hint}_state", unsigned(poly.state_width), state_raw
            )
            handle = PolyHandle(poly, tag_reg, state_reg)
            self._poly_handles[id(poly)] = handle
        return handle

    def shared_interface(self, ref: SharedPortRef):
        iface = self._shared_ifaces.get(id(ref.client_port))
        if iface is None:
            from repro.synth.sharedgen import SharedClientIface

            table = self.session.method_table(ref.client_port.owner)
            iface = SharedClientIface(self, ref.client_port, table)
            self._shared_ifaces[id(ref.client_port)] = iface
        return iface

    def shared_client_exports(self) -> list[dict[str, Any]]:
        """Interface descriptors for hierarchy routing (set post-build)."""
        return self.rtl.attributes.setdefault("shared_clients", [])


class ProcessContext:
    """Interpreter context bound to one process of a module."""

    def __init__(self, mctx: ModuleContext, process_name: str,
                 func: Callable) -> None:
        self.mctx = mctx
        self.library = mctx.library
        self.process_name = process_name
        self._scope_stack = [DesignLibrary.globals_of(func)]
        self._local_regs: dict[str, Register] = {}
        self._local_objects: dict[int, ObjectHandle] = {}

    # -- interpreter protocol ------------------------------------------
    def static_scope(self) -> dict[str, Any]:
        scope = dict(__builtins__) if isinstance(__builtins__, dict) else {
            name: getattr(__builtins__, name) for name in dir(__builtins__)
        }
        scope.update(self._scope_stack[-1])
        return scope

    def push_scope(self, func: Callable):
        self._scope_stack.append(DesignLibrary.globals_of(func))
        return len(self._scope_stack) - 1

    def pop_scope(self, token) -> None:
        del self._scope_stack[token:]

    def module_self(self) -> Module:
        return self.mctx.module

    def resolve_attr(self, name: str, env: PathEnv, node: ast.AST):
        return self.resolve_module_attr(self.mctx.module, name, node)

    def resolve_module_attr(self, module: Module, name: str, node: ast.AST):
        mctx = self.mctx
        if module is not mctx.module and module not in mctx.module.children:
            raise SynthesisError(
                f"cannot access module {module.full_name!r} from "
                f"{mctx.module.full_name!r}",
                node,
            )
        try:
            value = getattr(module, name)
        except AttributeError:
            raise SynthesisError(
                f"{module.full_name} has no attribute {name!r}", node,
                code="OSS116",
            )
        if isinstance(value, Port):
            return SignalRef(value.signal, value.direction, name)
        if isinstance(value, Clock):
            return SignalRef(value, "clock", name)
        if isinstance(value, Signal):
            return SignalRef(value, "internal", name)
        if isinstance(value, PolyVar):
            return mctx.poly_handle(value, f"{name}")
        if isinstance(value, HwClass):
            return mctx.object_handle(value, name)
        if isinstance(value, ClientPort):
            return SharedPortRef(value, name)
        if isinstance(value, (int, bool, str, type(None), type, tuple)):
            return Static(value)
        if isinstance(value, Module):
            return Static(value)
        if isinstance(value, TypeSpec):
            return Static(value)
        if callable(value):
            # Module helper methods: callable at synthesis time with
            # compile-time arguments (port selectors, constants).
            return Static(value)
        raise SynthesisError(
            f"module attribute {name!r} of type {type(value).__name__} is "
            "not synthesizable",
            node,
        )

    def signal_read_expr(self, ref: SignalRef, node: ast.AST) -> Expr:
        return self.mctx.signal_read(ref.signal, node)

    def signal_write(self, env: PathEnv, ref: SignalRef, binding,
                     node: ast.AST, interp: Interpreter) -> None:
        if ref.direction == "in":
            raise SynthesisError(
                f"cannot write input port {ref.name!r}", node,
                code="OSS115",
            )
        if ref.direction == "clock":
            raise SynthesisError("cannot write the clock", node,
                                 code="OSS115")
        carrier = self.mctx.signal_writer_carrier(
            ref.signal, self.process_name, node
        )
        expr = interp.materialize(binding, ref.signal.spec, node)
        env.write_carrier(carrier, expr)

    def local_register(self, name: str) -> Register | None:
        return self._local_regs.get(name)

    def ensure_local_register(self, name: str, spec: TypeSpec) -> Register:
        reg = self._local_regs.get(name)
        if reg is None:
            reg = self.mctx.rtl.add_register(
                f"{self.process_name}_{name}", spec, 0
            )
            self._local_regs[name] = reg
        elif reg.spec.width != spec.width:
            raise SynthesisError(
                f"local {name!r} used with widths {reg.spec.width} and "
                f"{spec.width}; keep one register width",
                code="OSS111",
            )
        return reg

    def new_local_object(self, cls: type, node: ast.AST) -> ObjectHandle:
        key = id(node)
        handle = self._local_objects.get(key)
        if handle is None:
            from repro.osss.state_layout import StateLayout

            layout = StateLayout.of(cls)
            reg = self.mctx.rtl.add_register(
                f"{self.process_name}_obj{len(self._local_objects)}",
                unsigned(layout.total_width),
                layout.pack(cls()).raw,
            )
            handle = ObjectHandle(reg, cls)
            self._local_objects[key] = handle
        return handle

    def shared_interface(self, ref: SharedPortRef):
        return self.mctx.shared_interface(ref)


# ======================================================================
# write-set prescan
# ======================================================================
def _scan_written_signals(module: Module, func: Callable,
                          library: DesignLibrary) -> list[str]:
    """Names of ``self.<attr>`` whose ``.write`` is called in *func*."""
    tree = library.process_ast(func)
    written: list[str] = []
    for node in ast.walk(tree):
        if (isinstance(node, ast.Call)
                and isinstance(node.func, ast.Attribute)
                and node.func.attr == "write"
                and isinstance(node.func.value, ast.Attribute)
                and isinstance(node.func.value.value, ast.Name)
                and node.func.value.value.id == "self"):
            written.append(node.func.value.attr)
    return written


# ======================================================================
# FSM → register logic
# ======================================================================
def _fold_guards(guards: list[Expr]) -> Expr | None:
    expr: Expr | None = None
    for guard in guards:
        expr = guard if expr is None else BinOp("and", expr, guard)
    return expr


def assemble_fsm(mctx: ModuleContext, fsm: Fsm, reset: Expr | None,
                 pulse_uids: set[int]) -> None:
    """Fold an FSM's transitions into register next-value expressions."""
    n_states = len(fsm.states)
    state_width = max(1, (n_states - 1).bit_length())
    state_reg = mctx.rtl.add_register(
        f"{fsm.name}_state", unsigned(state_width), fsm.entry
    )
    eff_state: Expr = Read(state_reg)
    if reset is not None:
        eff_state = Mux(reset, Const(unsigned(state_width), fsm.entry),
                        eff_state)

    def state_is(uid: int) -> Expr:
        return BinOp("eq", eff_state, Const(unsigned(state_width), uid))

    def fold_carrier(carrier, default_fn) -> Expr:
        value: Expr | None = None
        for state in fsm.states:
            if not state.transitions:
                continue
            if carrier is not state_reg and not any(
                carrier.uid in t.writes for t in state.transitions
            ):
                # No transition of this state writes the carrier: the
                # register holds (or pulses low) by default, so this state
                # needs no mux arm — the optimization a production
                # behavioral-synthesis tool applies to keep FSM datapath
                # muxing proportional to actual writes.
                continue
            per_state = self_fold(state, carrier, default_fn)
            if value is None:
                value = per_state
            else:
                value = Mux(state_is(state.uid), per_state, value)
        if value is None:
            return default_fn()
        if carrier is not state_reg:
            # States without writes fall through to the default.
            covered = [s for s in fsm.states if s.transitions and any(
                carrier.uid in t.writes for t in s.transitions
            )]
            if len(covered) < sum(1 for s in fsm.states if s.transitions):
                value = Mux(_any_state(covered), value, default_fn())
        return value

    def _any_state(states_with_writes) -> Expr:
        expr: Expr | None = None
        for state in states_with_writes:
            term = state_is(state.uid)
            expr = term if expr is None else BinOp("or", expr, term)
        return expr

    def self_fold(state, carrier, default_fn) -> Expr:
        transitions = state.transitions
        last = transitions[-1]
        value = pick(last, carrier, default_fn)
        for transition in reversed(transitions[:-1]):
            guard = _fold_guards(transition.guards)
            chosen = pick(transition, carrier, default_fn)
            if guard is None:
                value = chosen
            else:
                value = Mux(guard, chosen, value)
        return value

    def pick(transition, carrier, default_fn) -> Expr:
        if carrier is state_reg:
            return Const(unsigned(state_width), transition.target)
        entry = transition.writes.get(carrier.uid)
        if entry is None:
            return default_fn()
        return entry[1]

    # State register.
    state_reg.next = fold_carrier(state_reg, lambda: Read(state_reg))

    # Data registers written by this FSM.
    for uid, carrier in fsm.written_carriers.items():
        if not isinstance(carrier, Register):
            raise SynthesisError(
                f"{fsm.name}: cannot fold writes into {carrier!r}"
            )
        if carrier.next is not None:
            raise SynthesisError(
                f"register {carrier.name!r} is written by more than one "
                "process; use a shared object for shared state",
                code="OSS114",
            )
        if uid in pulse_uids:
            default = lambda c=carrier: Const(c.spec, 0)
        else:
            default = lambda c=carrier: Read(c)
        carrier.next = fold_carrier(carrier, default)


# ======================================================================
# top-level synthesis
# ======================================================================
def synthesize(module: Module, session: SynthesisSession | None = None,
               _root: bool = True, observe_children: bool = True) -> RtlModule:
    """Synthesize *module* (and its children) into an :class:`RtlModule`.

    With ``observe_children`` (default), otherwise-unobserved child output
    ports are exposed as extra top-level outputs for testbench comparison;
    pass False for production netlists (area/timing benchmarks).
    """
    if session is None:
        session = SynthesisSession()
    mctx = ModuleContext(module, session)
    rtl = mctx.rtl

    # ---------------- children ----------------
    port_signal_driver: dict[int, Callable[[], Expr]] = {}
    child_rtls: list[tuple[Module, RtlModule]] = []
    for child in module.children:
        child_rtl = synthesize(child, session, _root=False)
        child_rtls.append((child, child_rtl))
    instances = {}
    for child, child_rtl in child_rtls:
        inst = rtl.add_instance(child.name, child_rtl)
        instances[id(child)] = inst
        mctx._instances[id(child)] = inst
        for pname, port in child.ports().items():
            if port.direction == "out":
                sig = port.signal
                mctx.register_signal_reader(
                    sig, lambda i=inst, p=pname: i.output(p)
                )

    # ---------------- primary ports ----------------
    for pname, port in module.ports().items():
        if port.direction == "in":
            carrier = rtl.add_input(pname, port.spec)
            mctx.register_signal_reader(
                port.signal, lambda c=carrier: Read(c)
            )

    # ---------------- process prescan ----------------
    threads: list[CThread] = []
    methods: list[CMethod] = []
    for process in module.processes:
        if isinstance(process, CThread):
            threads.append(process)
        elif isinstance(process, CMethod):
            methods.append(process)
    needs_reset = any(t.reset is not None for t in threads) or any(
        child_rtl.attributes.get("reset_port") for _, child_rtl in child_rtls
    )
    if needs_reset:
        mctx.ensure_reset()

    method_wires: dict[int, list[tuple[Signal, WireCarrier]]] = {}
    for process in threads + methods:
        short = process.name.rsplit(".", 1)[-1]
        written = _scan_written_signals(module, process.body,
                                        session.library)
        for attr in written:
            value = getattr(module, attr, None)
            if isinstance(value, Port):
                if value.direction == "in":
                    continue  # rejected later with a good message
                sig = value.signal
            elif isinstance(value, Signal):
                sig = value
            else:
                continue
            existing = mctx._signal_writers.get(sig.uid)
            if existing is not None:
                if existing[1] != short:
                    raise SynthesisError(
                        f"signal {sig.name!r} driven by both "
                        f"{existing[1]!r} and {short!r}",
                        code="OSS114",
                    )
                continue
            if isinstance(process, CThread):
                carrier = rtl.add_register(
                    f"{short}_{attr}", sig.spec,
                    sig.spec.to_raw(sig.read()),
                )
            else:
                placeholder = Const(sig.spec, sig.spec.to_raw(sig.read()))
                carrier = rtl.add_wire(f"{short}_{attr}", placeholder)
            mctx._signal_writers[sig.uid] = (carrier, short)
            mctx._attr_of_signal[sig.uid] = attr
            mctx.register_signal_reader(sig, lambda c=carrier: Read(c))

    # ---------------- combinational methods ----------------
    for process in methods:
        short = process.name.rsplit(".", 1)[-1]
        pctx = ProcessContext(mctx, short, process.body)
        interp = Interpreter(pctx)
        tree = session.library.process_ast(process.body)
        env = PathEnv()
        result = interp.exec_block(tree.body, env)
        if result is not None:
            raise SynthesisError(f"{short}: combinational methods cannot "
                                 "return values", code="OSS206")
        own_wires = {
            carrier.uid
            for uid, (carrier, writer) in mctx._signal_writers.items()
            if writer == short
        }
        for uid, expr in env.pending.items():
            carrier = env.written[uid]
            if not isinstance(carrier, WireCarrier):
                raise SynthesisError(
                    f"{short}: combinational method wrote a registered "
                    "carrier",
                    code="OSS206",
                )
            _check_no_self_read(expr, own_wires, short)
            carrier.expr = expr
        if pctx._local_regs:
            raise SynthesisError(
                f"{short}: combinational methods cannot hold state across "
                "activations",
                code="OSS206",
            )

    # ---------------- clocked threads ----------------
    for process in threads:
        short = process.name.rsplit(".", 1)[-1]
        pctx = ProcessContext(mctx, short, process.body)
        tree = session.library.process_ast(process.body)
        builder = FsmBuilder(pctx, tree.body)
        fsm = builder.build()
        reset = mctx.reset_expr_for(process)
        pulse_uids = {
            iface.ack_reg.uid
            for iface in mctx._shared_ifaces.values()
            if iface.ack_reg is not None
        }
        assemble_fsm(mctx, fsm, reset, pulse_uids)
        rtl.attributes.setdefault("fsm_states", {})[short] = fsm.state_count

    # ---------------- leftover registers hold ----------------
    for reg in rtl.registers:
        if reg.next is None:
            reg.next = Read(reg)

    # ---------------- instance input wiring ----------------
    for child, child_rtl in child_rtls:
        inst = instances[id(child)]
        for pname, carrier in child_rtl.inputs.items():
            if pname == child_rtl.attributes.get("reset_port"):
                inst.connect(pname, Read(mctx.ensure_reset()))
                continue
            if pname.startswith("__shared_"):
                continue  # wired by the shared-object router below
            port = child.ports().get(pname)
            if port is None:
                raise SynthesisError(
                    f"instance {child.name}: cannot wire generated input "
                    f"{pname!r}"
                )
            sig = port.signal
            if _root and sig.uid not in mctx._signal_reads:
                # Undriven child input at the synthesis root: promote it to
                # a primary input so testbenches can drive it, the way the
                # kernel testbench drives the port's signal directly.
                top_in = rtl.add_input(f"{child.name}_{pname}", port.spec)
                mctx.register_signal_reader(
                    sig, lambda c=top_in: Read(c)
                )
            inst.connect(pname, mctx.signal_read(sig, None))

    # ---------------- outputs ----------------
    for pname, port in module.ports().items():
        if port.direction != "out":
            continue
        expr = mctx.signal_read(port.signal, None)
        rtl.add_output(pname, expr)
    if _root and observe_children:
        # Expose otherwise-unobserved child outputs so testbenches can
        # compare them against the kernel simulation.
        for child, child_rtl in child_rtls:
            inst = instances[id(child)]
            for pname in child_rtl.outputs:
                if pname.startswith("__shared_"):
                    continue
                exposed = f"{child.name}_{pname}"
                if exposed in rtl.outputs or exposed in rtl.inputs:
                    continue
                rtl.add_output(exposed, inst.output(pname))

    # ---------------- shared-object routing ----------------
    from repro.synth.sharedgen import route_shared

    route_shared(mctx, instances, is_root=_root)

    if mctx._const_signals:
        rtl.attributes["const_signals"] = list(dict.fromkeys(
            mctx._const_signals
        ))
    return rtl


def _check_no_self_read(expr: Expr, own_wire_uids: set[int],
                        process: str) -> None:
    seen: set[int] = set()

    def visit(e: Expr) -> None:
        if id(e) in seen:
            return
        seen.add(id(e))
        if isinstance(e, Read) and e.carrier.uid in own_wire_uids:
            raise SynthesisError(
                f"{process}: combinational method reads a signal it also "
                "writes (latch/feedback); use a local variable",
                code="OSS206",
            )
        for child in e.children():
            visit(child)

    visit(expr)
