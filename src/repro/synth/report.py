"""Synthesis reports — the analyzer's "design library" made visible.

The ODETTE analyzer builds *"a library where it holds information of the
whole design structure"* (paper §7).  :func:`design_report` renders that
library for a synthesized module: the hardware classes with their packed
state layouts and methods, each process's FSM size, the register inventory,
shared-object arbiters and const-folded signals — the artifact an engineer
reads to understand what the synthesizer did.
"""

from __future__ import annotations

from typing import Any

from repro.hdl.module import Module
from repro.osss.hwclass import HwClass
from repro.osss.polymorph import PolyVar
from repro.osss.shared import ClientPort
from repro.rtl.ir import RtlModule
from repro.synth.design_info import DesignLibrary


def class_inventory(module: Module) -> list[dict[str, Any]]:
    """Hardware classes reachable from *module*'s attribute tree."""
    seen: dict[type, dict[str, Any]] = {}
    for mod in module.iter_modules():
        for value in vars(mod).values():
            targets = []
            if isinstance(value, HwClass):
                targets.append(type(value))
            elif isinstance(value, PolyVar):
                targets.extend(value.subclasses)
            elif isinstance(value, ClientPort):
                targets.append(type(value.owner.instance))
            for cls in targets:
                if cls not in seen:
                    seen[cls] = DesignLibrary.describe_class(cls)
    return list(seen.values())


def rtl_inventory(rtl: RtlModule) -> dict[str, Any]:
    """Structural summary of one synthesized RTL module tree."""
    registers = []
    total_bits = 0

    def walk(mod: RtlModule, prefix: str) -> None:
        nonlocal total_bits
        for reg in mod.registers:
            registers.append({
                "name": f"{prefix}{reg.name}",
                "width": reg.width,
                "reset": reg.reset_raw,
            })
            total_bits += reg.width
        for instance in mod.instances:
            walk(instance.module, f"{prefix}{instance.name}.")

    walk(rtl, "")
    arbiters = [
        {"name": inst.name,
         "policy": inst.module.attributes.get("policy", "?"),
         "registers": len(inst.module.registers)}
        for inst in rtl.instances if inst.name.startswith("arbiter_")
    ]
    fsms: dict[str, int] = dict(rtl.attributes.get("fsm_states") or {})
    for inst in rtl.instances:
        for process, count in (inst.module.attributes.get("fsm_states")
                               or {}).items():
            fsms[f"{inst.name}.{process}"] = count
    return {
        "module": rtl.name,
        "inputs": list(rtl.inputs),
        "outputs": list(rtl.outputs),
        "registers": registers,
        "state_bits": total_bits,
        "fsms": fsms,
        "arbiters": arbiters,
        "const_signals": rtl.attributes.get("const_signals", []),
        "expr_stats": rtl.stats(),
    }


def design_report(module: Module, rtl: RtlModule) -> str:
    """Human-readable synthesis report for *module* → *rtl*."""
    lines = [f"OSSS synthesis report: {module.full_name} -> {rtl.name}",
             "=" * 64, "", "hardware classes (design library):"]
    for record in class_inventory(module):
        template = (f" template{record['template']}"
                    if record["template"] else "")
        lines.append(f"  {record['name']}{template}: "
                     f"{record['state_bits']} state bits")
        for member, spec in record["members"].items():
            lines.append(f"      .{member:<16s} {spec}")
        lines.append(f"      methods: {', '.join(record['methods'])}")
    inventory = rtl_inventory(rtl)
    lines.append("")
    lines.append(f"behavioral FSMs ({len(inventory['fsms'])}):")
    for name, count in sorted(inventory["fsms"].items()):
        lines.append(f"  {name:<40s} {count:3d} states")
    lines.append("")
    lines.append(f"registers: {len(inventory['registers'])} "
                 f"({inventory['state_bits']} bits)")
    if inventory["arbiters"]:
        lines.append("generated shared-object arbiters:")
        for arbiter in inventory["arbiters"]:
            lines.append(f"  {arbiter['name']} "
                         f"(policy={arbiter['policy']}, "
                         f"{arbiter['registers']} registers)")
    if inventory["const_signals"]:
        lines.append(f"signals folded to constants: "
                     f"{len(inventory['const_signals'])}")
    stats = inventory["expr_stats"]
    lines.append(f"expression nodes: {stats['nodes']} "
                 f"(muxes: {stats['muxes']})")
    return "\n".join(lines)
