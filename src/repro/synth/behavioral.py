"""Behavioral synthesis: clocked threads → finite state machines.

A clocked-thread body is cut into FSM states at its ``yield`` (wait)
points.  The key mechanism is **continuation memoization**: after a wait
the symbolic environment always restarts from register values, so the
behaviour of the rest of the program depends only on (a) the continuation
— the program points still to execute — and (b) the compile-time-constant
locals.  States are therefore memoized by ``(continuation, statics)``,
which makes loops converge to cycles in the state graph and yields the
minimal wait-state machine without any separate minimization step.

Within a state, statements execute symbolically
(:class:`repro.synth.interp.Interpreter`): branch-free code and ``if``s
without waits fold into mux expressions; ``if``/``while`` containing waits
(or ``break``/``continue``) fork guarded transitions.  Shared-object calls
(``result = yield from port.call(...)``) expand into the request/spin/ack
protocol described in :mod:`repro.osss.shared`, so arbitration timing in
generated RTL matches the OSSS simulation cycle for cycle.
"""

from __future__ import annotations

import ast
from typing import Any

from repro.rtl.ir import Const, Expr, Read, Register, UnaryOp
from repro.synth.common import (
    ObjectHandle,
    Static,
    SynthesisError,
    Undefined,
    contains_yield,
)
from repro.synth.interp import Binding, Interpreter, PathEnv, ReturnValue
from repro.types.spec import bit, unsigned


class Transition:
    """One guarded transition of a state."""

    __slots__ = ("guards", "writes", "target")

    def __init__(self, guards: list[Expr],
                 writes: dict[int, tuple[Register, Expr]],
                 target: int) -> None:
        self.guards = guards
        self.writes = writes
        self.target = target

    def __repr__(self) -> str:
        return f"Transition(guards={len(self.guards)}, -> S{self.target})"


class FsmState:
    """A wait state with its outgoing transitions (DFS order)."""

    __slots__ = ("uid", "transitions")

    def __init__(self, uid: int) -> None:
        self.uid = uid
        self.transitions: list[Transition] = []

    def __repr__(self) -> str:
        return f"FsmState(S{self.uid}, {len(self.transitions)} transitions)"


class Fsm:
    """The synthesized state machine of one clocked thread."""

    def __init__(self, name: str) -> None:
        self.name = name
        self.states: list[FsmState] = []
        self.entry = 0
        #: Carrier uid -> Register for every carrier the FSM writes.
        self.written_carriers: dict[int, Register] = {}

    @property
    def state_count(self) -> int:
        """Number of wait states (including the entry/prologue state)."""
        return len(self.states)

    def __repr__(self) -> str:
        return f"Fsm({self.name!r}, states={self.state_count})"


def _contains_flow(node: ast.AST) -> bool:
    """Yield, break, continue or return anywhere under *node*."""
    for child in ast.walk(node):
        if isinstance(child, (ast.Yield, ast.YieldFrom, ast.Break,
                              ast.Continue, ast.Return)):
            return True
    return False


class _Frame:
    """A continuation frame; immutable once built."""

    __slots__ = ("kind", "node", "stmts", "index", "values", "payload",
                 "parent")

    def __init__(self, kind: str, parent: "_Frame | None", *,
                 node: ast.AST | None = None,
                 stmts: list[ast.stmt] | None = None, index: int = 0,
                 values: tuple | None = None, payload: Any = None) -> None:
        self.kind = kind
        self.node = node
        self.stmts = stmts
        self.index = index
        self.values = values
        self.payload = payload
        self.parent = parent

    def key(self) -> tuple:
        """Flat structural key of the whole continuation chain."""
        parts: list[tuple] = []
        frame: "_Frame | None" = self
        while frame is not None:
            if frame.kind == "seq":
                parts.append(("seq", id(frame.stmts), frame.index))
            elif frame.kind == "for":
                parts.append(("for", id(frame.node), frame.index))
            else:
                parts.append((frame.kind, id(frame.node)))
            frame = frame.parent
        return tuple(parts)


def _static_key(value: Binding) -> Any:
    if isinstance(value, Static):
        inner = value.value
        if isinstance(inner, (int, bool, str, type(None))):
            return ("static", inner)
        if isinstance(inner, type):
            return ("class", inner.__qualname__)
        if isinstance(inner, tuple):
            return ("tuple", inner)
        return ("object", id(inner))
    if isinstance(value, ObjectHandle):
        return ("handle", value.carrier.uid)
    from repro.synth.polygen import PolyHandle

    if isinstance(value, PolyHandle):
        return ("poly", value.tag_reg.uid)
    raise AssertionError(value)


class FsmBuilder:
    """Builds the :class:`Fsm` of one clocked thread."""

    MAX_STATES = 4096
    MAX_STEPS = 500_000

    def __init__(self, pctx, body: list[ast.stmt]) -> None:
        self.ctx = pctx
        self.interp = Interpreter(pctx)
        self.body = body
        self.fsm = Fsm(pctx.process_name)
        self._memo: dict[tuple, int] = {}
        self._steps = 0
        self._terminal: int | None = None
        self._worklist: list[tuple[FsmState, _Frame | None, dict]] = []
        self._loop_visits: dict[int, int] = {}

    # ------------------------------------------------------------------
    def build(self) -> Fsm:
        """Construct the FSM starting from the top of the body.

        State bodies are explored from a worklist (not recursively), so
        long state chains — e.g. a bit-banged I²C transfer — do not nest
        Python frames per state.
        """
        entry = _Frame("seq", None, stmts=self.body, index=0)
        self.fsm.entry = self._state_for(entry, {})
        while self._worklist:
            state, cont, statics = self._worklist.pop()
            self._loop_visits: dict[int, int] = {}
            env = PathEnv()
            env.locals = dict(statics)
            self._explore(cont, env, [], state)
        return self.fsm

    # ------------------------------------------------------------------
    def _state_for(self, cont: _Frame | None, statics: dict[str, Binding],
                   ) -> int:
        statics_key = tuple(sorted(
            (name, _static_key(value)) for name, value in statics.items()
        ))
        key = (cont.key() if cont is not None else None, statics_key)
        cached = self._memo.get(key)
        if cached is not None:
            return cached
        if len(self.fsm.states) >= self.MAX_STATES:
            raise SynthesisError(
                f"{self.ctx.process_name}: state explosion "
                f"(> {self.MAX_STATES} states); check compile-time locals "
                "carried across waits",
                code="OSS103",
            )
        state = FsmState(len(self.fsm.states))
        self.fsm.states.append(state)
        self._memo[key] = state.uid
        self._worklist.append((state, cont, dict(statics)))
        return state.uid

    MAX_LOOP_UNROLL = 256

    def _terminal_state(self) -> int:
        if self._terminal is None:
            state = FsmState(len(self.fsm.states))
            self.fsm.states.append(state)
            state.transitions.append(Transition([], {}, state.uid))
            self._terminal = state.uid
        return self._terminal

    # ------------------------------------------------------------------
    # path exploration
    # ------------------------------------------------------------------
    def _finalize(self, state: FsmState, guards: list[Expr], env: PathEnv,
                  cont: _Frame | None) -> None:
        """End the current path with a wait: emit a transition."""
        writes, statics = self._collect_writes(env)
        target = self._state_for(cont, statics)
        self._emit(state, guards, writes, target)

    def _emit(self, state: FsmState, guards: list[Expr],
              writes: dict[int, tuple[Register, Expr]], target: int) -> None:
        state.transitions.append(Transition(list(guards), writes, target))
        for uid, (carrier, _expr) in writes.items():
            self.fsm.written_carriers[uid] = carrier

    def _collect_writes(self, env: PathEnv):
        writes: dict[int, tuple[Register, Expr]] = {}
        for uid, expr in env.pending.items():
            carrier = env.written[uid]
            writes[uid] = (carrier, expr)
        statics: dict[str, Binding] = {}
        from repro.synth.polygen import PolyHandle

        for name, value in env.locals.items():
            if isinstance(value, (Static, ObjectHandle, PolyHandle)):
                statics[name] = value
            elif isinstance(value, Undefined):
                continue
            elif isinstance(value, Expr):
                reg = self.ctx.ensure_local_register(name, value.spec)
                if not (isinstance(value, Read) and value.carrier is reg):
                    writes[reg.uid] = (reg, value)
                    self.fsm.written_carriers[reg.uid] = reg
        return writes, statics

    def _explore(self, cont: _Frame | None, env: PathEnv,
                 guards: list[Expr], state: FsmState) -> None:
        while True:
            self._steps += 1
            if self._steps > self.MAX_STEPS:
                raise SynthesisError(
                    f"{self.ctx.process_name}: execution does not reach a "
                    "wait (loop without yield?)",
                    code="OSS103",
                )
            if cont is None:
                # Thread body finished: park in a terminal state.
                writes, _statics = self._collect_writes(env)
                self._emit(state, guards, writes, self._terminal_state())
                return
            kind = cont.kind
            if kind == "seq":
                if cont.index >= len(cont.stmts):
                    cont = cont.parent
                    continue
                stmt = cont.stmts[cont.index]
                rest = _Frame("seq", cont.parent, stmts=cont.stmts,
                              index=cont.index + 1)
                next_cont = self._exec_one(stmt, rest, env, guards, state)
                if next_cont is _PATH_DONE:
                    return
                cont = next_cont
                continue
            if kind == "while":
                cont = self._enter_while(cont, env, guards, state)
                if cont is _PATH_DONE:
                    return
                continue
            if kind == "for":
                node = cont.node
                if cont.index >= len(cont.values):
                    cont = cont.parent
                    continue
                env.locals[node.target.id] = Static(cont.values[cont.index])
                next_frame = _Frame("for", cont.parent, node=node,
                                    values=cont.values,
                                    index=cont.index + 1)
                cont = _Frame("seq", next_frame, stmts=node.body, index=0)
                continue
            if kind == "sharedgap":
                # Mandatory dead cycle after posting a request: the done
                # flag visible in the first wait cycle may still belong to
                # the *previous* call (cleared one cycle after ack), so the
                # client only starts sampling it from the second cycle —
                # matching the simulation model's two-cycle minimum.
                inner = _Frame("shared", cont.parent, node=cont.node,
                               payload=cont.payload)
                writes, statics = self._collect_writes(env)
                target = self._state_for(inner, statics)
                self._emit(state, guards, writes, target)
                return
            if kind == "shared":
                self._resume_shared(cont, env, guards, state)
                return
            if kind == "call":
                # Helper body finished without an explicit return.
                target = cont.payload
                if target is not None:
                    env.locals[target] = Static(None)
                cont = cont.parent
                continue
            raise AssertionError(kind)

    # ------------------------------------------------------------------
    # statement dispatch inside a state
    # ------------------------------------------------------------------
    def _exec_one(self, stmt: ast.stmt, rest: _Frame | None, env: PathEnv,
                  guards: list[Expr], state: FsmState):
        # Plain wait.
        if isinstance(stmt, ast.Expr) and isinstance(stmt.value, ast.Yield):
            if stmt.value.value is not None:
                raise SynthesisError("yield must carry no value (it is "
                                     "wait())", stmt, code="OSS108")
            self._finalize(state, guards, env, rest)
            return _PATH_DONE
        # Shared-object access or behavioral helper call (yield from).
        delegated = self._match_yield_from(stmt)
        if delegated is not None:
            target, call = delegated
            receiver = self.interp.eval(call.func.value, env)
            from repro.synth.interp import SharedPortRef

            if isinstance(receiver, SharedPortRef):
                if call.func.attr != "call":
                    raise SynthesisError(
                        "shared ports are accessed as port.call('m', ...)",
                        stmt, code="OSS302",
                    )
                self._start_shared(stmt, (target, call), receiver, rest,
                                   env, guards, state)
                return _PATH_DONE
            return self._start_helper(stmt, target, call, receiver, rest,
                                      env)
        if isinstance(stmt, ast.Break):
            return self._loop_exit(stmt, rest, kind="break")
        if isinstance(stmt, ast.Continue):
            return self._loop_exit(stmt, rest, kind="continue")
        if isinstance(stmt, ast.Return):
            frame = rest
            while frame is not None and frame.kind != "call":
                frame = frame.parent
            if frame is not None:
                # Returning from a behavioral helper: bind and resume.
                target = frame.payload
                if target is not None:
                    if stmt.value is None:
                        env.locals[target] = Static(None)
                    else:
                        value = self.interp.eval(stmt.value, env)
                        if isinstance(value, Static):
                            env.locals[target] = value
                        else:
                            self.interp._assign_local(target, value, env,
                                                      stmt)
                elif stmt.value is not None:
                    self.interp.eval(stmt.value, env)
                return frame.parent
            if stmt.value is not None:
                raise SynthesisError("processes cannot return values", stmt,
                                     code="OSS109")
            writes, _ = self._collect_writes(env)
            self._emit(state, guards, writes, self._terminal_state())
            return _PATH_DONE
        if isinstance(stmt, ast.If) and _contains_flow(stmt):
            self._control_if(stmt, rest, env, guards, state)
            return _PATH_DONE
        if isinstance(stmt, ast.While):
            frame = _Frame("while", rest, node=stmt)
            return frame
        if isinstance(stmt, ast.For) and _contains_flow(stmt):
            return self._enter_for(stmt, rest, env)
        # Anything else is wait-free: run it symbolically.
        result = self.interp.exec_stmt(stmt, env, tail=False)
        if isinstance(result, ReturnValue):
            raise SynthesisError("processes cannot return values", stmt,
                                     code="OSS109")
        return rest

    def _loop_exit(self, stmt: ast.stmt, cont: _Frame | None, kind: str):
        frame = cont
        while frame is not None and frame.kind not in ("while", "for"):
            if frame.kind == "call":
                # break/continue may not escape a behavioral helper.
                frame = None
                break
            frame = frame.parent
        if frame is None:
            raise SynthesisError(f"{kind} outside a loop", stmt,
                                 code="OSS101")
        if kind == "continue":
            return frame
        return frame.parent

    def _enter_for(self, stmt: ast.For, rest: _Frame | None,
                   env: PathEnv) -> _Frame:
        if not (isinstance(stmt.iter, ast.Call)
                and isinstance(stmt.iter.func, ast.Name)
                and stmt.iter.func.id == "range"):
            raise SynthesisError("for loops must iterate over constant "
                                 "range(...)", stmt, code="OSS104")
        if not isinstance(stmt.target, ast.Name):
            raise SynthesisError("for target must be a simple name", stmt,
                                 code="OSS104")
        bounds = [
            self.interp.as_static_int(self.interp.eval(arg, env), stmt,
                                      "range bound")
            for arg in stmt.iter.args
        ]
        values = tuple(range(*bounds))
        return _Frame("for", rest, node=stmt, values=values, index=0)

    def _enter_while(self, frame: _Frame, env: PathEnv, guards: list[Expr],
                     state: FsmState):
        node = frame.node
        visits = self._loop_visits.get(id(node), 0) + 1
        self._loop_visits[id(node)] = visits
        if visits > self.MAX_LOOP_UNROLL:
            raise SynthesisError(
                "while loop iterates without reaching a wait (add a yield "
                "inside the loop body, or make the bound compile-time "
                "constant)",
                node, code="OSS103",
            )
        cond = self.interp.as_condition(self.interp.eval(node.test, env),
                                        node.test)
        body_cont = _Frame("seq", frame, stmts=node.body, index=0)
        exit_cont = frame.parent
        if node.orelse:
            exit_cont = _Frame("seq", frame.parent, stmts=node.orelse,
                               index=0)
        if isinstance(cond, Static):
            return body_cont if cond.value else exit_cont
        self._explore(body_cont, env.fork(), guards + [cond], state)
        self._explore(exit_cont, env.fork(),
                      guards + [UnaryOp("not", cond)], state)
        return _PATH_DONE

    def _control_if(self, stmt: ast.If, rest: _Frame | None, env: PathEnv,
                    guards: list[Expr], state: FsmState) -> None:
        cond = self.interp.as_condition(self.interp.eval(stmt.test, env),
                                        stmt.test)
        then_cont = _Frame("seq", rest, stmts=stmt.body, index=0)
        else_cont = (_Frame("seq", rest, stmts=stmt.orelse, index=0)
                     if stmt.orelse else rest)
        if isinstance(cond, Static):
            self._explore(then_cont if cond.value else else_cont, env,
                          guards, state)
            return
        self._explore(then_cont, env.fork(), guards + [cond], state)
        self._explore(else_cont, env.fork(),
                      guards + [UnaryOp("not", cond)], state)

    # ------------------------------------------------------------------
    # shared-object protocol expansion
    # ------------------------------------------------------------------
    def _match_yield_from(self, stmt: ast.stmt):
        """Recognize ``[x =] yield from <receiver>.<name>(...)``."""
        target = None
        if isinstance(stmt, ast.Assign) and isinstance(stmt.value,
                                                       ast.YieldFrom):
            if len(stmt.targets) != 1 or not isinstance(stmt.targets[0],
                                                        ast.Name):
                raise SynthesisError("yield-from result must bind a simple "
                                     "name", stmt, code="OSS108")
            target = stmt.targets[0].id
            call = stmt.value.value
        elif isinstance(stmt, ast.Expr) and isinstance(stmt.value,
                                                       ast.YieldFrom):
            call = stmt.value.value
        else:
            return None
        if not (isinstance(call, ast.Call)
                and isinstance(call.func, ast.Attribute)):
            raise SynthesisError(
                "yield from is only synthesizable as port.call(...) or "
                "self.helper(...)",
                stmt, code="OSS108",
            )
        return (target, call)

    def _start_helper(self, stmt: ast.stmt, target, call: ast.Call,
                      receiver, rest: _Frame | None, env: PathEnv):
        """Inline a behavioral helper: a generator method of the module.

        The helper's statements are spliced into the continuation (a
        ``call`` frame remembers where its ``return`` binds).  Helper
        parameters become process locals, so distinct helpers should use
        distinct parameter/local names.
        """
        from repro.synth.common import Static as _Static

        if not (isinstance(receiver, _Static)
                and receiver.value is self.ctx.module_self()):
            raise SynthesisError(
                "behavioral helpers must be methods of this module "
                "(yield from self.helper(...))",
                stmt,
            )
        name = call.func.attr
        module = self.ctx.module_self()
        func = getattr(module, name, None)
        if func is None or not callable(func):
            raise SynthesisError(
                f"module has no behavioral helper {name!r}", stmt
            )
        tree = self.ctx.library.process_ast(func)
        params = [a.arg for a in tree.args.args[1:]]
        if len(call.args) > len(params):
            raise SynthesisError(
                f"helper {name!r} takes {len(params)} argument(s)", stmt
            )
        for param, arg_node in zip(params, call.args):
            value = self.interp.eval(arg_node, env)
            if isinstance(value, _Static) or not hasattr(value, "spec"):
                env.locals[param] = value
            else:
                self.interp._assign_local(param, value, env, stmt)
        if len(call.args) < len(params):
            import inspect as _inspect

            signature = _inspect.signature(
                getattr(func, "__func__", func)
            )
            for param in params[len(call.args):]:
                default = signature.parameters[param].default
                if default is _inspect.Parameter.empty:
                    raise SynthesisError(
                        f"helper {name!r}: missing argument {param!r}", stmt
                    )
                env.locals[param] = _Static(default)
        call_frame = _Frame("call", rest, node=call, payload=target)
        return _Frame("seq", call_frame, stmts=tree.body, index=0)

    def _start_shared(self, stmt: ast.stmt, match, port_binding,
                      rest: _Frame | None, env: PathEnv,
                      guards: list[Expr], state: FsmState) -> None:
        target, call = match
        if not call.args or not (isinstance(call.args[0], ast.Constant)
                                 and isinstance(call.args[0].value, str)):
            raise SynthesisError("the method name in port.call() must be a "
                                 "string literal", stmt)
        method_name = call.args[0].value
        args = [self.interp.eval(arg, env) for arg in call.args[1:]]
        iface = self.ctx.shared_interface(port_binding)
        request_writes = iface.request_writes(method_name, args,
                                              self.interp, stmt)
        for carrier, expr in request_writes:
            env.write_carrier(carrier, expr)
        payload = (iface, method_name, target)
        wait_frame = _Frame("sharedgap", rest, node=stmt, payload=payload)
        self._finalize(state, guards, env, wait_frame)

    def _resume_shared(self, frame: _Frame, env: PathEnv,
                       guards: list[Expr], state: FsmState) -> None:
        iface, method_name, target = frame.payload
        done = iface.done_expr()
        # Not done: spin in this very state (memo returns our own uid).
        spin_writes, spin_statics = self._collect_writes(env)
        spin_target = self._state_for(frame, spin_statics)
        self._emit(state, guards + [UnaryOp("not", done)], spin_writes,
                   spin_target)
        # Done: drop the request, pulse the ack, bind the result, continue.
        done_env = env.fork()
        for carrier, expr in iface.complete_writes():
            done_env.write_carrier(carrier, expr)
        if target is not None:
            done_env.locals[target] = iface.result_expr(method_name)
        self._explore(frame.parent, done_env, guards + [done], state)


#: Sentinel returned by _exec_one when the current path has been closed.
_PATH_DONE = object()
